//! The slicing soundness harness.
//!
//! Signature-guided relevance slicing re-encodes each signature against
//! only the apps its declared footprint can range over, with the
//! malicious free rows its facts never constrain dropped from the upper
//! bounds. These properties prove the built-in footprints are genuine
//! over-approximations:
//!
//! * **Differential**: over randomized market bundles, a sliced analysis
//!   enumerates exactly the exploits and policies the unsliced reference
//!   does, while never translating a larger formula.
//! * **Monotone**: adding an app to the bundle never removes another app
//!   from any signature's slice (so incremental installs can only grow
//!   the relevant universe).
//! * **Incremental**: a long-lived session mutated through permission
//!   toggles and uninstalls, re-slicing only changed apps, still matches
//!   a from-scratch *unsliced* analysis after every delta.

use std::collections::BTreeSet;

use proptest::prelude::*;
use separ::analysis::slicing::{self, SliceDemand};
use separ::analysis::{extract_apk, AppModel};
use separ::core::{IncrementalSession, Report, Separ, SeparConfig, SignatureRegistry};
use separ::corpus::market::{generate, MarketSpec};

fn market_models(total: usize, seed: u64) -> Vec<AppModel> {
    generate(&MarketSpec::scaled(total, seed))
        .iter()
        .map(|m| extract_apk(&m.apk))
        .collect()
}

/// One serial analysis over the extended registry (all five signatures).
fn run(models: &[AppModel], slicing: bool) -> Report {
    Separ::with_registry(SignatureRegistry::extended())
        .with_config(SeparConfig {
            slicing,
            ..SeparConfig::serial()
        })
        .analyze_models(models.to_vec())
        .expect("analysis succeeds")
}

/// Exploits as an order-free set (enumeration order may legally differ
/// between the sliced and unsliced universes).
fn exploit_set(report: &Report) -> BTreeSet<String> {
    report.exploits.iter().map(|e| format!("{e:?}")).collect()
}

/// Policy identity modulo the (renumbered) id.
fn policy_set(policies: &[separ::core::Policy]) -> BTreeSet<String> {
    policies
        .iter()
        .map(|p| {
            format!(
                "{} {:?} {:?} {:?}",
                p.vulnerability, p.event, p.conditions, p.action
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sliced_synthesis_is_identical_to_unsliced(
        total in 6usize..12,
        seed in 0u64..4,
    ) {
        let models = market_models(total, seed);
        let sliced = run(&models, true);
        let unsliced = run(&models, false);
        prop_assert_eq!(exploit_set(&sliced), exploit_set(&unsliced));
        prop_assert_eq!(
            policy_set(&sliced.policies),
            policy_set(&unsliced.policies)
        );
        // Slicing only ever shrinks the translated formulas.
        prop_assert!(sliced.stats.primary_vars <= unsliced.stats.primary_vars);
        prop_assert!(sliced.stats.cnf_clauses <= unsliced.stats.cnf_clauses);
        for (s, u) in sliced
            .stats
            .per_signature
            .iter()
            .zip(&unsliced.stats.per_signature)
        {
            prop_assert_eq!(s.name, u.name);
            prop_assert!(s.primary_vars <= u.primary_vars, "{}", s.name);
            prop_assert!(s.cnf_clauses <= u.cnf_clauses, "{}", s.name);
            prop_assert_eq!(s.slice_kept + s.slice_dropped, models.len(), "{}", s.name);
        }
        prop_assert_eq!(unsliced.stats.slice_dropped, 0);
    }

    #[test]
    fn slice_membership_is_monotone_under_app_addition(
        total in 4usize..14,
        seed in 0u64..4,
    ) {
        let models = market_models(total, seed);
        let summaries = slicing::summarize_bundle(&models);
        // Every built-in footprint plus each concrete demand alone.
        let registry = SignatureRegistry::extended();
        let mut demand_sets: Vec<BTreeSet<SliceDemand>> = registry
            .iter()
            .map(|sig| sig.footprint().demands)
            .collect();
        demand_sets.extend(SliceDemand::CONCRETE.iter().map(|&d| BTreeSet::from([d])));
        for demands in &demand_sets {
            let mut prev: BTreeSet<usize> = BTreeSet::new();
            for k in 1..=summaries.len() {
                let cur = slicing::select_apps(demands, &summaries[..k]);
                prop_assert!(
                    prev.is_subset(&cur),
                    "adding app {} removed a member from the {:?} slice",
                    k - 1,
                    demands
                );
                prev = cur;
            }
        }
    }
}

#[test]
fn incremental_deltas_with_slicing_match_unsliced_scratch() {
    let mut shadow = market_models(10, 3);
    let mut session = IncrementalSession::new(
        SignatureRegistry::standard(),
        SeparConfig::serial(),
        shadow.clone(),
    )
    .expect("initial analysis succeeds");
    let packages: Vec<String> = shadow.iter().map(|a| a.package.clone()).collect();

    let check = |session: &IncrementalSession, shadow: &[AppModel], what: &str| {
        // The oracle deliberately disables slicing: a sliced delta run
        // must match the unsliced from-scratch reference.
        let fresh = Separ::new()
            .with_config(SeparConfig {
                slicing: false,
                ..SeparConfig::serial()
            })
            .analyze_models(shadow.to_vec())
            .expect("scratch analysis succeeds");
        let session_exploits: BTreeSet<String> =
            session.exploits().map(|e| format!("{e:?}")).collect();
        let fresh_exploits: BTreeSet<String> =
            fresh.exploits.iter().map(|e| format!("{e:?}")).collect();
        assert_eq!(
            session_exploits, fresh_exploits,
            "exploits diverge after {what}"
        );
        assert_eq!(
            policy_set(session.policies()),
            policy_set(&fresh.policies),
            "policies diverge after {what}"
        );
    };

    for pkg in packages.iter().take(4) {
        for grant in [false, true] {
            session
                .set_permission(pkg, "android.permission.SEND_SMS", grant)
                .expect("toggle re-analysis succeeds");
            for a in &mut shadow {
                if &a.package == pkg {
                    if grant {
                        a.uses_permissions
                            .insert("android.permission.SEND_SMS".to_string());
                    } else {
                        a.uses_permissions.remove("android.permission.SEND_SMS");
                    }
                }
            }
            check(&session, &shadow, &format!("toggle {pkg} grant={grant}"));
        }
    }
    let gone = packages[1].clone();
    session.uninstall(&gone).expect("uninstall succeeds");
    shadow.retain(|a| a.package != gone);
    check(&session, &shadow, "uninstall");
}
