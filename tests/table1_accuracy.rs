//! Integration: the Table I accuracy claims hold on the rebuilt suites.
//!
//! The paper's headline: SEPAR achieves 100% precision / 97% recall,
//! dominating AmanDroid (86/48) and DidFail (55/37); its only misses are
//! the two dynamically-registered-receiver cases.

use separ::baselines::{AmandroidAnalyzer, DidFailAnalyzer, IccAnalyzer, SeparAnalyzer};
use separ::corpus::suite::Score;
use separ::corpus::{droidbench, iccbench, table1_cases};

fn total_score(tool: &dyn IccAnalyzer) -> Score {
    let mut total = Score::default();
    for case in table1_cases() {
        let found = tool.find_leaks(&case.apks);
        total.add(Score::of(&case.truth, &found));
    }
    total
}

#[test]
fn separ_has_perfect_precision() {
    let s = total_score(&SeparAnalyzer);
    assert_eq!(s.fp, 0, "no false positives");
    assert!((s.precision() - 1.0).abs() < 1e-9);
}

#[test]
fn separ_recall_misses_only_the_dynamic_receiver_cases() {
    let s = total_score(&SeparAnalyzer);
    assert_eq!(s.fn_, 2, "exactly the two DynRegisteredReceiver cases");
    assert!(s.recall() > 0.93);
    for case in iccbench::cases() {
        let found = SeparAnalyzer.find_leaks(&case.apks);
        let miss = found.intersection(&case.truth).count() < case.truth.len();
        assert_eq!(
            miss,
            case.name.starts_with("DynRegisteredReceiver"),
            "unexpected per-case outcome on {}",
            case.name
        );
    }
}

#[test]
fn separ_finds_all_droidbench_leaks() {
    for case in droidbench::cases() {
        let found = SeparAnalyzer.find_leaks(&case.apks);
        let s = Score::of(&case.truth, &found);
        assert_eq!(s.fn_, 0, "missed leaks in {}: {:?}", case.name, case.truth);
        assert_eq!(s.fp, 0, "false alarms in {}: {:?}", case.name, found);
    }
}

#[test]
fn tool_ordering_matches_the_paper() {
    let didfail = total_score(&DidFailAnalyzer);
    let amandroid = total_score(&AmandroidAnalyzer);
    let separ = total_score(&SeparAnalyzer);
    assert!(
        separ.f_measure() > amandroid.f_measure(),
        "SEPAR ({:.2}) must beat AmanDroid ({:.2})",
        separ.f_measure(),
        amandroid.f_measure()
    );
    assert!(
        amandroid.f_measure() > didfail.f_measure(),
        "AmanDroid ({:.2}) must beat DidFail ({:.2})",
        amandroid.f_measure(),
        didfail.f_measure()
    );
    assert!(separ.recall() > amandroid.recall());
    assert!(separ.recall() > didfail.recall());
}

#[test]
fn didfail_false_positives_come_from_its_documented_blind_spots() {
    // The unreachable-code decoys are reported only by the tool without
    // reachability pruning.
    for case in droidbench::cases() {
        if case.name.ends_with("startActivity4") || case.name.ends_with("startActivity5") {
            assert!(!DidFailAnalyzer.find_leaks(&case.apks).is_empty());
            assert!(AmandroidAnalyzer.find_leaks(&case.apks).is_empty());
            assert!(SeparAnalyzer.find_leaks(&case.apks).is_empty());
        }
    }
}

#[test]
fn amandroid_handles_the_constant_dynamic_receiver_case() {
    for case in iccbench::cases() {
        if case.name == "DynRegisteredReceiver1" {
            let found = AmandroidAnalyzer.find_leaks(&case.apks);
            assert_eq!(Score::of(&case.truth, &found).fn_, 0);
        }
        if case.name == "DynRegisteredReceiver2" {
            let found = AmandroidAnalyzer.find_leaks(&case.apks);
            assert!(found.is_empty(), "the opaque action defeats everyone");
        }
    }
}
