//! Property-based tests of the relational-logic / SAT substrate.

use proptest::prelude::*;

use separ::logic::ast::{Expr, Formula};
use separ::logic::relation::{RelationDecl, Tuple, TupleSet};
use separ::logic::sat::{SolveResult, Solver};
use separ::logic::universe::Universe;
use separ::logic::Problem;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CDCL solver agrees with brute force on random small CNF.
    #[test]
    fn cdcl_matches_brute_force(
        clauses in prop::collection::vec(
            prop::collection::vec((0usize..7, any::<bool>()), 1..4),
            1..24,
        )
    ) {
        let n = 7;
        let mut brute_sat = false;
        'assignments: for bits in 0u32..(1 << n) {
            for clause in &clauses {
                if !clause.iter().any(|&(v, sign)| ((bits >> v) & 1 == 1) == sign) {
                    continue 'assignments;
                }
            }
            brute_sat = true;
            break;
        }
        let mut solver = Solver::new();
        let vars: Vec<_> = (0..n).map(|_| solver.new_var()).collect();
        for clause in &clauses {
            let lits: Vec<_> = clause.iter().map(|&(v, sign)| vars[v].lit(sign)).collect();
            solver.add_clause(&lits);
        }
        let got = solver.solve(&[]) == SolveResult::Sat;
        prop_assert_eq!(got, brute_sat);
        if got {
            for clause in &clauses {
                prop_assert!(clause.iter().any(|&(v, sign)| solver.is_true(vars[v].lit(sign))));
            }
        }
    }

    /// Every model the finder returns satisfies `some r` and `lone s`,
    /// and enumeration counts exactly the expected number of models.
    #[test]
    fn enumeration_is_exact_for_known_spaces(n_atoms in 1usize..5) {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..n_atoms).map(|i| u.add(format!("a{i}"))).collect();
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::free("r", TupleSet::unary_from(atoms)));
        p.fact(Expr::relation(r).some());
        let mut finder = p.model_finder().expect("well-typed");
        let mut count = 0usize;
        while let Some(inst) = finder.next_model() {
            prop_assert!(!inst.tuples(r).is_empty());
            count += 1;
            prop_assert!(count <= (1 << n_atoms));
        }
        // Non-empty subsets of n atoms.
        prop_assert_eq!(count, (1usize << n_atoms) - 1);
    }

    /// Minimal-model enumeration of `some r` yields exactly the singletons.
    #[test]
    fn minimal_models_are_singletons(n_atoms in 1usize..6) {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..n_atoms).map(|i| u.add(format!("a{i}"))).collect();
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::free("r", TupleSet::unary_from(atoms)));
        p.fact(Expr::relation(r).some());
        let mut finder = p.model_finder().expect("well-typed");
        let mut count = 0usize;
        while let Some(inst) = finder.next_minimal_model() {
            prop_assert_eq!(inst.tuples(r).len(), 1);
            count += 1;
            prop_assert!(count <= n_atoms);
        }
        prop_assert_eq!(count, n_atoms);
    }

    /// Transitive closure in the finder agrees with a reference
    /// Floyd-Warshall on random digraphs.
    #[test]
    fn closure_matches_reference(
        edges in prop::collection::btree_set((0usize..4, 0usize..4), 0..10)
    ) {
        let n = 4;
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..n).map(|i| u.add(format!("v{i}"))).collect();
        let mut p = Problem::new(u);
        let e = p.relation(RelationDecl::exact(
            "e",
            {
                let mut ts = TupleSet::new(2);
                for &(a, b) in &edges {
                    ts.insert(Tuple::binary(atoms[a], atoms[b]));
                }
                ts
            },
        ));
        // Reference reachability.
        let mut reach = vec![vec![false; n]; n];
        for &(a, b) in &edges {
            reach[a][b] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    reach[i][j] |= reach[i][k] && reach[k][j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let f = Expr::atom(atoms[i])
                    .product(&Expr::atom(atoms[j]))
                    .in_(&Expr::relation(e).closure());
                let mut q = Problem::new(p.universe().clone());
                let e2 = q.relation(RelationDecl::exact(
                    "e",
                    p.decl(e).lower().clone(),
                ));
                let f = match f {
                    Formula::Subset(a, _) => Formula::Subset(a, Expr::relation(e2).closure()),
                    other => other,
                };
                q.fact(f);
                let sat = q.solve().expect("well-typed").is_some();
                prop_assert_eq!(sat, reach[i][j], "pair ({}, {})", i, j);
            }
        }
    }
}

#[test]
fn quantifier_scoping_restores_outer_bindings() {
    // all x: S | (some x': S | x' in S) and x in S — nested quantifiers
    // over the same variable id must not corrupt the outer binding.
    let mut u = Universe::new();
    let a = u.add("a");
    let b = u.add("b");
    let mut p = Problem::new(u);
    let s = p.relation(RelationDecl::exact("S", TupleSet::unary_from([a, b])));
    let x = p.fresh_var();
    let inner = Formula::exists(x, Expr::relation(s), Expr::var(x).in_(&Expr::relation(s)));
    let body = Formula::and([inner, Expr::var(x).in_(&Expr::relation(s))]);
    p.fact(Formula::for_all(x, Expr::relation(s), body));
    assert!(p.solve().expect("well-typed").is_some());
}
