//! Determinism regression: the `Report` must be independent of the worker
//! thread count.
//!
//! The executor claims work by atomic index but merges results back in
//! input order, so exploits, policies and all count-type statistics must
//! be identical whether the pipeline runs on one thread or eight.
//! Timings are excluded — they are the only fields allowed to vary.

use separ::core::{Report, Separ, SeparConfig};
use separ::corpus::market::{generate, MarketSpec};
use separ::corpus::motivating;
use separ::dex::Apk;

fn analyze(apks: &[Apk], threads: usize) -> Report {
    Separ::new()
        .with_config(SeparConfig {
            threads,
            ..SeparConfig::default()
        })
        .analyze_apks(apks)
        .expect("bundle analyzes")
}

fn assert_reports_match(apks: &[Apk]) {
    let serial = analyze(apks, 1);
    for threads in [2, 8] {
        let parallel = analyze(apks, threads);
        assert_eq!(
            serial.exploits, parallel.exploits,
            "exploits differ at {threads} threads"
        );
        assert_eq!(
            serial.policies, parallel.policies,
            "policies differ at {threads} threads"
        );
        assert_eq!(
            serial.stats.counts(),
            parallel.stats.counts(),
            "count statistics differ at {threads} threads"
        );
    }
}

#[test]
fn motivating_bundle_is_thread_count_independent() {
    assert_reports_match(&[
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ]);
}

#[test]
fn generated_market_bundle_is_thread_count_independent() {
    // A larger seeded bundle with injected weaknesses of several kinds,
    // so the per-signature fan-out has real work to reorder.
    let market = generate(&MarketSpec::scaled(24, 0xD5_7E_2A));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    assert_reports_match(&apks);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two runs at the same thread count must also agree: no hidden
    // iteration-order or timing dependence inside a single configuration.
    let market = generate(&MarketSpec::scaled(12, 7));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let a = analyze(&apks, 8);
    let b = analyze(&apks, 8);
    assert_eq!(a.exploits, b.exploits);
    assert_eq!(a.policies, b.policies);
    assert_eq!(a.stats.counts(), b.stats.counts());
}
