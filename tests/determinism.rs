//! Determinism regression: the `Report` must be independent of the worker
//! thread count.
//!
//! The executor claims work by atomic index but merges results back in
//! input order, so exploits, policies and all count-type statistics must
//! be identical whether the pipeline runs on one thread or eight.
//! Timings are excluded — they are the only fields allowed to vary.

use separ::core::{Report, Separ, SeparConfig};
use separ::corpus::market::{generate, MarketSpec};
use separ::corpus::motivating;
use separ::dex::Apk;

fn analyze(apks: &[Apk], threads: usize) -> Report {
    Separ::new()
        .with_config(SeparConfig {
            threads,
            ..SeparConfig::default()
        })
        .analyze_apks(apks)
        .expect("bundle analyzes")
}

fn assert_reports_match(apks: &[Apk]) {
    let serial = analyze(apks, 1);
    for threads in [2, 8] {
        let parallel = analyze(apks, threads);
        assert_eq!(
            serial.exploits, parallel.exploits,
            "exploits differ at {threads} threads"
        );
        assert_eq!(
            serial.policies, parallel.policies,
            "policies differ at {threads} threads"
        );
        assert_eq!(
            serial.stats.counts(),
            parallel.stats.counts(),
            "count statistics differ at {threads} threads"
        );
    }
}

#[test]
fn motivating_bundle_is_thread_count_independent() {
    assert_reports_match(&[
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ]);
}

#[test]
fn generated_market_bundle_is_thread_count_independent() {
    // A larger seeded bundle with injected weaknesses of several kinds,
    // so the per-signature fan-out has real work to reorder.
    let market = generate(&MarketSpec::scaled(24, 0xD5_7E_2A));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    assert_reports_match(&apks);
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Two runs at the same thread count must also agree: no hidden
    // iteration-order or timing dependence inside a single configuration.
    let market = generate(&MarketSpec::scaled(12, 7));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let a = analyze(&apks, 8);
    let b = analyze(&apks, 8);
    assert_eq!(a.exploits, b.exploits);
    assert_eq!(a.policies, b.policies);
    assert_eq!(a.stats.counts(), b.stats.counts());
}

/// Runs the pipeline under a root span and returns the run's exports
/// with timestamps, durations and thread ids zeroed out.
fn traced_exports(apks: &[Apk], threads: usize) -> (String, String) {
    let obs = separ::obs::global();
    obs.enable();
    let root = obs.span("test.run");
    let root_id = root.id();
    let report = analyze(apks, threads);
    drop(root);
    drop(report);
    // Restrict to this run's subtree: other tests in the harness may be
    // writing to the process-global collector concurrently.
    let trace = obs.snapshot_subtree(root_id);
    (
        separ::obs::export::strip_timing(&trace.chrome_trace()),
        separ::obs::export::strip_timing(&trace.events_jsonl()),
    )
}

#[test]
fn trace_exports_are_run_and_thread_count_independent() {
    // The canonicalized trace — spans, nesting, args, events — must be
    // byte-identical across repeated runs AND across thread counts once
    // timing is stripped; only timestamps/durations/tids may vary.
    // The bundle needs injected weaknesses so every signature's relevance
    // slice is non-empty and the translate/solve spans actually fire.
    let market = generate(&MarketSpec::scaled(24, 0xD5_7E_2A));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let (trace_a, events_a) = traced_exports(&apks, 4);
    let (trace_b, events_b) = traced_exports(&apks, 4);
    assert_eq!(trace_a, trace_b, "chrome trace differs between runs");
    assert_eq!(events_a, events_b, "events JSONL differs between runs");
    let (trace_serial, events_serial) = traced_exports(&apks, 1);
    assert_eq!(
        trace_a, trace_serial,
        "chrome trace differs between 4 threads and 1"
    );
    assert_eq!(
        events_a, events_serial,
        "events JSONL differs between 4 threads and 1"
    );
    // The trace really covers the pipeline.
    for name in [
        "pipeline.analyze",
        "ame.extract",
        "ase.slice",
        "ase.signature",
        "logic.translate",
        "logic.solve",
    ] {
        assert!(trace_a.contains(name), "trace is missing {name} spans");
    }
}
