//! Stress: analyze a generated market bundle, install the synthesized
//! policies, run *every* component of *every* app on the device, and
//! check global properties: nothing crashes, hooks fire for every ICC
//! event, and denying all prompts eliminates exactly the leak classes
//! the policies guard.

use separ::analysis::extractor::extract_apk;
use separ::android::types::Resource;
use separ::core::Separ;
use separ::corpus::market::{generate, MarketSpec};
use separ::enforce::{Device, PromptHandler};

fn run_everything(device: &mut Device, apks: &[separ::dex::Apk]) {
    for apk in apks {
        let classes: Vec<String> = apk
            .manifest
            .components
            .iter()
            .map(|c| c.class.clone())
            .collect();
        for class in classes {
            device.launch(apk.package(), &class);
            device.run_until_idle();
        }
    }
}

#[test]
fn market_bundle_under_full_enforcement() {
    let market = generate(&MarketSpec::scaled(40, 0xFEED));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let models: Vec<_> = apks.iter().map(extract_apk).collect();
    let report = Separ::new()
        .analyze_models(models)
        .expect("analysis succeeds");

    // Unprotected baseline.
    let mut open_device = Device::new(apks.clone());
    run_everything(&mut open_device, &apks);
    let baseline_hooks = open_device.hook_stats();

    // Enforced run, user denies everything.
    let mut device = Device::new(apks.clone());
    device.install_policies(
        report.policies.clone(),
        report.apps.iter().map(|a| a.package.clone()).collect(),
        PromptHandler::AlwaysDeny,
    );
    run_everything(&mut device, &apks);

    // 1. Hook coverage: the send-side hook count is workload-determined
    //    and must match the unprotected run.
    assert_eq!(
        device.hook_stats().icc_hooks,
        baseline_hooks.icc_hooks,
        "every ICC call is intercepted in both runs"
    );

    // 2. Guarded leak classes are gone: any (tagged source -> real sink)
    //    leak that an information-leakage policy names must not fire.
    for p in &report.policies {
        if p.vulnerability != "information-leakage" {
            continue;
        }
        let tagged: Vec<Resource> = p
            .conditions
            .iter()
            .filter_map(|c| match c {
                separ::core::Condition::ExtraTagged(name) => Resource::from_name(name),
                _ => None,
            })
            .collect();
        for sink in [Resource::Sms, Resource::NetworkWrite, Resource::Log] {
            for &tag in &tagged {
                // The guarded receiver was never allowed to fire its sink
                // with this tag: check the audit has no such event from
                // the receiver's app.
                let receiver_app = report
                    .exploits
                    .iter()
                    .find(|e| {
                        e.kind() == separ::core::VulnKind::InformationLeakage
                            && p.conditions.iter().any(|c| {
                                matches!(c, separ::core::Condition::ReceiverIs(r)
                                    if r == e.guarded_component())
                            })
                    })
                    .map(|e| e.guarded_app().to_string());
                if let Some(app) = receiver_app {
                    let leaked = device.audit.events().iter().any(|ev| {
                        matches!(ev, separ::enforce::AuditEvent::SinkFired { sink: s, app: a, tags, .. }
                            if *s == sink && *a == app && tags.contains(&tag))
                    });
                    assert!(!leaked, "guarded leak {tag:?} -> {sink:?} fired in {app}");
                }
            }
        }
    }

    // 3. The device stayed coherent: prompts were answered, blocks were
    //    logged, and the audit has no impossible orderings (a blocked
    //    delivery never precedes its own send... trivially true by
    //    construction, so assert the counts line up instead).
    assert_eq!(
        device.audit.blocked_count() as u64
            + device
                .audit
                .events()
                .iter()
                .filter(|e| matches!(
                    e,
                    separ::enforce::AuditEvent::PromptShown { allowed: true, .. }
                ))
                .count() as u64,
        device.pdp().prompts()
            + device
                .audit
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        separ::enforce::AuditEvent::IccBlocked { vulnerability, .. }
                            if &**vulnerability == "broadcast-injection"
                    )
                })
                .count() as u64,
        "every prompt produced either a block or an allowed event"
    );
}

#[test]
fn enforcement_is_deterministic() {
    let market = generate(&MarketSpec::scaled(15, 0xBEEF));
    let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
    let models: Vec<_> = apks.iter().map(extract_apk).collect();
    let report = Separ::new().analyze_models(models).expect("succeeds");
    let run = || {
        let mut device = Device::new(apks.clone());
        device.install_policies(
            report.policies.clone(),
            report.apps.iter().map(|a| a.package.clone()).collect(),
            PromptHandler::AlwaysDeny,
        );
        run_everything(&mut device, &apks);
        (
            device.audit.events().len(),
            device.audit.blocked_count(),
            device.hook_stats().icc_hooks,
            device.hook_stats().delivery_hooks,
        )
    };
    assert_eq!(run(), run(), "two identical runs must agree exactly");
}
