//! Property-based tests of the binary container codec: every structurally
//! valid package round-trips byte-for-byte, and no input — however
//! corrupted — makes the decoder panic.

use proptest::prelude::*;

use separ::dex::build::ApkBuilder;
use separ::dex::codec::{decode, encode};
use separ::dex::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl};
use separ::dex::{Apk, BinOp};

/// Strategy: a small random program built through the builder DSL (so it
/// is valid by construction).
fn arb_apk() -> impl Strategy<Value = Apk> {
    (
        "[a-z]{3,8}\\.[a-z]{3,8}",
        prop::collection::vec(("[A-Z][a-z]{2,6}", 0u8..4, any::<bool>()), 1..5),
        prop::collection::vec((0usize..5, prop::collection::vec(0u8..6, 0..20)), 1..5),
        prop::collection::vec("[a-z]{2,10}", 0..4),
    )
        .prop_map(|(package, components, methods, perms)| {
            let mut apk = ApkBuilder::new(&package);
            for p in &perms {
                apk.uses_permission(format!("android.permission.{}", p.to_uppercase()));
            }
            let mut class_names = Vec::new();
            for (i, (name, kind_tag, exported)) in components.iter().enumerate() {
                let kind = ComponentKind::from_tag(kind_tag % 4).expect("tag in range");
                let class_name = format!("L{}{}{};", package.replace('.', "/"), name, i);
                let mut decl = ComponentDecl::new(&class_name, kind);
                decl.exported = Some(*exported);
                if kind != ComponentKind::Provider && i % 2 == 0 {
                    decl.intent_filters
                        .push(IntentFilterDecl::for_actions([format!("act.{name}")]));
                }
                apk.add_component(decl);
                class_names.push(class_name);
            }
            for (mi, (class_pick, ops)) in methods.iter().enumerate() {
                let class_name = &class_names[class_pick % class_names.len()];
                // A fresh class per method to avoid duplicate class defs.
                let helper = format!("LHelper{mi}_{};", class_name.len());
                let mut cb = apk.class(&helper);
                let mut m = cb.method("work", 1, true, true);
                let a = m.reg();
                let b = m.reg();
                let s = m.reg();
                m.const_int(a, 1);
                m.const_int(b, 2);
                for op in ops {
                    match op % 6 {
                        0 => {
                            m.binop(BinOp::Add, a, a, b);
                        }
                        1 => {
                            m.binop(BinOp::Mul, b, a, b);
                        }
                        2 => {
                            m.const_string(s, "payload");
                        }
                        3 => {
                            m.mov(s, a);
                        }
                        4 => {
                            m.invoke_static(&helper.clone(), "work", &[a], true);
                            m.move_result(a);
                        }
                        _ => {
                            m.nop();
                        }
                    }
                }
                m.ret(a);
                m.finish();
                cb.finish();
            }
            apk.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(apk in arb_apk()) {
        let bytes = encode(&apk);
        let decoded = decode(&bytes).expect("valid package decodes");
        prop_assert_eq!(&decoded, &apk);
        // Canonical: re-encoding is byte-identical.
        prop_assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_input(
        apk in arb_apk(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = encode(&apk).to_vec();
        for (idx, xor) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= xor;
        }
        // Must return (Ok or Err), never panic.
        let _ = decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn truncations_are_rejected_or_consistent(apk in arb_apk(), cut in any::<prop::sample::Index>()) {
        let bytes = encode(&apk);
        let n = cut.index(bytes.len());
        // A strict prefix can never decode to a *different* valid package.
        if let Ok(decoded) = decode(&bytes[..n]) {
            prop_assert_eq!(decoded, apk);
        }
    }
}

#[test]
fn extraction_is_stable_across_codec_round_trip() {
    // Model extraction of a decoded package equals extraction of the
    // original (the analyses only see decoded structures).
    use separ::analysis::extractor::extract_apk;
    let apk = separ::corpus::motivating::navigator_app();
    let decoded = decode(&encode(&apk)).expect("round-trips");
    let m1 = extract_apk(&apk);
    let m2 = extract_apk(&decoded);
    assert_eq!(m1.components, m2.components);
    assert_eq!(m1.uses_permissions, m2.uses_permissions);
}
