//! Property: an [`IncrementalSession`] driven through an arbitrary
//! sequence of permission toggles, installs and uninstalls always holds
//! exactly the policies (and exploits) a from-scratch analysis of the
//! same bundle would synthesize.
//!
//! Policies are compared modulo `id`: the session renumbers densely per
//! re-derivation, so ids are presentation, not identity.

use proptest::prelude::*;
use separ::analysis::{extract_apk, AppModel};
use separ::core::{IncrementalSession, Separ, SeparConfig, SignatureRegistry};
use separ::corpus::market::{generate, MarketSpec};

/// Permissions worth toggling: ones the market apps actually use plus one
/// no app holds (exercises the no-op path).
const PERMS: &[&str] = &[
    "android.permission.SEND_SMS",
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.INTERNET",
    "android.permission.READ_PHONE_STATE",
    "android.permission.CAMERA",
];

#[derive(Debug, Clone)]
enum Op {
    /// Toggle `PERMS[perm]` on the app at `app` (modulo installed count).
    Toggle {
        app: prop::sample::Index,
        perm: prop::sample::Index,
        grant: bool,
    },
    /// Install the next not-yet-installed pool app (chosen by index).
    Install { pick: prop::sample::Index },
    /// Uninstall the app at the given index (kept non-empty).
    Uninstall { app: prop::sample::Index },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<bool>()
        )
            .prop_map(|(app, perm, grant)| Op::Toggle { app, perm, grant }),
        any::<prop::sample::Index>().prop_map(|pick| Op::Install { pick }),
        any::<prop::sample::Index>().prop_map(|app| Op::Uninstall { app }),
    ]
}

/// Policy identity modulo id; exploits ride along for free.
fn fingerprint(report_policies: &[separ::core::Policy]) -> Vec<String> {
    let mut out: Vec<String> = report_policies
        .iter()
        .map(|p| {
            format!(
                "{} {:?} {:?} {:?}",
                p.vulnerability, p.event, p.conditions, p.action
            )
        })
        .collect();
    out.sort();
    out
}

fn pool(seed: u64) -> Vec<AppModel> {
    let market = generate(&MarketSpec::scaled(8, seed));
    market.iter().map(|m| extract_apk(&m.apk)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_session_matches_full_reanalysis(
        ops in proptest::collection::vec(op_strategy(), 1..5),
        seed in 0u64..3,
    ) {
        let models = pool(seed);
        let (initial, spares) = models.split_at(4);
        let mut shadow: Vec<AppModel> = initial.to_vec();
        let mut next_spare = 0usize;
        let mut session = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::serial(),
            shadow.clone(),
        )
        .expect("initial analysis succeeds");

        for op in &ops {
            match op {
                Op::Toggle { app, perm, grant } => {
                    let pkg = shadow[app.index(shadow.len())].package.clone();
                    let perm = PERMS[perm.index(PERMS.len())];
                    session
                        .set_permission(&pkg, perm, *grant)
                        .expect("toggle re-analysis succeeds");
                    for a in &mut shadow {
                        if a.package == pkg {
                            if *grant {
                                a.uses_permissions.insert(perm.to_string());
                            } else {
                                a.uses_permissions.remove(perm);
                            }
                        }
                    }
                }
                Op::Install { pick } => {
                    if next_spare < spares.len() {
                        let _ = pick; // pool order is deterministic; index picks timing only
                        let app = spares[next_spare].clone();
                        next_spare += 1;
                        shadow.push(app.clone());
                        session.install(app).expect("install re-analysis succeeds");
                    }
                }
                Op::Uninstall { app } => {
                    if shadow.len() > 1 {
                        let pkg = shadow[app.index(shadow.len())].package.clone();
                        shadow.retain(|a| a.package != pkg);
                        session.uninstall(&pkg).expect("uninstall re-analysis succeeds");
                    }
                }
            }

            // The oracle: a from-scratch analysis of the current bundle
            // with slicing disabled. The session re-runs with slicing on
            // (the default), so this simultaneously proves delta == from-
            // scratch and sliced == unsliced across bundle mutations.
            let fresh = Separ::new()
                .with_config(SeparConfig {
                    slicing: false,
                    ..SeparConfig::serial()
                })
                .analyze_models(shadow.clone())
                .expect("full re-analysis succeeds");
            prop_assert_eq!(
                fingerprint(session.policies()),
                fingerprint(&fresh.policies),
                "session policies diverge from full re-analysis after {:?}",
                op
            );
            let mut session_exploits: Vec<String> =
                session.exploits().map(|e| format!("{e:?}")).collect();
            let mut fresh_exploits: Vec<String> =
                fresh.exploits.iter().map(|e| format!("{e:?}")).collect();
            session_exploits.sort();
            fresh_exploits.sort();
            prop_assert_eq!(session_exploits, fresh_exploits);
        }
    }
}
