//! Policy-shipping stability: `to_json` → `from_json` → `to_json` must be
//! byte-identical, and the parsed set structurally equal, for every policy
//! kind the four standard signatures produce.
//!
//! The PDP ships policies between the analysis host and the device; any
//! normalization drift across a hop would make policy diffing (and the
//! incremental deltas built on it) unsound.

use std::collections::BTreeSet;

use separ::core::{policy_io, Policy, Separ, SeparConfig, VulnKind};
use separ::corpus::market::{generate, MarketSpec};
use separ::corpus::motivating;

/// Policies from the motivating bundle (hijack, launch, escalation) plus a
/// generated market bundle (information leakage), covering all four
/// standard signatures.
fn policies_covering_all_signatures() -> Vec<Policy> {
    let motivating_bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    let mut policies = Separ::new()
        .with_config(SeparConfig::serial())
        .analyze_apks(&motivating_bundle)
        .expect("motivating bundle analyzes")
        .policies;

    // Scan seeded market bundles until one leaks; generation is
    // deterministic, so the scan always lands on the same bundle.
    let mut leaked = false;
    for seed in 0..32 {
        let market = generate(&MarketSpec::scaled(12, seed));
        let apks: Vec<_> = market.into_iter().map(|m| m.apk).collect();
        let report = Separ::new()
            .with_config(SeparConfig::serial())
            .analyze_apks(&apks)
            .expect("market bundle analyzes");
        if report.exploits_of(VulnKind::InformationLeakage).count() > 0 {
            policies.extend(report.policies);
            leaked = true;
            break;
        }
    }
    assert!(
        leaked,
        "no market seed in 0..32 produced information leakage"
    );
    policies
}

#[test]
fn every_standard_policy_kind_reserializes_byte_identically() {
    let policies = policies_covering_all_signatures();
    let kinds: BTreeSet<&str> = policies.iter().map(|p| p.vulnerability.as_str()).collect();
    for kind in [
        VulnKind::IntentHijack,
        VulnKind::ComponentLaunch,
        VulnKind::InformationLeakage,
        VulnKind::PrivilegeEscalation,
    ] {
        assert!(
            kinds.contains(kind.name()),
            "bundle must cover {} (got {kinds:?})",
            kind.name()
        );
    }

    // Whole-set stability.
    let json = policy_io::to_json(&policies);
    let parsed = policy_io::from_json(&json).expect("own output parses");
    assert_eq!(parsed, policies, "parse must invert serialization");
    assert_eq!(
        policy_io::to_json(&parsed),
        json,
        "re-serialization must be byte-identical"
    );

    // Per-policy stability, so a failure names the offending kind.
    for p in &policies {
        let one = std::slice::from_ref(p);
        let json = policy_io::to_json(one);
        let parsed = policy_io::from_json(&json)
            .unwrap_or_else(|e| panic!("{} policy fails to parse: {e}\n{json}", p.vulnerability));
        assert_eq!(parsed.as_slice(), one, "{} policy drifts", p.vulnerability);
        assert_eq!(
            policy_io::to_json(&parsed),
            json,
            "{} policy re-serialization drifts",
            p.vulnerability
        );
    }
}

#[test]
fn json_round_trip_survives_a_second_hop() {
    // Ship host -> device -> host: two hops must also be stable.
    let policies = policies_covering_all_signatures();
    let hop1 = policy_io::to_json(&policies);
    let hop2 = policy_io::to_json(&policy_io::from_json(&hop1).expect("hop 1 parses"));
    let hop3 = policy_io::to_json(&policy_io::from_json(&hop2).expect("hop 2 parses"));
    assert_eq!(hop1, hop2);
    assert_eq!(hop2, hop3);
}
