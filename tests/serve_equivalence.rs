//! Property: a `separ serve` daemon driven through arbitrary churn —
//! installs, in-place update reinstalls, uninstalls, permission toggles,
//! and a mid-sequence kill-and-restore through its persistent store —
//! ends up with exactly the policies and exploits a from-scratch
//! analysis of the surviving bundle would synthesize.
//!
//! The daemon is driven through [`Daemon::handle`], the same line-in/
//! line-out surface the socket server wraps, so the whole pipeline is
//! under test: wire parsing → extraction cache → churn queue →
//! coalesced incremental re-analysis → published snapshot → wire
//! serialization. Policies are compared modulo `id` (dense per-derivation
//! renumbering is presentation, not identity), exploits by their full
//! rendering.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use separ::analysis::{extract_apk, AppModel};
use separ::core::{policy_io, Policy, Separ, SeparConfig};
use separ::corpus::market::{generate, MarketSpec};
use separ::obs::json::Value;
use separ::serve::protocol::encode_hex;
use separ::serve::{Daemon, ServeConfig};

const PERMS: &[&str] = &[
    "android.permission.SEND_SMS",
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.INTERNET",
    "android.permission.READ_PHONE_STATE",
];

#[derive(Debug, Clone)]
enum Op {
    /// Install the next not-yet-installed pool app.
    Install,
    /// Re-send an installed app's package: an in-place update.
    Reinstall { app: prop::sample::Index },
    /// Uninstall the app at the given index (kept non-empty).
    Uninstall { app: prop::sample::Index },
    /// Toggle `PERMS[perm]` on the app at `app`.
    Toggle {
        app: prop::sample::Index,
        perm: prop::sample::Index,
        grant: bool,
    },
    /// Kill the daemon (clean shutdown) and boot a fresh one from the
    /// persistent store.
    Restart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Install),
        any::<prop::sample::Index>().prop_map(|app| Op::Reinstall { app }),
        any::<prop::sample::Index>().prop_map(|app| Op::Uninstall { app }),
        (
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<bool>()
        )
            .prop_map(|(app, perm, grant)| Op::Toggle { app, perm, grant }),
        Just(Op::Restart),
    ]
}

fn parse_ok(line: &str) -> Value {
    let v = Value::parse(line).expect("daemon responses are valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "daemon refused: {line}"
    );
    v
}

fn install_line(bytes: &[u8]) -> String {
    format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, encode_hex(bytes))
}

/// Policy identity modulo set-local `id`.
fn fingerprint(policies: &[Policy]) -> Vec<String> {
    let mut out: Vec<String> = policies
        .iter()
        .map(|p| {
            format!(
                "{} {:?} {:?} {:?}",
                p.vulnerability, p.event, p.conditions, p.action
            )
        })
        .collect();
    out.sort();
    out
}

static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn daemon_churn_matches_from_scratch_analysis(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        seed in 0u64..3,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "separ-serve-equiv-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServeConfig {
            config: SeparConfig::serial(),
            store_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let market = generate(&MarketSpec::scaled(6, seed));
        let packages: Vec<Vec<u8>> = market
            .iter()
            .map(|m| separ::dex::codec::encode(&m.apk).to_vec())
            .collect();
        let models: Vec<AppModel> = market.iter().map(|m| extract_apk(&m.apk)).collect();

        let mut daemon = Daemon::start(cfg()).expect("boots");
        let mut shadow: Vec<AppModel> = Vec::new();
        let mut next_spare = 0usize;
        // Seed three apps through the daemon.
        for _ in 0..3 {
            parse_ok(&daemon.handle(&install_line(&packages[next_spare])));
            shadow.push(models[next_spare].clone());
            next_spare += 1;
        }

        for op in &ops {
            match op {
                Op::Install => {
                    if next_spare < packages.len() {
                        parse_ok(&daemon.handle(&install_line(&packages[next_spare])));
                        shadow.push(models[next_spare].clone());
                        next_spare += 1;
                    }
                }
                Op::Reinstall { app } => {
                    let i = app.index(shadow.len());
                    let pool = models
                        .iter()
                        .position(|m| m.package == shadow[i].package)
                        .expect("shadow apps come from the pool");
                    parse_ok(&daemon.handle(&install_line(&packages[pool])));
                    // An update with unchanged bytes: same model, same
                    // slot — the shadow resets any toggled permissions.
                    shadow[i] = models[pool].clone();
                }
                Op::Uninstall { app } => {
                    if shadow.len() > 1 {
                        let pkg = shadow[app.index(shadow.len())].package.clone();
                        parse_ok(&daemon.handle(&format!(
                            r#"{{"cmd":"uninstall","package":"{pkg}"}}"#
                        )));
                        shadow.retain(|a| a.package != pkg);
                    }
                }
                Op::Toggle { app, perm, grant } => {
                    let pkg = shadow[app.index(shadow.len())].package.clone();
                    let perm = PERMS[perm.index(PERMS.len())];
                    parse_ok(&daemon.handle(&format!(
                        concat!(
                            r#"{{"cmd":"set_permission","package":"{}","#,
                            r#""permission":"{}","granted":{}}}"#
                        ),
                        pkg, perm, grant
                    )));
                    for a in &mut shadow {
                        if a.package == pkg {
                            if *grant {
                                a.uses_permissions.insert(perm.to_string());
                            } else {
                                a.uses_permissions.remove(perm);
                            }
                        }
                    }
                }
                Op::Restart => {
                    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
                    prop_assert!(daemon.is_stopped());
                    daemon = Daemon::start(cfg()).expect("reboots from store");
                    let (restored, skipped) = daemon.restored();
                    prop_assert_eq!(restored, shadow.len(), "store recovered the bundle");
                    prop_assert_eq!(skipped, 0);
                }
            }
        }

        // Read the daemon's final state over the wire.
        let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
        let mut json = String::new();
        v.get("policies").expect("policy set").write_into(&mut json);
        let daemon_policies = policy_io::from_json(&json).expect("wire policies parse");
        let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"exploits"}"#));
        let mut daemon_exploits: Vec<String> = v
            .get("exploits")
            .and_then(Value::as_arr)
            .expect("exploit list")
            .iter()
            .filter_map(Value::as_str)
            .map(String::from)
            .collect();

        // The oracle: from-scratch analysis of the surviving bundle,
        // slicing off (proving delta == scratch and sliced == unsliced
        // across the whole churn history at once).
        let fresh = Separ::new()
            .with_config(SeparConfig {
                slicing: false,
                ..SeparConfig::serial()
            })
            .analyze_models(shadow.clone())
            .expect("full re-analysis succeeds");
        prop_assert_eq!(
            fingerprint(&daemon_policies),
            fingerprint(&fresh.policies),
            "daemon policies diverge from from-scratch analysis after {:?}",
            ops
        );
        let mut fresh_exploits: Vec<String> =
            fresh.exploits.iter().map(|e| e.to_string()).collect();
        daemon_exploits.sort();
        fresh_exploits.sort();
        prop_assert_eq!(daemon_exploits, fresh_exploits);

        parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
