//! Integration: the pipeline's secondary artifacts — Alloy module export
//! and JSON policy shipping — survive a full round trip from real
//! binaries to a running device.

use separ::core::{alloy_export, policy_io, Separ};
use separ::corpus::motivating;
use separ::dex::codec;
use separ::enforce::{Device, PromptHandler};

fn motivating_report() -> separ::core::Report {
    let bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    Separ::new()
        .analyze_apks(&bundle)
        .expect("analysis succeeds")
}

#[test]
fn alloy_export_of_the_motivating_bundle_matches_listing_4() {
    let report = motivating_report();
    let text = alloy_export::bundle_modules(&report.apps);
    // Listing 3 core.
    assert!(text.contains("module androidDeclaration"));
    assert!(text.contains("fact IFandComponent"));
    // Listing 4(a): LocationFinder with the LOCATION -> ICC path and the
    // showLoc intent carrying LOCATION.
    assert!(text.contains("extends Service"));
    assert!(text.contains("source = LOCATION"));
    assert!(text.contains("sink = ICC"));
    assert!(text.contains("action = showLoc"));
    assert!(text.contains("extra = LOCATION"));
    // Listing 4(b): MessageSender with the ICC -> SMS path and no
    // permissions.
    assert!(text.contains("source = ICC"));
    assert!(text.contains("sink = SMS"));
    assert!(text.contains("no permissions"));
}

#[test]
fn policies_survive_json_shipping_and_still_block_the_attack() {
    let report = motivating_report();
    // Ship the policies as JSON, as the PDP app would receive them.
    let json = policy_io::to_json(&report.policies);
    let shipped = policy_io::from_json(&json).expect("valid JSON");
    assert_eq!(shipped, report.policies);

    let mut device = Device::new(vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
        motivating::malicious_app("+15550000"),
    ]);
    device.install_policies(
        shipped,
        vec!["com.navigator".into(), "com.messenger".into()],
        PromptHandler::AlwaysDeny,
    );
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    assert!(!device.audit.leaked(
        separ::android::types::Resource::Location,
        separ::android::types::Resource::Sms
    ));
    assert!(device.audit.blocked_count() >= 1);
}

#[test]
fn disassembly_round_trips_through_the_codec() {
    // Disassembling a decoded binary equals disassembling the original:
    // the codec loses nothing the disassembler can see.
    for apk in [
        motivating::navigator_app(),
        motivating::messenger_app(true),
        motivating::malicious_app("+15550000"),
    ] {
        let decoded = codec::decode(&codec::encode(&apk)).expect("round-trips");
        assert_eq!(
            separ::dex::disasm::package(&apk),
            separ::dex::disasm::package(&decoded)
        );
    }
}

#[test]
fn incremental_delta_applies_to_a_running_device() {
    use separ::analysis::extractor::extract_apk;
    use separ::android::types::perm;
    use separ::core::{IncrementalSession, SeparConfig, SignatureRegistry};

    let apks = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    let models = apks.iter().map(extract_apk).collect();
    let mut session = IncrementalSession::new(
        SignatureRegistry::standard(),
        SeparConfig::default(),
        models,
    )
    .expect("analysis succeeds");
    let mut device = Device::new(apks);
    device.install_policies(
        session.policies().to_vec(),
        vec!["com.navigator".into(), "com.messenger".into()],
        PromptHandler::AlwaysDeny,
    );
    let initial = device.pdp().policies().len();
    let before: Vec<separ::core::policy::Policy> = device.pdp().policies().to_vec();
    let max_id_before = before.iter().map(|p| p.id).max().unwrap_or(0);
    let delta = session
        .set_permission("com.messenger", perm::SEND_SMS, false)
        .expect("re-analysis succeeds");
    device.apply_policy_delta(delta.added.clone(), &delta.removed);
    assert_eq!(
        device.pdp().policies().len(),
        initial - delta.removed.len() + delta.added.len()
    );
    let after = device.pdp().policies();
    // Unchanged policies keep their ids across the delta (audit logs stay
    // diffable), and every added policy gets a fresh id never seen before.
    for p in &before {
        if let Some(q) = after.iter().find(|q| q.content_key() == p.content_key()) {
            assert_eq!(q.id, p.id, "retained policy renumbered: {p:?}");
        }
    }
    let mut fresh: Vec<u32> = after
        .iter()
        .filter(|q| !before.iter().any(|p| p.content_key() == q.content_key()))
        .map(|q| q.id)
        .collect();
    fresh.sort_unstable();
    assert!(
        fresh.iter().all(|id| *id > max_id_before),
        "added policies must take fresh ids above {max_id_before}, got {fresh:?}"
    );
    fresh.dedup();
    assert_eq!(
        fresh.len(),
        delta.added.len(),
        "each added policy gets a unique id"
    );
}
