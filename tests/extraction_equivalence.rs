//! Differential proof harness for the summary-based extractor.
//!
//! The rewrite of the abstract interpreter around validated per-method
//! summaries ships inside this harness: on randomized apps — with fields,
//! abstract intents, live and dead branches, helper chains, direct and
//! mutual recursion, and verifier-quarantined methods — the summary
//! strategy must extract *exactly* the model the retained per-context
//! reference does, and the content-hash model cache must be transparent:
//! a warm hit is byte-for-byte the cold extraction.

use std::sync::Arc;

use proptest::prelude::*;
use separ::analysis::absint::{AnalysisOptions, AnalysisStrategy};
use separ::analysis::cache::{self, CacheOutcome, ModelCache};
use separ::analysis::extractor::extract_apk_with;
use separ::analysis::AppModel;
use separ::android::api::class;
use separ::android::types::perm;
use separ::core::Separ;
use separ::corpus::market::{generate, MarketSpec};
use separ::dex::build::ApkBuilder;
use separ::dex::codec;
use separ::dex::instr::{Instr, Reg};
use separ::dex::manifest::{ComponentDecl, ComponentKind};
use separ::dex::program::Apk;

const ACTIONS: &[&str] = &["diff.A", "diff.B", "diff.C", "diff.D"];
const KEYS: &[&str] = &["k0", "k1", "k2"];
const FIELDS: &[&str] = &["f0", "f1", "f2"];
const N_HELPERS: u8 = 3;

/// One abstract step of a generated method body. Indices are taken
/// modulo the relevant pool, so any `u8` draw is valid.
#[derive(Debug, Clone)]
enum Op {
    /// Read a taint source into the value register.
    Source(u8),
    /// Leak the value register into a sink.
    Sink(u8),
    /// Store the value register into an instance field.
    Stash(u8),
    /// Load an instance field into the value register.
    Load(u8),
    /// Allocate a fresh abstract intent.
    NewIntent,
    /// Set an action on the current intent.
    SetAction(u8),
    /// Put the value register into the current intent under a key.
    PutExtra(u8),
    /// Give the current intent an explicit target.
    SetTarget,
    /// Send the current intent over one of the ICC methods.
    Send(u8),
    /// Call a helper method; its result replaces the value register.
    Call(u8),
    /// A reachable dynamic permission check.
    PermCheck,
    /// A guarded sub-block: live (unknown condition, both paths join) or
    /// dead (constant-false guard — the body must be pruned).
    Branch(bool, Vec<Op>),
}

/// A whole generated app: two entry points (their field interplay drives
/// extra fixpoint rounds), helper bodies whose `Call` ops form arbitrary
/// — including cyclic — call chains, and optionally a method mangled
/// after construction so the verifier quarantines it.
#[derive(Debug, Clone)]
struct AppSpec {
    entry_ops: Vec<Op>,
    create_ops: Vec<Op>,
    helpers: Vec<Vec<Op>>,
    broken_helper: bool,
    call_broken: bool,
}

fn flat_op() -> BoxedStrategy<Op> {
    prop_oneof![
        (0u8..3).prop_map(Op::Source),
        (0u8..3).prop_map(Op::Sink),
        (0u8..3).prop_map(Op::Stash),
        (0u8..3).prop_map(Op::Load),
        Just(Op::NewIntent),
        (0u8..4).prop_map(Op::SetAction),
        (0u8..3).prop_map(Op::PutExtra),
        Just(Op::SetTarget),
        (0u8..6).prop_map(Op::Send),
        (0u8..6).prop_map(Op::Call),
        Just(Op::PermCheck),
    ]
    .boxed()
}

fn op() -> BoxedStrategy<Op> {
    prop_oneof![
        flat_op(),
        (any::<bool>(), prop::collection::vec(flat_op(), 1..4))
            .prop_map(|(live, body)| Op::Branch(live, body)),
    ]
    .boxed()
}

fn app_spec() -> impl Strategy<Value = AppSpec> {
    (
        prop::collection::vec(op(), 1..8),
        prop::collection::vec(op(), 0..5),
        prop::collection::vec(prop::collection::vec(flat_op(), 0..5), 3..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(entry_ops, create_ops, helpers, broken_helper, call_broken)| AppSpec {
                entry_ops,
                create_ops,
                helpers,
                broken_helper,
                call_broken,
            },
        )
}

fn build_app(spec: &AppSpec) -> Apk {
    let mut apk = ApkBuilder::new("com.diff.app");
    apk.uses_permission(perm::ACCESS_FINE_LOCATION);
    apk.uses_permission(perm::SEND_SMS);
    apk.add_component(ComponentDecl::new("LDiff;", ComponentKind::Service));
    let mut cb = apk.class_extends("LDiff;", class::SERVICE);
    for f in FIELDS {
        cb.field(f, false);
    }

    // One shared emitter keeps entry points and helpers structurally
    // uniform; `cond` distinguishes live branches (an unknown register)
    // from dead ones (a constant zero).
    fn emit(m: &mut separ::dex::build::MethodBuilder<'_, '_>, ops: &[Op], broken: bool) {
        let v = m.reg();
        let i = m.reg();
        let s = m.reg();
        let c = m.reg();
        m.const_string(v, "seed");
        let mut has_intent = false;
        emit_ops(m, ops, (v, i, s, c), &mut has_intent);
        if broken {
            m.invoke_virtual("LDiff;", "broken", &[m.this(), v], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
        }
    }

    fn emit_ops(
        m: &mut separ::dex::build::MethodBuilder<'_, '_>,
        ops: &[Op],
        (v, i, s, c): (Reg, Reg, Reg, Reg),
        has_intent: &mut bool,
    ) {
        for op in ops {
            match op {
                Op::Source(k) => match k % 3 {
                    0 => {
                        m.invoke_virtual(
                            class::LOCATION_MANAGER,
                            "getLastKnownLocation",
                            &[v],
                            true,
                        );
                        m.move_result(v);
                    }
                    1 => {
                        m.invoke_virtual(class::TELEPHONY_MANAGER, "getDeviceId", &[v], true);
                        m.move_result(v);
                    }
                    _ => {
                        m.invoke_virtual(class::ACTIVITY, "getIntent", &[m.this()], true);
                        m.move_result(c);
                        m.const_string(s, "in");
                        m.invoke_virtual(class::INTENT, "getStringExtra", &[c, s], true);
                        m.move_result(v);
                    }
                },
                Op::Sink(k) => match k % 3 {
                    0 => {
                        m.invoke_virtual(class::LOG, "d", &[v], false);
                    }
                    1 => {
                        m.invoke_virtual(class::SMS_MANAGER, "sendTextMessage", &[v], false);
                    }
                    _ => {
                        m.invoke_virtual(class::HTTP, "getOutputStream", &[v], true);
                        m.move_result(c);
                    }
                },
                Op::Stash(f) => {
                    m.iput(v, m.this(), "LDiff;", FIELDS[(*f as usize) % FIELDS.len()]);
                }
                Op::Load(f) => {
                    m.iget(v, m.this(), "LDiff;", FIELDS[(*f as usize) % FIELDS.len()]);
                }
                Op::NewIntent => {
                    m.new_instance(i, class::INTENT);
                    *has_intent = true;
                }
                Op::SetAction(a) => {
                    ensure_intent(m, i, has_intent);
                    m.const_string(s, ACTIONS[(*a as usize) % ACTIONS.len()]);
                    m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
                }
                Op::PutExtra(k) => {
                    ensure_intent(m, i, has_intent);
                    m.const_string(s, KEYS[(*k as usize) % KEYS.len()]);
                    m.invoke_virtual(class::INTENT, "putExtra", &[i, s, v], false);
                }
                Op::SetTarget => {
                    ensure_intent(m, i, has_intent);
                    m.const_string(s, "Lcom/other/Tgt;");
                    m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
                }
                Op::Send(w) => {
                    ensure_intent(m, i, has_intent);
                    let name = match w % 3 {
                        0 => "startService",
                        1 => "startActivity",
                        _ => "sendBroadcast",
                    };
                    m.invoke_virtual(class::CONTEXT, name, &[m.this(), i], false);
                }
                Op::Call(h) => {
                    let name = format!("h{}", h % N_HELPERS);
                    m.invoke_virtual("LDiff;", &name, &[m.this(), v], true);
                    m.move_result(v);
                }
                Op::PermCheck => {
                    m.const_string(s, perm::SEND_SMS);
                    m.invoke_virtual(
                        class::CONTEXT,
                        "checkCallingPermission",
                        &[m.this(), s],
                        true,
                    );
                    m.move_result(c);
                }
                Op::Branch(live, body) => {
                    let join = m.new_label();
                    if *live {
                        // An unwritten (or joined) field reads as unknown:
                        // both paths survive.
                        m.iget(c, m.this(), "LDiff;", "f0");
                    } else {
                        m.const_int(c, 0);
                    }
                    m.if_eqz(c, join);
                    emit_ops(m, body, (v, i, s, c), has_intent);
                    m.bind(join);
                }
            }
        }
    }

    fn ensure_intent(
        m: &mut separ::dex::build::MethodBuilder<'_, '_>,
        i: Reg,
        has_intent: &mut bool,
    ) {
        if !*has_intent {
            m.new_instance(i, class::INTENT);
            *has_intent = true;
        }
    }

    {
        let mut m = cb.method("onStartCommand", 3, false, false);
        emit(
            &mut m,
            &spec.entry_ops,
            spec.broken_helper && spec.call_broken,
        );
        m.ret_void();
        m.finish();
    }
    {
        let mut m = cb.method("onCreate", 1, false, false);
        emit(&mut m, &spec.create_ops, false);
        m.ret_void();
        m.finish();
    }
    for (k, body) in spec.helpers.iter().enumerate() {
        let name = format!("h{k}");
        let mut m = cb.method(&name, 2, false, true);
        let v = m.reg();
        let i = m.reg();
        let s = m.reg();
        let c = m.reg();
        m.mov(v, m.param(1));
        let mut has_intent = false;
        emit_ops(&mut m, body, (v, i, s, c), &mut has_intent);
        m.ret(v);
        m.finish();
    }
    // Helpers the strategy didn't generate still exist (Call targets any
    // of the three), as identity functions.
    for k in spec.helpers.len()..N_HELPERS as usize {
        let name = format!("h{k}");
        let mut m = cb.method(&name, 2, false, true);
        m.ret(m.param(1));
        m.finish();
    }
    if spec.broken_helper {
        let mut m = cb.method("broken", 2, false, true);
        m.ret(m.param(1));
        m.finish();
    }
    cb.finish();
    let mut apk = apk.finish();
    if spec.broken_helper {
        // Mangle the method after construction: a move-result with no
        // directly preceding value-returning invoke survives the codec
        // (it is structurally well-formed) but is a verifier Error, so
        // the extractor's lint pre-pass quarantines the scope before
        // analysis.
        let broken = apk.dex.classes[0]
            .methods
            .last_mut()
            .expect("broken helper was just built");
        broken.code = vec![
            Instr::MoveResult { dst: Reg(0) },
            Instr::Return { reg: Reg(0) },
        ];
    }
    apk
}

/// Strips the fields that legitimately differ between two extractions of
/// the same package: wall time always, and visit/summary counters
/// between strategies.
fn normalized(mut model: AppModel) -> AppModel {
    model.stats.duration = std::time::Duration::ZERO;
    model.stats.instructions_visited = 0;
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: summary-based extraction is observationally
    /// identical to the per-context reference, and a cache hit returns
    /// the cold model byte-for-byte.
    #[test]
    fn summary_extraction_matches_per_context_reference(spec in app_spec()) {
        let apk = build_app(&spec);
        let summaries = extract_apk_with(&apk, AnalysisOptions::default());
        let reference = extract_apk_with(
            &apk,
            AnalysisOptions {
                strategy: AnalysisStrategy::PerContext,
                ..AnalysisOptions::default()
            },
        );
        prop_assert_eq!(
            normalized(summaries.clone()),
            normalized(reference),
            "strategies diverged on {:?}",
            spec
        );
        if spec.broken_helper {
            prop_assert!(
                summaries.stats.quarantined_methods >= 1,
                "the mangled method must be quarantined: {:?}",
                summaries.stats
            );
        }

        // Cache transparency: hit == cold, byte-for-byte.
        let bytes = codec::encode(&apk);
        let model_cache = ModelCache::new();
        let (cold, first) = model_cache.get_or_extract(&bytes).expect("decodes");
        let (warm, second) = model_cache.get_or_extract(&bytes).expect("decodes");
        prop_assert_eq!(first, CacheOutcome::Miss);
        prop_assert_eq!(second, CacheOutcome::MemoryHit);
        prop_assert_eq!(cache::encode_entry(&cold), cache::encode_entry(&warm));
        prop_assert_eq!(normalized((*cold).clone()), normalized(summaries));
    }
}

/// Policy identity modulo id (ids are presentation, not identity).
fn policy_fingerprint(policies: &[separ::core::Policy]) -> Vec<String> {
    let mut out: Vec<String> = policies
        .iter()
        .map(|p| {
            format!(
                "{} {:?} {:?} {:?}",
                p.vulnerability, p.event, p.conditions, p.action
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn mutating_one_app_reextracts_only_that_app() {
    separ::obs::global().enable();
    let counters_before = separ::obs::global().snapshot().counters().clone();

    let market = generate(&MarketSpec::scaled(8, 21));
    let mut packages: Vec<Vec<u8>> = market
        .iter()
        .map(|a| codec::encode(&a.apk).to_vec())
        .collect();
    let model_cache = Arc::new(ModelCache::new());
    let separ = Separ::new().with_model_cache(model_cache.clone());

    let first = separ.analyze_packages(&packages).expect("analyzes");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.cache_misses, packages.len());

    // Touch exactly one app: grant it an extra permission and re-encode.
    let mut mutated = codec::decode(&packages[3]).expect("decodes");
    mutated
        .manifest
        .uses_permissions
        .push("android.permission.CAMERA".to_string());
    packages[3] = codec::encode(&mutated).to_vec();

    let second = separ.analyze_packages(&packages).expect("analyzes");
    assert_eq!(
        second.stats.cache_hits,
        packages.len() - 1,
        "every untouched app must be served from the cache"
    );
    assert_eq!(
        second.stats.cache_misses, 1,
        "only the mutated app re-extracts"
    );
    let stats = model_cache.stats();
    assert_eq!(stats.memory_hits as usize, packages.len() - 1);
    assert_eq!(stats.misses as usize, packages.len() + 1);

    // The same counters are observable through separ-obs (deltas are
    // `>=` because the collector is process-global and tests share it).
    let counters = separ::obs::global().snapshot().counters().clone();
    let delta = |name: &str| {
        counters.get(name).copied().unwrap_or(0) - counters_before.get(name).copied().unwrap_or(0)
    };
    assert!(delta("ame.cache.hit") >= (packages.len() - 1) as u64);
    assert!(delta("ame.cache.miss") >= (packages.len() + 1) as u64);
}

#[test]
fn corrupted_disk_entry_falls_back_at_bundle_level() {
    let dir = std::env::temp_dir().join(format!("separ-bundle-cache-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let market = generate(&MarketSpec::scaled(4, 9));
    let packages: Vec<Vec<u8>> = market
        .iter()
        .map(|a| codec::encode(&a.apk).to_vec())
        .collect();

    // Populate the file-backed store, then drop the process-local cache.
    let cold = Separ::new()
        .with_model_cache(Arc::new(ModelCache::with_dir(&dir)))
        .analyze_packages(&packages)
        .expect("analyzes");
    assert_eq!(cold.stats.cache_misses, packages.len());

    // Corrupt one stored entry mid-payload.
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), packages.len());
    let victim = &entries[0];
    let mut data = std::fs::read(victim).expect("readable");
    let mid = data.len() / 2;
    data[mid] ^= 0x55;
    std::fs::write(victim, &data).expect("rewritable");

    // A fresh cache over the same directory — a new process — detects
    // the corruption, re-extracts that app, and serves the rest from
    // disk; the report is unchanged.
    let model_cache = Arc::new(ModelCache::with_dir(&dir));
    let warm = Separ::new()
        .with_model_cache(model_cache.clone())
        .analyze_packages(&packages)
        .expect("analyzes despite corruption");
    assert_eq!(warm.stats.cache_hits, packages.len() - 1);
    assert_eq!(warm.stats.cache_misses, 1);
    let stats = model_cache.stats();
    assert_eq!(stats.corrupt, 1);
    assert_eq!(stats.disk_hits as usize, packages.len() - 1);

    // Cached and uncached analyses agree on every derived artifact.
    let fresh = Separ::new()
        .analyze_packages(&packages)
        .expect("analyzes uncached");
    assert_eq!(
        policy_fingerprint(&warm.policies),
        policy_fingerprint(&fresh.policies)
    );
    let debug_sorted = |r: &separ::core::Report| {
        let mut v: Vec<String> = r.exploits.iter().map(|e| format!("{e:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(debug_sorted(&warm), debug_sorted(&fresh));
    let _ = std::fs::remove_dir_all(&dir);
}
