//! End-to-end integration: the full SEPAR loop on the paper's motivating
//! example — extract, synthesize, derive policies, enforce, verify the
//! attack is stopped — plus the counterfactuals (patched app, consenting
//! user).

use separ::android::types::{perm, Resource};
use separ::core::{Separ, VulnKind};
use separ::corpus::motivating;
use separ::enforce::{Device, PromptHandler};

fn analyzed_bundle() -> (Vec<separ::dex::Apk>, separ::core::Report) {
    let bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
    ];
    let report = Separ::new()
        .analyze_apks(&bundle)
        .expect("analysis succeeds");
    (bundle, report)
}

#[test]
fn exploits_cover_hijack_launch_and_escalation() {
    let (_, report) = analyzed_bundle();
    assert!(report.exploits_of(VulnKind::IntentHijack).count() >= 1);
    assert!(report.exploits_of(VulnKind::ComponentLaunch).count() >= 1);
    assert!(report.exploits_of(VulnKind::PrivilegeEscalation).count() >= 1);
    // No pre-existing leakage among the two benign apps themselves.
    assert_eq!(report.exploits_of(VulnKind::InformationLeakage).count(), 0);
}

#[test]
fn policies_block_the_figure1_attack() {
    let (mut bundle, report) = analyzed_bundle();
    bundle.push(motivating::malicious_app("+15550000"));
    let mut device = Device::new(bundle);
    device.install_policies(
        report.policies.clone(),
        report.apps.iter().map(|a| a.package.clone()).collect(),
        PromptHandler::AlwaysDeny,
    );
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    assert!(
        !device.audit.leaked(Resource::Location, Resource::Sms),
        "policies must stop the GPS->SMS exploit"
    );
    assert!(device.audit.blocked_count() >= 1);
}

#[test]
fn without_policies_the_attack_succeeds() {
    let (mut bundle, _) = analyzed_bundle();
    bundle.push(motivating::malicious_app("+15550000"));
    let mut device = Device::new(bundle);
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    assert!(device.audit.leaked(Resource::Location, Resource::Sms));
}

#[test]
fn consenting_user_overrides_the_prompt() {
    let (mut bundle, report) = analyzed_bundle();
    bundle.push(motivating::malicious_app("+15550000"));
    let mut device = Device::new(bundle);
    device.install_policies(
        report.policies.clone(),
        report.apps.iter().map(|a| a.package.clone()).collect(),
        PromptHandler::AlwaysAllow,
    );
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    assert!(
        device.audit.leaked(Resource::Location, Resource::Sms),
        "prompt-allow must let the ICC through (it is the user's call)"
    );
    assert!(device.pdp().prompts() >= 1);
}

#[test]
fn patched_messenger_is_not_flagged_for_escalation() {
    // With the hasPermission() call wired in (Listing 2 line 6
    // uncommented), privilege escalation must disappear.
    let bundle = vec![motivating::navigator_app(), motivating::messenger_app(true)];
    let report = Separ::new()
        .analyze_apks(&bundle)
        .expect("analysis succeeds");
    assert!(report
        .exploits_of(VulnKind::PrivilegeEscalation)
        .all(|e| !matches!(
            e,
            separ::core::Exploit::PrivilegeEscalation { permission, .. }
                if permission == perm::SEND_SMS
        )));
}

#[test]
fn runtime_permission_check_stops_the_attack_in_the_patched_app() {
    // Even with NO policies, the patched messenger refuses callers
    // without SEND_SMS: the malicious app holds no permissions, so the
    // dynamic check fails at runtime.
    let bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(true),
        motivating::malicious_app("+15550000"),
    ];
    let mut device = Device::new(bundle);
    device.launch("com.navigator", motivating::LOCATION_FINDER);
    device.run_until_idle();
    assert!(
        !device.audit.leaked(Resource::Location, Resource::Sms),
        "checkCallingPermission must gate the SMS"
    );
}

#[test]
fn report_statistics_are_consistent() {
    let (_, report) = analyzed_bundle();
    assert_eq!(report.stats.components, 3);
    assert_eq!(report.stats.intents, 1);
    assert_eq!(report.stats.filters, 1);
    assert!(report.stats.primary_vars > 0);
    // Policies are deduplicated and renumbered densely.
    for (i, p) in report.policies.iter().enumerate() {
        assert_eq!(p.id as usize, i);
    }
}
