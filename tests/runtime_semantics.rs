//! Cross-crate runtime semantics: what the static analyzer claims must
//! match what the device actually does, including the documented
//! divergence (dynamically registered receivers).

use separ::analysis::extractor::extract_apk;
use separ::android::types::Resource;
use separ::baselines::{IccAnalyzer, SeparAnalyzer};
use separ::corpus::builder::{
    result_channel_case, single_app_case, Addressing, ReceiverSpec, SenderSpec,
};
use separ::corpus::iccbench;
use separ::dex::manifest::ComponentKind;
use separ::enforce::Device;
use separ_android::api::IccMethod;

/// Runs every component entry of an app once and drains the bus.
fn exercise(apk: &separ::dex::Apk) -> Device {
    let mut device = Device::new(vec![apk.clone()]);
    let pkg = apk.package().to_string();
    let classes: Vec<String> = apk
        .manifest
        .components
        .iter()
        .map(|c| c.class.clone())
        .collect();
    for class in classes {
        device.launch(&pkg, &class);
        device.run_until_idle();
    }
    device
}

#[test]
fn statically_found_leaks_actually_happen_at_runtime() {
    // For each single-app DroidBench-style shape, if SEPAR reports the
    // leak, executing the app leaks tagged data into the predicted sink.
    let sender = SenderSpec {
        source: Resource::Location,
        ..SenderSpec::new("LS;", IccMethod::StartService, Addressing::action("t.GO"))
    };
    let receiver = ReceiverSpec {
        sink: Resource::Log,
        ..ReceiverSpec::new("LR;", ComponentKind::Service).with_action_filter("t.GO")
    };
    let apk = single_app_case("t.app", &sender, &receiver);
    assert!(!SeparAnalyzer
        .find_leaks(std::slice::from_ref(&apk))
        .is_empty());
    let device = exercise(&apk);
    assert!(device.audit.leaked(Resource::Location, Resource::Log));
}

#[test]
fn result_channel_leaks_at_runtime_too() {
    let apk = result_channel_case(
        "t.rc",
        "LReq;",
        "LResp;",
        IccMethod::StartActivityForResult,
        Resource::DeviceId,
        Resource::Log,
        "token",
    );
    assert!(
        !SeparAnalyzer
            .find_leaks(std::slice::from_ref(&apk))
            .is_empty(),
        "static analysis finds the passive-intent flow"
    );
    let mut device = Device::new(vec![apk]);
    device.launch("t.rc", "LReq;");
    device.run_until_idle();
    assert!(
        device.audit.leaked(Resource::DeviceId, Resource::Log),
        "the reply intent flows back into onActivityResult: {:?}",
        device.audit.events()
    );
}

#[test]
fn dynamic_receiver_leak_is_the_known_static_blind_spot() {
    // DynRegisteredReceiver1: the leak is real at runtime but invisible
    // to SEPAR's static extractor — the paper's documented FN, observed
    // from both sides here.
    let case = iccbench::cases()
        .into_iter()
        .find(|c| c.name == "DynRegisteredReceiver1")
        .expect("case exists");
    assert!(
        SeparAnalyzer.find_leaks(&case.apks).is_empty(),
        "statically missed"
    );
    let mut device = Device::new(case.apks.clone());
    device.launch(case.apks[0].package(), "LDynMain;");
    device.run_until_idle();
    assert!(
        device.audit.leaked(Resource::Location, Resource::Log),
        "but the leak is real at runtime: {:?}",
        device.audit.events()
    );
}

#[test]
fn dead_code_decoy_never_leaks_at_runtime() {
    // The startActivity4 decoy: no static finding, and no runtime leak —
    // confirming it is a true negative, not a missed positive.
    let case = separ::corpus::droidbench::cases()
        .into_iter()
        .find(|c| c.name == "ICC_startActivity4")
        .expect("case exists");
    assert!(SeparAnalyzer.find_leaks(&case.apks).is_empty());
    let device = exercise(&case.apks[0]);
    for sink in [Resource::Log, Resource::Sms, Resource::NetworkWrite] {
        assert!(!device.audit.leaked(Resource::Location, sink));
    }
}

#[test]
fn extraction_statistics_are_populated_for_every_suite_app() {
    for case in separ::corpus::table1_cases() {
        for apk in &case.apks {
            let model = extract_apk(apk);
            assert!(model.stats.app_size > 0, "{}", case.name);
            assert!(!model.components.is_empty(), "{}", case.name);
        }
    }
}
