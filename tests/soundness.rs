//! Differential soundness: over a grid of leak-app configurations, the
//! static analyzer's verdict must agree with what actually happens when
//! the app runs on the device — SEPAR reports a leak if and only if
//! executing the app leaks tagged data into the predicted sink.
//!
//! (The one deliberate exception, dynamically registered receivers, is
//! covered by its own test in `runtime_semantics.rs`.)

use separ::android::types::Resource;
use separ::baselines::{IccAnalyzer, SeparAnalyzer};
use separ::corpus::builder::{
    kind_for, single_app_case, Addressing, Indirection, ReceiverSpec, SenderSpec,
};
use separ::enforce::Device;
use separ_android::api::IccMethod;

#[derive(Clone, Copy, Debug)]
#[allow(clippy::enum_variant_names)] // ActionMatch/ActionMismatch are domain terms
enum Match {
    Explicit,
    ActionMatch,
    ActionMismatch,
}

fn build_case(
    via: IccMethod,
    matching: Match,
    indirection: Indirection,
    dead: bool,
    source: Resource,
    sink: Resource,
) -> separ::dex::Apk {
    let addressing = match matching {
        Match::Explicit => Addressing::Explicit,
        Match::ActionMatch | Match::ActionMismatch => Addressing::action("grid.GO"),
    };
    let sender = SenderSpec {
        source,
        indirection,
        dead_guard: dead,
        ..SenderSpec::new("LGridSender;", via, addressing)
    };
    let mut receiver = ReceiverSpec {
        sink,
        exported: Some(true),
        ..ReceiverSpec::new("LGridRecv;", kind_for(via))
    };
    match matching {
        Match::Explicit => {}
        Match::ActionMatch => {
            receiver = receiver.with_action_filter("grid.GO");
        }
        Match::ActionMismatch => {
            receiver = receiver.with_action_filter("grid.OTHER");
        }
    }
    single_app_case("grid.app", &sender, &receiver)
}

/// Executes every component entry once and reports whether tagged data
/// reached the sink.
fn runtime_leaks(apk: &separ::dex::Apk, source: Resource, sink: Resource) -> bool {
    let mut device = Device::new(vec![apk.clone()]);
    let classes: Vec<String> = apk
        .manifest
        .components
        .iter()
        .map(|c| c.class.clone())
        .collect();
    for class in classes {
        device.launch("grid.app", &class);
        device.run_until_idle();
    }
    device.audit.leaked(source, sink)
}

#[test]
fn static_and_runtime_verdicts_agree_across_the_grid() {
    let vias = [
        IccMethod::StartService,
        IccMethod::SendBroadcast,
        IccMethod::StartActivity,
    ];
    let matches = [Match::Explicit, Match::ActionMatch, Match::ActionMismatch];
    let indirections = [Indirection::None, Indirection::Helper, Indirection::Field];
    let combos = [
        (Resource::Location, Resource::Log),
        (Resource::DeviceId, Resource::Sms),
    ];
    let mut checked = 0;
    for &via in &vias {
        for &matching in &matches {
            for &indirection in &indirections {
                for &dead in &[false, true] {
                    let (source, sink) = combos[checked % combos.len()];
                    let apk = build_case(via, matching, indirection, dead, source, sink);
                    let static_leak = !SeparAnalyzer
                        .find_leaks(std::slice::from_ref(&apk))
                        .is_empty();
                    let dynamic_leak = runtime_leaks(&apk, source, sink);
                    let expected = !dead && !matches!(matching, Match::ActionMismatch);
                    assert_eq!(
                        static_leak, expected,
                        "static verdict for {via:?}/{matching:?}/{indirection:?} dead={dead}"
                    );
                    assert_eq!(
                        dynamic_leak, expected,
                        "runtime verdict for {via:?}/{matching:?}/{indirection:?} dead={dead}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 54);
}

#[test]
fn category_and_data_dimensions_agree_too() {
    // Matching and mismatching category / type / scheme combinations.
    use separ::dex::manifest::IntentFilterDecl;
    struct Dim {
        name: &'static str,
        send_cat: Option<&'static str>,
        send_type: Option<&'static str>,
        send_scheme: Option<&'static str>,
        filt_cat: Option<&'static str>,
        filt_type: Option<&'static str>,
        filt_scheme: Option<&'static str>,
        expect: bool,
    }
    let dims = [
        Dim {
            name: "cat_match",
            send_cat: Some("c.D"),
            send_type: None,
            send_scheme: None,
            filt_cat: Some("c.D"),
            filt_type: None,
            filt_scheme: None,
            expect: true,
        },
        Dim {
            name: "cat_mismatch",
            send_cat: Some("c.D"),
            send_type: None,
            send_scheme: None,
            filt_cat: None,
            filt_type: None,
            filt_scheme: None,
            expect: false,
        },
        Dim {
            name: "type_match",
            send_cat: None,
            send_type: Some("text/plain"),
            send_scheme: None,
            filt_cat: None,
            filt_type: Some("text/plain"),
            filt_scheme: None,
            expect: true,
        },
        Dim {
            name: "type_mismatch",
            send_cat: None,
            send_type: Some("text/plain"),
            send_scheme: None,
            filt_cat: None,
            filt_type: Some("image/png"),
            filt_scheme: None,
            expect: false,
        },
        Dim {
            name: "scheme_match",
            send_cat: None,
            send_type: None,
            send_scheme: Some("content"),
            filt_cat: None,
            filt_type: None,
            filt_scheme: Some("content"),
            expect: true,
        },
        Dim {
            name: "scheme_mismatch",
            send_cat: None,
            send_type: None,
            send_scheme: Some("content"),
            filt_cat: None,
            filt_type: None,
            filt_scheme: Some("ftp"),
            expect: false,
        },
    ];
    for d in &dims {
        let sender = SenderSpec {
            source: Resource::Location,
            ..SenderSpec::new(
                "LGridSender;",
                IccMethod::StartService,
                Addressing::Implicit {
                    action: "grid.DIM".into(),
                    categories: d.send_cat.iter().map(|s| s.to_string()).collect(),
                    data_type: d.send_type.map(String::from),
                    data_scheme: d.send_scheme.map(String::from),
                },
            )
        };
        let mut filter = IntentFilterDecl::for_actions(["grid.DIM"]);
        filter.categories = d.filt_cat.iter().map(|s| s.to_string()).collect();
        filter.data_types = d.filt_type.iter().map(|s| s.to_string()).collect();
        filter.data_schemes = d.filt_scheme.iter().map(|s| s.to_string()).collect();
        let receiver = ReceiverSpec {
            filter: Some(filter),
            sink: Resource::Log,
            ..ReceiverSpec::new("LGridRecv;", kind_for(IccMethod::StartService))
        };
        let apk = single_app_case("grid.app", &sender, &receiver);
        let static_leak = !SeparAnalyzer
            .find_leaks(std::slice::from_ref(&apk))
            .is_empty();
        let dynamic_leak = runtime_leaks(&apk, Resource::Location, Resource::Log);
        assert_eq!(static_leak, d.expect, "static: {}", d.name);
        assert_eq!(dynamic_leak, d.expect, "runtime: {}", d.name);
    }
}
