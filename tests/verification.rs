//! End-to-end verification/quarantine: a bundle containing one app with a
//! quarantined method still analyzes end to end, the quarantine is visible
//! in the pipeline stats, and the corpus itself is Error-free under
//! `separ lint`'s checks.

use separ::analysis::diagnostics::{self, DiagnosticKind, Severity};
use separ::core::Separ;
use separ::corpus::{casestudy, motivating};
use separ::dex::codec::{decode, encode};
use separ::dex::{Apk, Instr, Reg};

/// The malicious app with one extra malformed (orphan `move-result`)
/// method, shipped through the binary codec like any hostile package.
fn tampered_malicious_app() -> Apk {
    let mut apk = motivating::malicious_app("+15550000");
    let name = apk.dex.pools.str("corrupted");
    apk.dex.classes[0].methods.push(separ::dex::Method {
        name,
        num_registers: 1,
        num_params: 0,
        is_static: true,
        returns_value: false,
        code: vec![Instr::MoveResult { dst: Reg(0) }, Instr::ReturnVoid],
    });
    // The defect survives the codec (pairing is not a container-level
    // property), so the verifier is the only line of defense.
    decode(&encode(&apk)).expect("tampered app still decodes")
}

#[test]
fn bundle_with_quarantined_method_analyzes_end_to_end() {
    let bundle = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
        tampered_malicious_app(),
    ];
    let report = Separ::new()
        .analyze_apks(&bundle)
        .expect("bundle analyzes despite the malformed method");
    // The quarantine is visible in the bundle stats (and thus in
    // `separ analyze --stats`).
    assert_eq!(report.stats.quarantined_methods, 1);
    assert!(report.stats.diagnostics >= 1);
    assert_eq!(report.stats.counts().quarantined_methods, 1);
    let malicious = report
        .apps
        .iter()
        .find(|a| a.package == "com.innocent.wallpaper")
        .expect("tampered app extracted");
    assert!(malicious.has_error_diagnostics());
    assert!(malicious
        .diagnostics
        .iter()
        .any(|d| d.kind == DiagnosticKind::MoveResultPairing && d.severity == Severity::Error));
    // The rest of the bundle still yields the paper's exploits.
    assert!(
        !report.exploits.is_empty(),
        "clean apps still produce exploit scenarios"
    );
    assert!(!report.policies.is_empty());
}

#[test]
fn quarantine_changes_facts_only_for_the_poisoned_method() {
    // Same bundle analyzed with and without the tampered method: every
    // clean app's model is identical.
    let clean = Separ::new()
        .analyze_apks(&[
            motivating::navigator_app(),
            motivating::messenger_app(false),
        ])
        .expect("clean bundle");
    let tampered = Separ::new()
        .analyze_apks(&[
            motivating::navigator_app(),
            motivating::messenger_app(false),
            tampered_malicious_app(),
        ])
        .expect("tampered bundle");
    for app in &clean.apps {
        let other = tampered
            .apps
            .iter()
            .find(|a| a.package == app.package)
            .expect("same apps");
        assert_eq!(app.components, other.components);
    }
}

#[test]
fn corpus_is_free_of_error_diagnostics() {
    let mut apks = vec![
        motivating::navigator_app(),
        motivating::messenger_app(false),
        motivating::messenger_app(true),
        motivating::malicious_app("+15550000"),
    ];
    apks.extend(casestudy::all());
    for case in separ::corpus::table1_cases() {
        apks.extend(case.apks);
    }
    for apk in &apks {
        let lint = diagnostics::lint_apk(apk);
        assert!(
            !lint.has_errors(),
            "{} must verify Error-free: {:?}",
            apk.package(),
            lint.diagnostics
        );
        assert_eq!(lint.quarantined_methods, 0);
    }
}

#[test]
fn motivating_bundle_lints_clean_of_errors_via_binary() {
    // The exact bundle `separ pack` writes and CI's lint-smoke step
    // checks: encode, decode, lint.
    for apk in [
        motivating::navigator_app(),
        motivating::messenger_app(false),
        motivating::malicious_app("+15550000"),
    ] {
        let decoded = decode(&encode(&apk)).expect("round-trips");
        let lint = diagnostics::lint_apk(&decoded);
        assert!(!lint.has_errors(), "{:?}", lint.diagnostics);
    }
}
