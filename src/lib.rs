//! **separ** — the umbrella crate of the SEPAR reproduction.
//!
//! SEPAR (Bagheri, Sadeghi, Jabbarvand, Malek — DSN 2016) synthesizes and
//! enforces Android security policies for inter-app vulnerabilities. This
//! crate re-exports the whole stack so applications can depend on one
//! name:
//!
//! * [`logic`] — bounded relational-logic model finding over a CDCL SAT
//!   core (the Alloy/Kodkod/SAT4J/Aluminum substitute);
//! * [`dex`] — the Dalvik-like bytecode substrate with a binary container
//!   codec, builder DSL and interpreter;
//! * [`android`] — the modelled Android framework (types, intent
//!   resolution, API & permission maps);
//! * [`analysis`] — AME, the static model extractor;
//! * [`core`] — ASE, the analysis & synthesis engine (the paper's primary
//!   contribution): vulnerability signatures, exploit synthesis, ECA
//!   policy derivation;
//! * [`enforce`] — APE, the runtime policy enforcer on a simulated device;
//! * [`serve`] — the continuous analysis service: a long-running daemon
//!   over the incremental session (`separ serve`);
//! * [`obs`] — structured tracing, metrics and trace export spanning all
//!   of the above;
//! * [`corpus`] — benchmark suites, market generators, case-study apps;
//! * [`baselines`] — the DidFail-like and AmanDroid-like comparators.
//!
//! # Examples
//!
//! Analyze the paper's motivating bundle and print the derived policies:
//!
//! ```
//! use separ::core::Separ;
//! use separ::corpus::motivating;
//!
//! let bundle = vec![motivating::navigator_app(), motivating::messenger_app(false)];
//! let report = Separ::new().analyze_apks(&bundle)?;
//! assert!(!report.policies.is_empty());
//! # Ok::<(), separ::logic::LogicError>(())
//! ```
#![warn(missing_docs)]

pub use separ_analysis as analysis;
pub use separ_android as android;
pub use separ_baselines as baselines;
pub use separ_core as core;
pub use separ_corpus as corpus;
pub use separ_dex as dex;
pub use separ_enforce as enforce;
pub use separ_logic as logic;
pub use separ_obs as obs;
pub use separ_serve as serve;
