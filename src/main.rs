//! `separ` — the command-line front end of the reproduction.
//!
//! ```text
//! separ pack <dir>                         write the demo bundle as .sdex files
//! separ analyze <app.sdex>... [options]    run AME + ASE on a bundle
//!     --policies-out <file>                write synthesized policies as JSON
//!     --alloy                              print the extracted Alloy modules
//!     --threads <n>                        worker threads (0 = all cores, the default)
//!     --stats                              per-signature CNF/SAT statistics + span/metric summary
//!     --trace <file>                       write a Chrome trace-event JSON (Perfetto-loadable)
//!     --events <file>                      write the structured event log as JSONL
//!     --encoding <pg|tseitin>              CNF encoding (polarity-aware pg is the default)
//!     --symmetry-breaking                  conjoin lex-leader symmetry-breaking predicates
//!     --no-slicing                         translate every signature against the whole
//!                                          bundle instead of its relevance slice
//!     --model-cache <dir>                  reuse extracted models keyed by package content hash
//! separ disasm <app.sdex>                  disassemble a package
//! separ lint <app.sdex>... [--json]        verify packages, report diagnostics
//!                                          (including Info-severity relevance findings)
//! separ enforce <app.sdex>... --policies <file> --launch <pkg> <Class>
//!                             [--stats] [--threads <n>]
//!                                          run a bundle under enforcement;
//!                                          --threads adds a post-run PDP
//!                                          throughput probe with n readers
//! separ serve --socket <path> | --listen <addr>
//!             [--store <dir>] [--queue <n>] [--batch-max <n>]
//!             [--deadline-ms <n>] [--cache-cap-mb <n>] [--threads <n>]
//!             [--slow-ms <n>] [--audit <file>] [--audit-max-kb <n>]
//!                                          run the continuous analysis
//!                                          daemon: line-delimited JSON
//!                                          requests (install / uninstall /
//!                                          set_permission / query / decide /
//!                                          stats / metrics / health /
//!                                          subscribe / shutdown) over a
//!                                          unix socket or TCP; --store
//!                                          persists the session across
//!                                          restarts; --slow-ms logs slow
//!                                          requests; --audit appends a
//!                                          size-rotated JSONL audit log
//! separ demo                               the Figure 1 attack, end to end
//! ```

use std::process::ExitCode;

use separ::analysis::diagnostics::{self, Severity};
use separ::core::{policy_io, Separ, SeparConfig};
use separ::dex::codec;
use separ::enforce::{Device, PromptHandler};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("pack") => cmd_pack(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("lint") => return cmd_lint(&args[1..]),
        Some("enforce") => cmd_enforce(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!("usage: separ <pack|analyze|disasm|lint|enforce|serve|demo> ...");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("separ: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), String>;

fn load_apk(path: &str) -> Result<separ::dex::Apk, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    codec::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

/// `separ pack <dir>`: writes the motivating bundle as binary packages.
fn cmd_pack(args: &[String]) -> CliResult {
    let dir = args.first().ok_or("pack: missing output directory")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let apps = [
        ("navigator.sdex", separ::corpus::motivating::navigator_app()),
        (
            "messenger.sdex",
            separ::corpus::motivating::messenger_app(false),
        ),
        (
            "wallpaper.sdex",
            separ::corpus::motivating::malicious_app("+15550000"),
        ),
    ];
    for (name, apk) in apps {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, codec::encode(&apk)).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path} ({})", apk.package());
    }
    Ok(())
}

/// `separ analyze <apps...>`: full pipeline, human-readable report.
fn cmd_analyze(args: &[String]) -> CliResult {
    let mut files = Vec::new();
    let mut policies_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut print_alloy = false;
    let mut print_stats = false;
    let mut model_cache_dir: Option<String> = None;
    let mut config = SeparConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policies-out" => {
                i += 1;
                policies_out = Some(
                    args.get(i)
                        .ok_or("analyze: --policies-out needs a path")?
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).ok_or("analyze: --trace needs a path")?.clone());
            }
            "--events" => {
                i += 1;
                events_out = Some(args.get(i).ok_or("analyze: --events needs a path")?.clone());
            }
            "--alloy" => print_alloy = true,
            "--stats" => print_stats = true,
            "--threads" => {
                i += 1;
                config.threads = args
                    .get(i)
                    .ok_or("analyze: --threads needs a count")?
                    .parse()
                    .map_err(|e| format!("analyze: --threads: {e}"))?;
            }
            "--encoding" => {
                i += 1;
                config.cnf_encoding = match args.get(i).map(String::as_str) {
                    Some("pg") | Some("plaisted-greenbaum") => {
                        separ::logic::CnfEncoding::PlaistedGreenbaum
                    }
                    Some("tseitin") => separ::logic::CnfEncoding::Tseitin,
                    other => {
                        return Err(format!(
                            "analyze: --encoding must be pg or tseitin, got {other:?}"
                        ))
                    }
                };
            }
            "--symmetry-breaking" => config.symmetry_breaking = true,
            "--no-slicing" => config.slicing = false,
            "--model-cache" => {
                i += 1;
                model_cache_dir = Some(
                    args.get(i)
                        .ok_or("analyze: --model-cache needs a directory")?
                        .clone(),
                );
            }
            f if f.starts_with('-') => {
                return Err(format!("analyze: unknown option {f}"));
            }
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    if files.is_empty() {
        return Err("analyze: no input packages".into());
    }
    // Timing in `BundleStats` is span-derived, so tracing is on for
    // every analyze run; the snapshot also feeds --trace/--events.
    separ::obs::global().enable();
    let apks: Vec<_> = files
        .iter()
        .map(|f| load_apk(f))
        .collect::<Result<_, _>>()?;
    let mut separ = Separ::new().with_config(config);
    let model_cache = model_cache_dir
        .as_ref()
        .map(|dir| std::sync::Arc::new(separ::core::ModelCache::with_dir(dir)));
    if let Some(cache) = &model_cache {
        separ = separ.with_model_cache(cache.clone());
    }
    let report = separ.analyze_apks(&apks).map_err(|e| e.to_string())?;
    println!(
        "bundle: {} app(s), {} component(s), {} intent(s)",
        report.apps.len(),
        report.stats.components,
        report.stats.intents
    );
    println!(
        "timing: extraction {:?} wall / {:?} cpu, resolution {:?}, synthesis {:?} wall ({:?} construction + {:?} solving cpu)",
        report.stats.extraction_wall,
        report.stats.extraction_cpu,
        report.stats.resolution,
        report.stats.synthesis_wall,
        report.stats.construction,
        report.stats.solving,
    );
    if let Some(cache) = &model_cache {
        let cs = cache.stats();
        println!(
            "model cache: {} hit(s) ({} memory, {} disk), {} miss(es), {} corrupt entr(ies)",
            report.stats.cache_hits,
            cs.memory_hits,
            cs.disk_hits,
            report.stats.cache_misses,
            cs.corrupt,
        );
    }
    if report.stats.quarantined_methods > 0 {
        println!(
            "warning: {} method(s) quarantined by the bytecode verifier (run `separ lint` for details)",
            report.stats.quarantined_methods
        );
    }
    if print_stats {
        println!(
            "verifier: {} diagnostic(s), {} quarantined method(s)",
            report.stats.diagnostics, report.stats.quarantined_methods
        );
        println!(
            "extraction: {} model-cache hit(s), {} miss(es)",
            report.stats.cache_hits, report.stats.cache_misses
        );
        println!(
            "solver: {} primary vars, {} clauses, {}/{} signatures reused the shared bundle base",
            report.stats.primary_vars,
            report.stats.cnf_clauses,
            report.stats.shared_base_reuse,
            report.stats.per_signature.len(),
        );
        println!(
            "slicing: {} app slot(s) kept, {} dropped across {} signature(s){}",
            report.stats.slice_kept,
            report.stats.slice_dropped,
            report.stats.per_signature.len(),
            if config.slicing { "" } else { " (disabled)" },
        );
        for s in &report.stats.per_signature {
            println!(
                "  {:<22} slice={}/{} vars={:<5} clauses={:<6} conflicts={:<5} propagations={:<7} restarts={} learnts={} minimized={} construction={:?} solving={:?}",
                s.name,
                s.slice_kept,
                s.slice_kept + s.slice_dropped,
                s.primary_vars,
                s.cnf_clauses,
                s.solver.conflicts,
                s.solver.propagations,
                s.solver.restarts,
                s.solver.learnts,
                s.solver.minimized_lits,
                s.construction,
                s.solving,
            );
        }
    }
    if print_alloy {
        println!(
            "\n{}",
            separ::core::alloy_export::bundle_modules(&report.apps)
        );
    }
    println!("\nexploit scenarios ({}):", report.exploits.len());
    for e in &report.exploits {
        println!("  - {e}");
    }
    println!("\npolicies ({}):", report.policies.len());
    for p in &report.policies {
        println!(
            "  #{} [{}] {:?}: {:?}",
            p.id, p.vulnerability, p.event, p.conditions
        );
    }
    if let Some(path) = policies_out {
        std::fs::write(&path, policy_io::to_json(&report.policies))
            .map_err(|e| format!("{path}: {e}"))?;
        println!("\npolicies written to {path}");
    }
    if trace_out.is_some() || events_out.is_some() || print_stats {
        let trace = separ::obs::global().snapshot();
        if print_stats {
            println!("\nobservability summary:");
            print!("{}", trace.text_summary());
        }
        if let Some(path) = trace_out {
            std::fs::write(&path, trace.chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
            println!("trace written to {path}");
        }
        if let Some(path) = events_out {
            std::fs::write(&path, trace.events_jsonl()).map_err(|e| format!("{path}: {e}"))?;
            println!("events written to {path}");
        }
    }
    Ok(())
}

/// `separ disasm <app>`: textual listing.
fn cmd_disasm(args: &[String]) -> CliResult {
    let file = args.first().ok_or("disasm: missing input package")?;
    let apk = load_apk(file)?;
    print!("{}", separ::dex::disasm::package(&apk));
    Ok(())
}

/// `separ lint <apps...> [--json]`: decode and verify packages, reporting
/// structured diagnostics. Exit codes: 0 = no Error-severity findings,
/// 1 = at least one Error, 2 = usage or I/O problems.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut files = Vec::new();
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            f if f.starts_with('-') => {
                eprintln!("separ: lint: unknown option {f}");
                return ExitCode::from(2);
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("separ: lint: no input packages");
        return ExitCode::from(2);
    }
    let mut all = Vec::new();
    let mut quarantined = 0usize;
    for path in &files {
        match std::fs::read(path) {
            Err(e) => {
                eprintln!("separ: lint: {path}: {e}");
                return ExitCode::from(2);
            }
            Ok(bytes) => match codec::decode(&bytes) {
                // A malformed container is a finding, not an abort: the
                // remaining packages still get linted.
                Err(e) => all.push(diagnostics::decode_failure(path, &e)),
                Ok(apk) => {
                    let lint = diagnostics::lint_apk(&apk);
                    quarantined += lint.quarantined_methods;
                    all.extend(lint.diagnostics);
                    // Relevance findings read the extracted model, not
                    // the raw package: components no signature footprint
                    // can match are reported at Info severity.
                    let model = separ::analysis::extractor::extract_apk(&apk);
                    all.extend(diagnostics::unreachable_components(&model));
                }
            },
        }
    }
    let errors = all.iter().filter(|d| d.severity == Severity::Error).count();
    let infos = all.iter().filter(|d| d.severity == Severity::Info).count();
    if json {
        print!("{}", diagnostics::to_json(&all));
    } else {
        for d in &all {
            println!("{d}");
        }
        println!(
            "{} finding(s) in {} package(s): {} error(s), {} warning(s), {} info(s); {} method(s) would be quarantined",
            all.len(),
            files.len(),
            errors,
            all.len() - errors - infos,
            infos,
            quarantined,
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `separ serve --socket <path> | --listen <addr> [options]`.
fn cmd_serve(args: &[String]) -> CliResult {
    use separ::serve::{Daemon, Endpoint, ServeConfig};
    let mut endpoint: Option<Endpoint> = None;
    let mut cfg = ServeConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or(format!("serve: {flag} needs a value"))
        };
        match flag {
            "--socket" => {
                endpoint = Some(Endpoint::Unix(value(i)?.into()));
                i += 1;
            }
            "--listen" => {
                endpoint = Some(Endpoint::Tcp(value(i)?.clone()));
                i += 1;
            }
            "--store" => {
                cfg.store_dir = Some(value(i)?.into());
                i += 1;
            }
            "--queue" => {
                cfg.queue_capacity = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --queue: {e}"))?;
                i += 1;
            }
            "--batch-max" => {
                cfg.batch_max = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --batch-max: {e}"))?;
                i += 1;
            }
            "--deadline-ms" => {
                let ms: u64 = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --deadline-ms: {e}"))?;
                cfg.default_deadline = std::time::Duration::from_millis(ms);
                i += 1;
            }
            "--cache-cap-mb" => {
                let mb: u64 = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --cache-cap-mb: {e}"))?;
                cfg.cache_cap_bytes = Some(mb * 1024 * 1024);
                i += 1;
            }
            "--threads" => {
                cfg.config.threads = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --threads: {e}"))?;
                i += 1;
            }
            "--slow-ms" => {
                cfg.slow_ms = Some(
                    value(i)?
                        .parse()
                        .map_err(|e| format!("serve: --slow-ms: {e}"))?,
                );
                i += 1;
            }
            "--audit" => {
                cfg.audit_path = Some(value(i)?.into());
                i += 1;
            }
            "--audit-max-kb" => {
                let kb: u64 = value(i)?
                    .parse()
                    .map_err(|e| format!("serve: --audit-max-kb: {e}"))?;
                cfg.audit_max_bytes = kb * 1024;
                i += 1;
            }
            f => return Err(format!("serve: unknown option {f}")),
        }
        i += 1;
    }
    let endpoint = endpoint.ok_or("serve: need --socket <path> or --listen <addr>")?;
    separ::obs::global().enable();
    let daemon = Daemon::start(cfg).map_err(|e| format!("serve: {e}"))?;
    let (restored, skipped) = daemon.restored();
    if restored > 0 || skipped > 0 {
        println!("separ serve: restored {restored} app(s) from store ({skipped} unrecoverable)");
    }
    match &endpoint {
        Endpoint::Unix(path) => println!("separ serve: listening on {}", path.display()),
        Endpoint::Tcp(addr) => println!("separ serve: listening on {addr}"),
    }
    separ::serve::serve(daemon, &endpoint).map_err(|e| format!("serve: {e}"))?;
    println!("separ serve: drained and stopped");
    Ok(())
}

/// `separ enforce <apps...> --policies <file> --launch <pkg> <Class>`.
fn cmd_enforce(args: &[String]) -> CliResult {
    let mut files = Vec::new();
    let mut policy_file: Option<String> = None;
    let mut launch: Option<(String, String)> = None;
    let mut print_stats = false;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => print_stats = true,
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .ok_or("enforce: --threads needs a count")?
                    .parse()
                    .map_err(|e| format!("enforce: --threads: {e}"))?;
                if n == 0 {
                    return Err("enforce: --threads must be at least 1".into());
                }
                threads = Some(n);
            }
            "--policies" => {
                i += 1;
                policy_file = Some(
                    args.get(i)
                        .ok_or("enforce: --policies needs a path")?
                        .clone(),
                );
            }
            "--launch" => {
                let pkg = args
                    .get(i + 1)
                    .ok_or("enforce: --launch needs <pkg> <Class>")?;
                let class = args
                    .get(i + 2)
                    .ok_or("enforce: --launch needs <pkg> <Class>")?;
                launch = Some((pkg.clone(), class.clone()));
                i += 2;
            }
            f if f.starts_with('-') => {
                return Err(format!("enforce: unknown option {f}"));
            }
            f => files.push(f.to_string()),
        }
        i += 1;
    }
    // PDP decision latencies land in a histogram on the global
    // collector; --stats prints it after the run.
    separ::obs::global().enable();
    let apks: Vec<_> = files
        .iter()
        .map(|f| load_apk(f))
        .collect::<Result<_, _>>()?;
    if apks.is_empty() {
        return Err("enforce: no input packages".into());
    }
    let packages: Vec<String> = apks.iter().map(|a| a.package().to_string()).collect();
    let mut device = Device::new(apks);
    if let Some(path) = policy_file {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        let policies = policy_io::from_json(&text).map_err(|e| e.to_string())?;
        println!("installed {} polic(ies)", policies.len());
        device.install_policies(policies, packages, PromptHandler::AlwaysDeny);
    }
    let (pkg, class) = launch.ok_or("enforce: --launch <pkg> <Class> is required")?;
    if !device.launch(&pkg, &class) {
        return Err(format!("could not launch {pkg}/{class}"));
    }
    let delivered = device.run_until_idle();
    println!("processed {delivered} ICC envelope(s)\naudit:");
    for e in device.audit.events() {
        println!("  {e:?}");
    }
    if let Some(n) = threads {
        probe_pdp_throughput(&device, n);
    }
    if print_stats {
        println!("\nobservability summary:");
        print!("{}", separ::obs::global().snapshot().text_summary());
    }
    Ok(())
}

/// Post-run sustained-throughput probe: `n` reader threads evaluate the
/// installed policy set concurrently against per-policy engineered
/// contexts (each policy gets one hit and one near-miss probe). Readers
/// share the device's compiled set through the lock-free swap handle, so
/// this measures exactly what emulated runtimes pay per intercepted ICC
/// call.
fn probe_pdp_throughput(device: &Device, n: usize) {
    use std::time::Instant;
    let shared = device.pdp().shared();
    let probes = separ::enforce::probe_contexts(device.pdp().policies());
    if probes.is_empty() {
        println!("\npdp throughput: no policies installed, nothing to probe");
        return;
    }
    const ROUNDS: usize = 2_000;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| {
                let mut reader = shared.reader();
                let mut prompt = PromptHandler::AlwaysDeny;
                for _ in 0..ROUNDS {
                    for (event, ctx) in &probes {
                        reader.evaluate(*event, ctx, &mut prompt);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let decisions = (n * ROUNDS * probes.len()) as f64;
    println!(
        "\npdp throughput: {} reader(s) x {} decisions in {:.1} ms = {:.0} decisions/sec",
        n,
        decisions as u64 / n as u64,
        elapsed.as_secs_f64() * 1e3,
        decisions / elapsed.as_secs_f64()
    );
}

/// `separ demo`: the whole Figure 1 story in one command.
fn cmd_demo() -> CliResult {
    use separ::android::types::Resource;
    use separ::corpus::motivating;
    separ::obs::global().enable();
    let navigator = motivating::navigator_app();
    let messenger = motivating::messenger_app(false);
    let malicious = motivating::malicious_app("+15550000");
    let report = Separ::new()
        .analyze_apks(&[navigator.clone(), messenger.clone()])
        .map_err(|e| e.to_string())?;
    println!(
        "synthesized {} exploit(s), {} polic(ies)",
        report.exploits.len(),
        report.policies.len()
    );
    let mut unprotected = Device::new(vec![
        navigator.clone(),
        messenger.clone(),
        malicious.clone(),
    ]);
    unprotected.launch("com.navigator", motivating::LOCATION_FINDER);
    unprotected.run_until_idle();
    println!(
        "unprotected: location leaked over SMS = {}",
        unprotected.audit.leaked(Resource::Location, Resource::Sms)
    );
    let mut protected = Device::new(vec![navigator, messenger, malicious]);
    protected.install_policies(
        report.policies,
        report.apps.iter().map(|a| a.package.clone()).collect(),
        PromptHandler::AlwaysDeny,
    );
    protected.launch("com.navigator", motivating::LOCATION_FINDER);
    protected.run_until_idle();
    println!(
        "protected:   location leaked over SMS = {} ({} blocked)",
        protected.audit.leaked(Resource::Location, Resource::Sms),
        protected.audit.blocked_count()
    );
    Ok(())
}
