//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace resolves `criterion` to this path dependency: a minimal
//! wall-clock harness with the same macro and builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`). Each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the per-iteration mean, minimum, and maximum.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark harness handle passed to every group function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A two-part benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An identifier combining a name with the input's parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Benchmarks a closure against one prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// Times the body of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` repeatedly: a short warm-up, then one timed run per
    /// sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..2 {
            black_box(body());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(body());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, group: &str, id: &impl Display) {
        if self.samples.is_empty() {
            println!("{group}/{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{group}/{id}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        // 2 warm-up + 3 samples.
        assert_eq!(runs, 5);
    }
}
