//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace resolves `rand` to this path dependency. It implements the
//! API subset the workspace uses — [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool` — over a xoshiro256++ generator
//! (the same algorithm family the real crate's 64-bit `SmallRng` uses),
//! seeded through SplitMix64. Everything is deterministic per seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Built-in generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 expansion, as the reference xoshiro seeding does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform sampling over caller-supplied ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; panics if `low > high`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (low as i128 + draw as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
            ) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "cannot sample empty range");
        let v = low + (high - low) * f64::sample(rng);
        // Floating rounding can land exactly on `high`; stay half-open.
        if v < high {
            v
        } else {
            low
        }
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low <= high, "cannot sample empty range");
        low + (high - low) * f64::sample(rng)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&w));
            let x: u8 = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_int_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
