//! Per-test configuration and deterministic case RNGs.

/// The generator strategies draw from (the shimmed `SmallRng`).
pub type TestRng = rand::rngs::SmallRng;

/// How a `proptest!` block runs its tests.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Generated input sets per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG for one test case: a deterministic function of the fully
/// qualified test name and the case number, so failures reproduce.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    use rand::SeedableRng as _;
    // FNV-1a over the test name, mixed with the case number.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
