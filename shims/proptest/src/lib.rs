//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace resolves `proptest` to this path dependency: a miniature
//! strategy-based property-testing framework covering the API subset the
//! workspace's tests use. Each `proptest!` test runs its body for
//! `ProptestConfig::cases` generated inputs from a seed derived
//! deterministically from the test's module path and name, so failures
//! reproduce across runs. Unlike the real crate there is no shrinking:
//! a failing case panics with the generated inputs unreduced.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet`s: up to `size` draws, deduplicated.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Index sampling (`prop::sample::Index`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// An opaque draw that maps onto any collection length.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects the draw onto `[0, len)`; panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    /// Strategy producing [`Index`] draws (used via `any::<Index>()`).
    #[derive(Copy, Clone, Debug, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn sample(&self, rng: &mut TestRng) -> Index {
            Index(rng.gen::<usize>() >> 1)
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// A type with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Constructs the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Whole-domain strategy for primitives.
    #[derive(Copy, Clone, Debug, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    impl Arbitrary for crate::sample::Index {
        type Strategy = crate::sample::IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            crate::sample::IndexStrategy
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs each test function in this block `ProptestConfig::cases` times
/// with freshly generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Picks one of the given strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a property holds for the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the generated inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions differ for the generated inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_tuples_and_maps_compose(
            pair in (0usize..10, -5i64..5).prop_map(|(a, b)| (a * 2, b)),
            flag in any::<bool>(),
            items in prop::collection::vec(0u8..4, 1..6),
        ) {
            prop_assert!(pair.0 % 2 == 0 && pair.0 < 20);
            prop_assert!((-5..5).contains(&pair.1));
            prop_assert!(!items.is_empty() && items.len() < 6);
            prop_assert!(items.iter().all(|&v| v < 4));
            prop_assert_eq!(flag, pair.0 % 2 == 0 && flag);
        }

        #[test]
        fn string_patterns_match_their_shape(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_draws_from_every_arm(
            draws in prop::collection::vec(
                prop_oneof![0usize..1, 10usize..11].prop_map(|v| v),
                64,
            )
        ) {
            prop_assert!(draws.iter().all(|&v| v == 0 || v == 10));
        }

        #[test]
        fn index_projects_into_bounds(idx in any::<prop::sample::Index>()) {
            for len in [1usize, 2, 7, 1000] {
                prop_assert!(idx.index(len) < len);
            }
        }
    }

    #[test]
    fn btree_set_respects_bounds_and_dedups() {
        let strat = crate::collection::btree_set((0usize..3, 0usize..3), 0..8);
        let mut rng = crate::test_runner::case_rng("btree", 1);
        for _ in 0..50 {
            let s = crate::strategy::Strategy::sample(&strat, &mut rng);
            assert!(s.len() < 8);
        }
    }
}
