//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use rand::Rng as _;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree: strategies draw directly
/// from the case RNG and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Picks one of several strategies uniformly per draw (`prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------

/// One element of a compiled string pattern.
#[derive(Clone, Debug)]
enum PatternPiece {
    /// Candidate characters and the repetition bounds `[min, max]`.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

/// Compiles the regex subset used as string strategies: literal
/// characters, `\`-escaped literals, and `[a-z08]` classes, each
/// optionally followed by `{n}` or `{m,n}` repetition.
fn compile_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let class: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars
                                    .next()
                                    .unwrap_or_else(|| panic!("unterminated range in {pattern:?}"));
                                class.extend(lo..=hi);
                            } else {
                                class.push(lo);
                            }
                        }
                        None => panic!("unterminated class in {pattern:?}"),
                    }
                }
                class
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                vec![escaped]
            }
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        pieces.push(PatternPiece::Class {
            chars: class,
            min,
            max,
        });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in compile_pattern(self) {
            let PatternPiece::Class { chars, min, max } = piece;
            let n = rng.gen_range(min..=max);
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collection sizes
// ---------------------------------------------------------------------

/// Length specification for collection strategies.
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}
