//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace resolves `bytes` to this path dependency. It implements the
//! exact API subset the workspace uses — [`Bytes`], [`BytesMut`], and the
//! [`Buf`]/[`BufMut`] cursor traits over little-endian integers — with
//! `Vec<u8>` storage. Semantics (including panics on under-filled reads)
//! match the real crate for the covered surface.

use std::ops::Deref;

/// An immutable byte buffer (shim: plain `Vec<u8>` storage).
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies the buffer into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

/// A growable byte buffer (shim: plain `Vec<u8>` storage).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source, little-endian accessors included.
///
/// Matching the real crate, the `get_*` methods panic when fewer bytes
/// remain than the read needs; decoders guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread tail.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes (panics if fewer remain).
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Copies exactly `dst.len()` bytes out (panics if fewer remain).
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink, little-endian writers included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_integers() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_i64_le(-42);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut w = BytesMut::new();
        w.put_slice(&[1, 2, 3]);
        let b = w.freeze();
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..2], &[1, 2]);
    }
}
