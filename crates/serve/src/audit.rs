//! Structured JSONL audit log for the daemon (`--audit <path>`).
//!
//! Every decide and every bundle mutation (install / uninstall /
//! permission change) appends one JSON object per line: request id,
//! wall-clock timestamp, outcome, decision label and matched policy id
//! (for decides), and the request's service latency. The file rotates
//! by size — when an append would push past the cap, `audit.log` shifts
//! to `audit.log.1` (and `.1` to `.2`), so a long-lived daemon keeps at
//! most three generations on disk.
//!
//! The name deliberately avoids `AuditLog`: that's the *device-side*
//! enforcement log in [`separ_enforce::audit`]; this one records what
//! the service was asked and answered.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use separ_obs::json::Value;

/// How many rotated generations to keep (`audit.log.1`, `audit.log.2`).
const KEEP_ROTATED: u32 = 2;

/// One audit record, borrowed from the request that produced it.
#[derive(Debug, Clone, Default)]
pub struct AuditRecord<'a> {
    /// The daemon-assigned request id (monotonic per process).
    pub req_id: u64,
    /// The request kind (`decide`, `install`, ...).
    pub kind: &'a str,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The package the request targeted, when it names one.
    pub package: Option<&'a str>,
    /// The decision label (`allow` / `deny` / ...) for decides.
    pub decision: Option<&'a str>,
    /// The id of the policy that matched, for decides it applies to.
    pub policy_id: Option<u64>,
    /// Service latency of the request in microseconds.
    pub latency_us: u64,
    /// The error message, for failed requests.
    pub error: Option<&'a str>,
}

impl AuditRecord<'_> {
    /// Serializes the record as one JSON line (no trailing newline).
    /// Optional fields are omitted, not nulled, so lines stay compact.
    pub fn to_line(&self) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut fields = vec![
            ("ts_ms".to_string(), Value::Num(ts_ms as f64)),
            ("req_id".to_string(), Value::Num(self.req_id as f64)),
            ("kind".to_string(), Value::Str(self.kind.into())),
            ("ok".to_string(), Value::Bool(self.ok)),
        ];
        if let Some(p) = self.package {
            fields.push(("package".into(), Value::Str(p.into())));
        }
        if let Some(d) = self.decision {
            fields.push(("decision".into(), Value::Str(d.into())));
        }
        if let Some(id) = self.policy_id {
            fields.push(("policy_id".into(), Value::Num(id as f64)));
        }
        fields.push(("latency_us".into(), Value::Num(self.latency_us as f64)));
        if let Some(e) = self.error {
            fields.push(("error".into(), Value::Str(e.into())));
        }
        let mut out = String::new();
        Value::Obj(fields).write_into(&mut out);
        out
    }
}

/// A size-rotated JSONL appender.
pub struct AuditWriter {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<Writer>,
}

struct Writer {
    file: File,
    written: u64,
}

impl AuditWriter {
    /// Opens (appending) or creates the log at `path`; rotation
    /// triggers when an append would push the file past `max_bytes`.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened for appending.
    pub fn open(path: &Path, max_bytes: u64) -> std::io::Result<AuditWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata().map(|m| m.len()).unwrap_or(0);
        Ok(AuditWriter {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1024),
            inner: Mutex::new(Writer { file, written }),
        })
    }

    /// Appends one record (with newline), rotating first if the line
    /// would push the current generation past the size cap. Returns
    /// whether the line actually reached the file.
    pub fn append(&self, record: &AuditRecord<'_>) -> bool {
        let mut line = record.to_line();
        line.push('\n');
        let mut w = self.inner.lock().expect("audit lock");
        if w.written > 0 && w.written + line.len() as u64 > self.max_bytes {
            match self.rotate() {
                Ok(file) => *w = Writer { file, written: 0 },
                Err(e) => {
                    eprintln!("separ serve: audit rotation failed: {e}");
                    // Keep writing to the oversized generation rather
                    // than losing records.
                }
            }
        }
        match w.file.write_all(line.as_bytes()) {
            Ok(()) => {
                w.written += line.len() as u64;
                true
            }
            Err(e) => {
                eprintln!("separ serve: audit write failed: {e}");
                false
            }
        }
    }

    /// Shifts generations (`.1` → `.2`, live → `.1`) and reopens a
    /// fresh live file.
    fn rotate(&self) -> std::io::Result<File> {
        for n in (1..=KEEP_ROTATED).rev() {
            let from = if n == 1 {
                self.path.clone()
            } else {
                rotated(&self.path, n - 1)
            };
            let to = rotated(&self.path, n);
            if from.exists() {
                std::fs::rename(&from, &to)?;
            }
        }
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
    }

    /// Flushes buffered OS state (records are written unbuffered; this
    /// is for tests that read the file back immediately).
    pub fn flush(&self) {
        let _ = self.inner.lock().expect("audit lock").file.flush();
    }
}

impl std::fmt::Debug for AuditWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditWriter")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .finish()
    }
}

/// `audit.log` → `audit.log.N`.
fn rotated(path: &Path, n: u32) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{n}"));
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("separ-audit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("audit.log")
    }

    #[test]
    fn records_serialize_with_optional_fields_omitted() {
        let line = AuditRecord {
            req_id: 7,
            kind: "decide",
            ok: true,
            decision: Some("deny"),
            policy_id: Some(3),
            latency_us: 120,
            ..Default::default()
        }
        .to_line();
        let v = Value::parse(&line).expect("valid json");
        assert_eq!(v.get("req_id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("decision").and_then(Value::as_str), Some("deny"));
        assert_eq!(v.get("policy_id").and_then(Value::as_u64), Some(3));
        assert!(v.get("package").is_none());
        assert!(v.get("error").is_none());
        assert!(v.get("ts_ms").and_then(Value::as_u64).expect("ts") > 0);
    }

    #[test]
    fn rotates_by_size_and_keeps_two_generations() {
        let path = tmp("rotate");
        let w = AuditWriter::open(&path, 1024).expect("open");
        let rec = AuditRecord {
            req_id: 1,
            kind: "install",
            ok: true,
            package: Some("com.example.padding.padding.padding"),
            latency_us: 1_000,
            ..Default::default()
        };
        for _ in 0..60 {
            assert!(w.append(&rec));
        }
        w.flush();
        assert!(rotated(&path, 1).exists(), "first generation rotated");
        let live = std::fs::metadata(&path).expect("live").len();
        assert!(live <= 1024, "live file stays under the cap: {live}");
        // Every line in every generation is valid JSON.
        for p in [path.clone(), rotated(&path, 1)] {
            let text = std::fs::read_to_string(&p).expect("readable");
            for line in text.lines() {
                Value::parse(line).expect("valid JSONL");
            }
        }
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}
