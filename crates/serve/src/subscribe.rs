//! Policy-delta subscriptions: push instead of poll.
//!
//! A client that sends `{"cmd":"subscribe"}` holds its connection open
//! and receives one `policy_delta` event line per applied batch — which
//! policies were added and retired, how many apps were re-sliced, and a
//! per-daemon sequence number. The events are published by the single
//! analysis worker *in batch order*, so every subscriber observes the
//! same totally-ordered delta stream; a gap in `seq` tells a client it
//! was disconnected and must re-sync with a `query`.
//!
//! Delivery must never block the worker: each subscriber gets a bounded
//! channel and a publish that would block (a reader that stopped
//! draining) drops the subscriber instead — lagging consumers are
//! disconnected, not allowed to stall analysis.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use separ_core::policy::Policy;
use separ_obs::json::Value;

/// One applied batch, as pushed to subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDeltaEvent {
    /// Monotonic per-daemon sequence number (1 = first batch).
    pub seq: u64,
    /// Ids of policies the batch added.
    pub added: Vec<u32>,
    /// Ids of policies the batch retired.
    pub retired: Vec<u32>,
    /// Apps whose models were re-sliced by the delta pass.
    pub apps_resliced: usize,
    /// Signatures the delta pass re-ran.
    pub signatures_rerun: usize,
    /// Churn ops coalesced into this batch.
    pub ops: usize,
    /// Total policies live after the batch.
    pub policies: usize,
}

impl PolicyDeltaEvent {
    /// Builds the event for one applied batch from the policy delta.
    pub fn new(
        seq: u64,
        added: &[Policy],
        retired: &[Policy],
        apps_resliced: usize,
        signatures_rerun: usize,
        ops: usize,
        policies: usize,
    ) -> PolicyDeltaEvent {
        PolicyDeltaEvent {
            seq,
            added: added.iter().map(|p| p.id).collect(),
            retired: retired.iter().map(|p| p.id).collect(),
            apps_resliced,
            signatures_rerun,
            ops,
            policies,
        }
    }

    /// Serializes the event as one wire line (no trailing newline):
    /// `{"event":"policy_delta","seq":N,...}`.
    pub fn to_line(&self) -> String {
        let ids = |ids: &[u32]| Value::Arr(ids.iter().map(|&i| Value::Num(i as f64)).collect());
        let mut out = String::new();
        Value::Obj(vec![
            ("event".into(), Value::Str("policy_delta".into())),
            ("seq".into(), Value::Num(self.seq as f64)),
            ("added".into(), ids(&self.added)),
            ("retired".into(), ids(&self.retired)),
            (
                "apps_resliced".into(),
                Value::Num(self.apps_resliced as f64),
            ),
            (
                "signatures_rerun".into(),
                Value::Num(self.signatures_rerun as f64),
            ),
            ("ops".into(), Value::Num(self.ops as f64)),
            ("policies".into(), Value::Num(self.policies as f64)),
        ])
        .write_into(&mut out);
        out
    }

    /// Parses an event line back (the test-side inverse of
    /// [`PolicyDeltaEvent::to_line`]).
    ///
    /// # Errors
    ///
    /// Returns a message for non-JSON lines or lines that are not
    /// `policy_delta` events.
    pub fn parse(line: &str) -> Result<PolicyDeltaEvent, String> {
        let v = Value::parse(line).map_err(|e| format!("bad json: {e}"))?;
        if v.get("event").and_then(Value::as_str) != Some("policy_delta") {
            return Err("not a policy_delta event".into());
        }
        let ids = |key: &str| -> Vec<u32> {
            v.get(key)
                .and_then(Value::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_u64)
                        .map(|n| n as u32)
                        .collect()
                })
                .unwrap_or_default()
        };
        let num = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        Ok(PolicyDeltaEvent {
            seq: num("seq"),
            added: ids("added"),
            retired: ids("retired"),
            apps_resliced: num("apps_resliced") as usize,
            signatures_rerun: num("signatures_rerun") as usize,
            ops: num("ops") as usize,
            policies: num("policies") as usize,
        })
    }
}

struct Entry {
    id: u64,
    tx: SyncSender<Arc<str>>,
}

/// The subscriber registry: worker-side publish, connection-side
/// subscribe/receive.
#[derive(Debug)]
pub struct Subscriptions {
    entries: Mutex<Vec<Entry>>,
    next_id: AtomicU64,
    seq: AtomicU64,
    dropped: AtomicU64,
    buffer: usize,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Entry({})", self.id)
    }
}

impl Subscriptions {
    /// A registry whose subscribers each buffer up to `buffer` pending
    /// events before being dropped as laggards.
    pub fn new(buffer: usize) -> Subscriptions {
        Subscriptions {
            entries: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            buffer: buffer.max(1),
        }
    }

    /// Registers a new subscriber. It sees every event published after
    /// this call, in order, until it stops draining or the daemon
    /// shuts down.
    pub fn subscribe(&self) -> Subscription {
        let (tx, rx) = sync_channel(self.buffer);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("subs lock")
            .push(Entry { id, tx });
        Subscription { id, rx }
    }

    /// Claims the next sequence number (1-based). Called only by the
    /// analysis worker, which is single-threaded — so sequence order
    /// and publish order agree.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The sequence number of the most recently published event.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Delivers `line` to every subscriber. A full buffer or a hung-up
    /// receiver drops that subscriber; nobody can block the caller.
    /// Returns how many subscribers were dropped by this publish.
    pub fn publish(&self, line: &Arc<str>) -> usize {
        let mut entries = self.entries.lock().expect("subs lock");
        let before = entries.len();
        entries.retain(|e| match e.tx.try_send(Arc::clone(line)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        });
        let dropped = before - entries.len();
        if dropped > 0 {
            self.dropped.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped
    }

    /// Removes one subscriber (its connection closed).
    pub fn unsubscribe(&self, id: u64) {
        self.entries
            .lock()
            .expect("subs lock")
            .retain(|e| e.id != id);
    }

    /// Currently connected subscribers.
    pub fn count(&self) -> usize {
        self.entries.lock().expect("subs lock").len()
    }

    /// Subscribers dropped for lagging since boot.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Disconnects every subscriber (daemon shutdown): their next
    /// receive after draining buffered events reports closure.
    pub fn close(&self) {
        self.entries.lock().expect("subs lock").clear();
    }
}

/// One subscriber's receiving end. Dropping it unsubscribes lazily (the
/// next publish notices the hang-up); call
/// [`Subscriptions::unsubscribe`] for prompt removal.
#[derive(Debug)]
pub struct Subscription {
    /// The registry id (for [`Subscriptions::unsubscribe`]).
    pub id: u64,
    rx: Receiver<Arc<str>>,
}

impl Subscription {
    /// Waits up to `timeout` for the next event line.
    ///
    /// # Errors
    ///
    /// `Timeout` if nothing arrived; `Disconnected` once the daemon
    /// closed or this subscriber was dropped as a laggard *and* every
    /// buffered event has been drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Arc<str>, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Blocks for the next event line; `Err` once disconnected and
    /// drained.
    pub fn recv(&self) -> Result<Arc<str>, std::sync::mpsc::RecvError> {
        self.rx.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lines_round_trip() {
        let ev = PolicyDeltaEvent {
            seq: 4,
            added: vec![7, 9],
            retired: vec![2],
            apps_resliced: 3,
            signatures_rerun: 5,
            ops: 2,
            policies: 11,
        };
        assert_eq!(PolicyDeltaEvent::parse(&ev.to_line()).expect("parses"), ev);
        assert!(PolicyDeltaEvent::parse("{\"ok\":true}").is_err());
    }

    #[test]
    fn publish_is_ordered_and_drops_laggards() {
        let subs = Subscriptions::new(4);
        let fast = subs.subscribe();
        let lazy = subs.subscribe();
        assert_eq!(subs.count(), 2);
        // Publish more than the lazy subscriber's buffer without
        // draining it: it must be dropped, the fast one kept.
        for i in 0..6u64 {
            let seq = subs.next_seq();
            assert_eq!(seq, i + 1);
            let line: Arc<str> = Arc::from(format!("ev{seq}").as_str());
            subs.publish(&line);
            let got = fast
                .recv_timeout(Duration::from_secs(1))
                .expect("fast keeps up");
            assert_eq!(&*got, format!("ev{seq}").as_str());
        }
        assert_eq!(subs.count(), 1, "laggard dropped");
        assert_eq!(subs.dropped(), 1);
        // The laggard still drains its buffered prefix, in order, then
        // sees disconnection.
        for i in 0..4u64 {
            let got = lazy.recv_timeout(Duration::from_secs(1)).expect("buffered");
            assert_eq!(&*got, format!("ev{}", i + 1).as_str());
        }
        assert!(lazy.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn close_disconnects_everyone() {
        let subs = Subscriptions::new(2);
        let sub = subs.subscribe();
        subs.close();
        assert_eq!(subs.count(), 0);
        assert!(matches!(
            sub.recv_timeout(Duration::from_millis(50)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
