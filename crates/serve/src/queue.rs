//! The bounded churn queue between connection threads and the analysis
//! worker.
//!
//! Producers [`push`](ChurnQueue::push) one [`SessionOp`] each and get a
//! [`Ticket`] back; the single consumer drains up to `batch_max` ops at
//! a time with [`take_batch`](ChurnQueue::take_batch) and fulfills every
//! drained ticket with the shared [`BatchSummary`]. Two properties the
//! daemon's guarantees rest on:
//!
//! * **Backpressure, not loss** — a full queue blocks the producer (up
//!   to its deadline) instead of dropping; an op is either rejected
//!   *before* acceptance (queue full past the deadline, queue closed) or
//!   applied. There is no accepted-then-dropped state.
//! * **Close-then-drain** — [`close`](ChurnQueue::close) stops new
//!   pushes immediately but leaves everything already accepted for the
//!   consumer, which sees `None` only once the queue is both closed and
//!   empty. Shutdown therefore loses nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use separ_core::SessionOp;

/// What the analysis worker reports back for one drained batch.
#[derive(Debug, Clone)]
pub enum BatchOutcome {
    /// The batch was analyzed and its delta published.
    Done(Arc<BatchSummary>),
    /// Analysis failed; no op in the batch took effect.
    Failed(Arc<str>),
}

/// Summary of one coalesced analysis pass, shared by every ticket in the
/// batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Ops folded into this pass.
    pub ops: usize,
    /// Policies added by the pass.
    pub added: usize,
    /// Policies retired by the pass.
    pub removed: usize,
    /// Signatures re-synthesized.
    pub signatures_rerun: usize,
    /// Policy-set size after the pass.
    pub policies: usize,
}

/// A producer's handle on its enqueued op's outcome.
#[derive(Debug, Clone)]
pub struct Ticket(Arc<(Mutex<Option<BatchOutcome>>, Condvar)>);

impl Ticket {
    fn new() -> Ticket {
        Ticket(Arc::new((Mutex::new(None), Condvar::new())))
    }

    fn fulfill(&self, outcome: BatchOutcome) {
        let (slot, cv) = &*self.0;
        *slot.lock().expect("ticket lock") = Some(outcome);
        cv.notify_all();
    }

    /// Waits until the op's batch has been analyzed, or until `deadline`
    /// elapses. `None` means the wait timed out — the op is still
    /// accepted and **will** be applied; only the confirmation is
    /// forfeited.
    pub fn wait(&self, deadline: Duration) -> Option<BatchOutcome> {
        let (slot, cv) = &*self.0;
        let mut guard = slot.lock().expect("ticket lock");
        let start = Instant::now();
        while guard.is_none() {
            let remaining = deadline.checked_sub(start.elapsed())?;
            let (g, timeout) = cv.wait_timeout(guard, remaining).expect("ticket wait");
            guard = g;
            if timeout.timed_out() && guard.is_none() {
                return None;
            }
        }
        guard.clone()
    }
}

/// Why a push was rejected (the op was **not** accepted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The queue stayed full past the producer's deadline.
    Backpressure,
    /// The queue is closed (daemon shutting down).
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Backpressure => f.write_str("queue full (backpressure deadline elapsed)"),
            PushError::Closed => f.write_str("service shutting down"),
        }
    }
}

struct Inner {
    ops: VecDeque<(SessionOp, Ticket)>,
    closed: bool,
}

/// The bounded multi-producer single-consumer churn queue.
pub struct ChurnQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl ChurnQueue {
    /// A queue admitting at most `capacity` pending ops.
    pub fn new(capacity: usize) -> ChurnQueue {
        ChurnQueue {
            inner: Mutex::new(Inner {
                ops: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Current number of pending (accepted, not yet drained) ops.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").ops.len()
    }

    /// Enqueues `op`, blocking while the queue is full for at most
    /// `deadline`.
    ///
    /// # Errors
    ///
    /// [`PushError::Backpressure`] if the queue stayed full past the
    /// deadline, [`PushError::Closed`] if the daemon is shutting down.
    /// In both cases the op was not accepted.
    pub fn push(&self, op: SessionOp, deadline: Duration) -> Result<Ticket, PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        let start = Instant::now();
        loop {
            if inner.closed {
                return Err(PushError::Closed);
            }
            if inner.ops.len() < self.capacity {
                break;
            }
            separ_obs::counter_add("serve.backpressure", 1);
            let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                return Err(PushError::Backpressure);
            };
            let (guard, timeout) = self
                .not_full
                .wait_timeout(inner, remaining)
                .expect("queue wait");
            inner = guard;
            if timeout.timed_out() && inner.ops.len() >= self.capacity {
                return Err(if inner.closed {
                    PushError::Closed
                } else {
                    PushError::Backpressure
                });
            }
        }
        let ticket = Ticket::new();
        inner.ops.push_back((op, ticket.clone()));
        self.not_empty.notify_one();
        Ok(ticket)
    }

    /// Blocks until at least one op is pending, then drains up to `max`
    /// of them. Returns `None` only when the queue is closed **and**
    /// empty — the drain contract shutdown relies on.
    pub fn take_batch(&self, max: usize) -> Option<Vec<(SessionOp, Ticket)>> {
        let mut inner = self.inner.lock().expect("queue lock");
        while inner.ops.is_empty() {
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue wait");
        }
        let n = inner.ops.len().min(max.max(1));
        let batch: Vec<(SessionOp, Ticket)> = inner.ops.drain(..n).collect();
        self.not_full.notify_all();
        Some(batch)
    }

    /// Rejects all future pushes; already-accepted ops stay queued for
    /// the consumer to drain.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Fulfills every ticket of a drained batch with the shared outcome.
pub fn fulfill_batch(batch: &[(SessionOp, Ticket)], outcome: &BatchOutcome) {
    for (_, ticket) in batch {
        ticket.fulfill(outcome.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn op(package: &str) -> SessionOp {
        SessionOp::Uninstall(package.to_string())
    }

    #[test]
    fn push_take_fulfill_round_trip() {
        let q = ChurnQueue::new(4);
        let t1 = q.push(op("a"), Duration::from_secs(1)).expect("accepted");
        let t2 = q.push(op("b"), Duration::from_secs(1)).expect("accepted");
        assert_eq!(q.depth(), 2);
        let batch = q.take_batch(16).expect("batch");
        assert_eq!(batch.len(), 2);
        let summary = Arc::new(BatchSummary {
            ops: 2,
            added: 0,
            removed: 0,
            signatures_rerun: 0,
            policies: 0,
        });
        fulfill_batch(&batch, &BatchOutcome::Done(Arc::clone(&summary)));
        for t in [t1, t2] {
            match t.wait(Duration::from_secs(1)) {
                Some(BatchOutcome::Done(s)) => assert_eq!(*s, *summary),
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
    }

    #[test]
    fn full_queue_applies_backpressure_until_drained() {
        let q = Arc::new(ChurnQueue::new(1));
        q.push(op("a"), Duration::from_secs(1)).expect("accepted");
        // Immediate deadline: rejected, not dropped-after-accept.
        assert_eq!(
            q.push(op("b"), Duration::ZERO).unwrap_err(),
            PushError::Backpressure
        );
        // A consumer draining concurrently unblocks the producer.
        let q2 = Arc::clone(&q);
        let drainer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.take_batch(1).expect("batch")
        });
        q.push(op("c"), Duration::from_secs(5)).expect("unblocked");
        drainer.join().expect("drainer");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_accepted_ones() {
        let q = ChurnQueue::new(4);
        q.push(op("a"), Duration::from_secs(1)).expect("accepted");
        q.close();
        assert_eq!(
            q.push(op("b"), Duration::from_secs(1)).unwrap_err(),
            PushError::Closed
        );
        // The accepted op is still there...
        let batch = q.take_batch(16).expect("accepted op survives close");
        assert_eq!(batch.len(), 1);
        // ...and only then does the consumer see end-of-queue.
        assert!(q.take_batch(16).is_none());
    }

    #[test]
    fn ticket_wait_times_out_without_losing_the_op() {
        let q = ChurnQueue::new(4);
        let t = q.push(op("a"), Duration::from_secs(1)).expect("accepted");
        assert!(t.wait(Duration::from_millis(10)).is_none());
        // The op is still queued; a late fulfillment still lands.
        let batch = q.take_batch(16).expect("batch");
        fulfill_batch(
            &batch,
            &BatchOutcome::Done(Arc::new(BatchSummary {
                ops: 1,
                added: 0,
                removed: 0,
                signatures_rerun: 0,
                policies: 0,
            })),
        );
        assert!(matches!(
            t.wait(Duration::from_secs(1)),
            Some(BatchOutcome::Done(_))
        ));
    }
}
