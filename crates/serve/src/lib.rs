//! **separ-serve** — the continuous analysis service.
//!
//! The paper's concluding remarks call for incremental re-analysis "on
//! permission-modified apps at runtime"; this crate turns that from a
//! library (`separ_core::IncrementalSession`) into a *service*: a
//! long-running daemon that watches a device's churn (installs, updates,
//! uninstalls, permission toggles) over a socket, folds bursts of it
//! into single incremental re-analysis passes, atomically publishes
//! every policy delta into a lock-free decision engine, and persists
//! enough state to recover its session after a restart without
//! re-extracting a single package.
//!
//! Layering (each module documents its own contract):
//!
//! * [`protocol`] — the line-delimited JSON request/response grammar;
//! * [`queue`] — bounded churn queue: backpressure, deadlines, and the
//!   close-then-drain shutdown contract;
//! * [`store`] — crash-consistent session persistence (content-addressed
//!   model files + atomically replaced manifest);
//! * [`daemon`] — the coalescing analysis worker wiring session, store,
//!   extraction cache and [`SharedPdp`](separ_enforce::SharedPdp)
//!   together; [`Daemon::handle`] is the whole service as a function
//!   from request line to response line;
//! * [`server`] — unix-socket / TCP accept loop over [`Daemon::handle`].
//!
//! Operational telemetry rides on the same wire: [`metrics`] keeps
//! per-request-type rolling latency windows and renders the `metrics`
//! response (JSON or Prometheus exposition), [`audit`] appends a
//! size-rotated JSONL record per decide and bundle mutation, and
//! [`subscribe`] pushes one ordered `policy_delta` event per applied
//! batch to every connected subscriber.

#![warn(missing_docs)]

pub mod audit;
pub mod daemon;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod store;
pub mod subscribe;

pub use audit::{AuditRecord, AuditWriter};
pub use daemon::{Daemon, ServeConfig, ServeError};
pub use metrics::{ServeMetrics, REQUEST_KINDS};
pub use protocol::{QueryWhat, Request};
pub use queue::{BatchOutcome, BatchSummary, ChurnQueue, PushError, Ticket};
pub use server::{serve, Endpoint};
pub use store::{Restored, SessionStore, StoreError};
pub use subscribe::{PolicyDeltaEvent, Subscription, Subscriptions};
