//! The analysis daemon: one [`IncrementalSession`] behind a coalescing
//! batch worker, with decisions served lock-free off a [`SharedPdp`].
//!
//! ```text
//! connection threads                     analysis worker (one thread)
//! ──────────────────                     ───────────────────────────
//! decode + extract (ModelCache) ─┐
//! enqueue op, get Ticket ────────┼─▶ ChurnQueue ─▶ take_batch(max)
//! wait(deadline) ◀───────────────┘        │           apply_batch (ONE pass)
//!                                         │           SharedPdp::apply_delta
//! decide ──▶ PdpReader (lock-free) ◀──────┘           store.persist
//! query/stats ──▶ published snapshot                  fulfill tickets
//! ```
//!
//! Expensive per-request work (package decode and model extraction)
//! happens on the *connection* thread before the op is enqueued, so it
//! parallelizes across clients and malformed packages are refused
//! immediately; the worker only ever folds ready-made models into the
//! session. A burst of N churn requests drains as one
//! [`IncrementalSession::apply_batch`] pass — the coalescing factor
//! (ops per batch) is the daemon's central performance metric.
//!
//! With a store directory configured, every batch persists the bundle
//! manifest; on startup the daemon restores the persisted models and
//! re-synthesizes from them **without re-extracting** any package.
//! Shutdown closes the queue, drains what was accepted, persists, and
//! fsyncs — accepted requests are never lost (see
//! `crate::queue`'s close-then-drain contract).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use separ_analysis::cache::ModelCache;
use separ_core::policy::Policy;
use separ_core::{IncrementalSession, SeparConfig, SessionOp, SignatureRegistry};
use separ_enforce::{CompiledPolicySet, PromptHandler, SharedPdp};
use separ_obs::json::Value;
use separ_obs::prometheus::PromWriter;

use crate::audit::{AuditRecord, AuditWriter};
use crate::metrics::{obs_counters_prometheus, ServeMetrics};
use crate::protocol::{error_response, ok_response, QueryWhat, Request};
use crate::queue::{fulfill_batch, BatchOutcome, BatchSummary, ChurnQueue, PushError};
use crate::store::SessionStore;
use crate::subscribe::{PolicyDeltaEvent, Subscription, Subscriptions};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Analysis configuration for the underlying session.
    pub config: SeparConfig,
    /// Maximum pending churn ops before producers block (backpressure).
    pub queue_capacity: usize,
    /// Maximum ops folded into one analysis pass.
    pub batch_max: usize,
    /// Confirmation-wait deadline for churn requests that don't set
    /// `deadline_ms`.
    pub default_deadline: Duration,
    /// Persistent session-store directory; `None` = in-memory only.
    pub store_dir: Option<std::path::PathBuf>,
    /// Extraction-cache size cap (the store is never capped).
    pub cache_cap_bytes: Option<u64>,
    /// Log requests slower than this many milliseconds to stderr (one
    /// JSON line each); `None` disables the slow log.
    pub slow_ms: Option<u64>,
    /// JSONL audit-log path; `None` disables auditing.
    pub audit_path: Option<std::path::PathBuf>,
    /// Audit-log size cap per generation before rotation.
    pub audit_max_bytes: u64,
    /// Pending policy-delta events buffered per subscriber before it is
    /// dropped as a laggard.
    pub subscriber_buffer: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            config: SeparConfig::default(),
            queue_capacity: 64,
            batch_max: 32,
            default_deadline: Duration::from_secs(30),
            store_dir: None,
            cache_cap_bytes: None,
            slow_ms: None,
            audit_path: None,
            audit_max_bytes: 8 * 1024 * 1024,
            subscriber_buffer: 64,
        }
    }
}

/// A startup error.
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServeError {}

/// The read-mostly snapshot `query`/`stats` answer from; the worker
/// replaces it after every batch.
#[derive(Debug, Default, Clone)]
struct Published {
    policies: Arc<Vec<Policy>>,
    apps: Vec<String>,
    exploits: Vec<String>,
    total_syntheses: usize,
}

/// Monotonic service counters.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    ops_coalesced: AtomicU64,
    deadline_misses: AtomicU64,
}

/// What one request's outcome contributes to the audit log.
#[derive(Debug, Default)]
struct Outcome {
    decision: Option<&'static str>,
    policy_id: Option<u64>,
    package: Option<String>,
    error: Option<String>,
}

/// The running daemon. [`Daemon::handle`] is the entire service: socket
/// servers, tests and in-process harnesses all feed request lines
/// through it.
pub struct Daemon {
    queue: Arc<ChurnQueue>,
    pdp: SharedPdp,
    cache: Arc<ModelCache>,
    published: Arc<Mutex<Published>>,
    counters: Arc<Counters>,
    metrics: Arc<ServeMetrics>,
    subs: Arc<Subscriptions>,
    audit: Option<AuditWriter>,
    req_ids: AtomicU64,
    slow_ms: Option<u64>,
    default_deadline: Duration,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    restored_apps: usize,
    restore_skipped: usize,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("queue_depth", &self.queue.depth())
            .field("restored_apps", &self.restored_apps)
            .finish()
    }
}

impl Daemon {
    /// Boots the daemon: restores the session from the store (if any),
    /// runs the initial synthesis, publishes the PDP, and starts the
    /// analysis worker.
    ///
    /// # Errors
    ///
    /// Fails if the store is unusable or the initial analysis fails.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, ServeError> {
        let _span = separ_obs::span("serve.start");
        let store = match &cfg.store_dir {
            Some(dir) => Some(SessionStore::open(dir).map_err(|e| ServeError(e.to_string()))?),
            None => None,
        };
        let restored = match &store {
            Some(store) => store.restore().map_err(|e| ServeError(e.to_string()))?,
            None => Default::default(),
        };
        let (restored_apps, restore_skipped) = (restored.apps.len(), restored.skipped);
        // The extraction cache lives *inside* the store dir when one is
        // configured, so a single flag places all daemon state.
        let cache = Arc::new(match &cfg.store_dir {
            Some(dir) => ModelCache::with_dir_capped(dir.join("cache"), cfg.cache_cap_bytes),
            None => ModelCache::new(),
        });
        let session =
            IncrementalSession::new(SignatureRegistry::standard(), cfg.config, restored.apps)
                .map_err(|e| ServeError(format!("initial analysis: {e}")))?;
        let pdp = SharedPdp::new(CompiledPolicySet::compile(
            session.policies().to_vec(),
            session.apps().iter().map(|a| a.package.clone()).collect(),
        ));
        let published = Arc::new(Mutex::new(snapshot_of(&session)));
        if let Some(store) = &store {
            store
                .persist(session.apps())
                .map_err(|e| ServeError(e.to_string()))?;
        }
        let queue = Arc::new(ChurnQueue::new(cfg.queue_capacity));
        let counters = Arc::new(Counters::default());
        let metrics = Arc::new(ServeMetrics::new());
        let subs = Arc::new(Subscriptions::new(cfg.subscriber_buffer));
        let audit = match &cfg.audit_path {
            Some(path) => Some(
                AuditWriter::open(path, cfg.audit_max_bytes)
                    .map_err(|e| ServeError(format!("audit log {}: {e}", path.display())))?,
            ),
            None => None,
        };
        let worker = {
            let queue = Arc::clone(&queue);
            let pdp = pdp.clone();
            let published = Arc::clone(&published);
            let counters = Arc::clone(&counters);
            let metrics = Arc::clone(&metrics);
            let subs = Arc::clone(&subs);
            let batch_max = cfg.batch_max;
            std::thread::Builder::new()
                .name("separ-serve-worker".into())
                .spawn(move || {
                    worker_loop(
                        session, store, queue, pdp, published, counters, metrics, subs, batch_max,
                    )
                })
                .map_err(|e| ServeError(format!("worker thread: {e}")))?
        };
        Ok(Daemon {
            queue,
            pdp,
            cache,
            published,
            counters,
            metrics,
            subs,
            audit,
            req_ids: AtomicU64::new(0),
            slow_ms: cfg.slow_ms,
            default_deadline: cfg.default_deadline,
            worker: Mutex::new(Some(worker)),
            restored_apps,
            restore_skipped,
        })
    }

    /// How many apps the store restored at boot (and how many manifest
    /// entries were unrecoverable).
    pub fn restored(&self) -> (usize, usize) {
        (self.restored_apps, self.restore_skipped)
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Never panics on malformed input — every error
    /// becomes an `{"ok":false,...}` response.
    ///
    /// Every request gets a process-unique id (attached to its obs
    /// span, the slow log, and the audit log) and its latency recorded
    /// into the per-type rolling windows behind `metrics`.
    pub fn handle(&self, line: &str) -> String {
        let req_id = self.req_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let started = Instant::now();
        let mut span = separ_obs::span("serve.request");
        span.set_arg("req_id", req_id.to_string());
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        separ_obs::counter_add("serve.requests", 1);
        let parsed = Request::parse(line.trim());
        let kind = parsed.as_ref().map(Request::kind).unwrap_or("invalid");
        span.set_arg("cmd", kind);
        drop(span);
        let (response, outcome) = match parsed {
            Ok(request) => self.dispatch(request),
            Err(e) => {
                let outcome = Outcome {
                    error: Some(e.clone()),
                    ..Outcome::default()
                };
                (self.fail(e), outcome)
            }
        };
        let ns = started.elapsed().as_nanos() as u64;
        self.metrics.record(kind, ns);
        if let Some(slow_ms) = self.slow_ms {
            if ns >= slow_ms.saturating_mul(1_000_000) {
                self.metrics.slow_requests.add(1);
                separ_obs::counter_add("serve.slow", 1);
                eprintln!(
                    "{{\"slow_request\":true,\"req_id\":{req_id},\"cmd\":\"{kind}\",\"ms\":{}}}",
                    ns / 1_000_000
                );
            }
        }
        if matches!(kind, "decide" | "install" | "uninstall" | "set_permission") {
            if let Some(audit) = &self.audit {
                let written = audit.append(&AuditRecord {
                    req_id,
                    kind,
                    ok: response.starts_with("{\"ok\":true"),
                    package: outcome.package.as_deref(),
                    decision: outcome.decision,
                    policy_id: outcome.policy_id,
                    latency_us: ns / 1_000,
                    error: outcome.error.as_deref(),
                });
                if written {
                    self.metrics.audit_records.add(1);
                }
            }
        }
        response
    }

    /// Routes one parsed request, also reporting what the audit log
    /// should record about it.
    fn dispatch(&self, request: Request) -> (String, Outcome) {
        match request {
            Request::Install { bytes, deadline_ms } => {
                // Extraction happens here, on the caller's thread: it
                // parallelizes across connections and the worker only
                // sees ready models.
                let model = match self.cache.get_or_extract(&bytes) {
                    Ok((model, _)) => (*model).clone(),
                    Err(e) => {
                        let e = format!("install: {e}");
                        let outcome = Outcome {
                            error: Some(e.clone()),
                            ..Outcome::default()
                        };
                        return (self.fail(e), outcome);
                    }
                };
                let outcome = Outcome {
                    package: Some(model.package.clone()),
                    ..Outcome::default()
                };
                (self.churn(SessionOp::Install(model), deadline_ms), outcome)
            }
            Request::Uninstall {
                package,
                deadline_ms,
            } => {
                let outcome = Outcome {
                    package: Some(package.clone()),
                    ..Outcome::default()
                };
                (
                    self.churn(SessionOp::Uninstall(package), deadline_ms),
                    outcome,
                )
            }
            Request::SetPermission {
                package,
                permission,
                granted,
                deadline_ms,
            } => {
                let outcome = Outcome {
                    package: Some(package.clone()),
                    ..Outcome::default()
                };
                (
                    self.churn(
                        SessionOp::SetPermission {
                            package,
                            permission,
                            granted,
                        },
                        deadline_ms,
                    ),
                    outcome,
                )
            }
            Request::Query(what) => (self.query(what), Outcome::default()),
            Request::Decide {
                event,
                ctx,
                prompt_allow,
            } => {
                let mut prompt = if prompt_allow {
                    PromptHandler::AlwaysAllow
                } else {
                    PromptHandler::AlwaysDeny
                };
                let decision = self.pdp.reader().evaluate(event, &ctx, &mut prompt);
                let mut fields =
                    vec![("decision".to_string(), Value::Str(decision.label().into()))];
                match decision.policy_id() {
                    Some(id) => fields.push(("policy_id".into(), Value::Num(id as f64))),
                    None => fields.push(("policy_id".into(), Value::Null)),
                }
                let outcome = Outcome {
                    decision: Some(decision.label()),
                    policy_id: decision.policy_id().map(u64::from),
                    ..Outcome::default()
                };
                (ok_response(fields), outcome)
            }
            Request::Stats => (self.stats(), Outcome::default()),
            Request::Metrics { prometheus } => {
                (self.metrics_response(prometheus), Outcome::default())
            }
            Request::Health => (self.health(), Outcome::default()),
            // A subscription is a connection-level upgrade, not a
            // request/response exchange: the socket server intercepts
            // it before `handle`; reaching here means the caller can't
            // stream (e.g. an in-process one-shot).
            Request::Subscribe => (
                self.fail("subscribe: requires a streaming connection".into()),
                Outcome::default(),
            ),
            Request::Shutdown => (self.shutdown(), Outcome::default()),
        }
    }

    fn fail(&self, message: String) -> String {
        self.counters.failed.fetch_add(1, Ordering::Relaxed);
        separ_obs::counter_add("serve.requests.failed", 1);
        error_response(&message)
    }

    fn churn(&self, op: SessionOp, deadline_ms: Option<u64>) -> String {
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.default_deadline);
        let ticket = match self.queue.push(op, deadline) {
            Ok(ticket) => ticket,
            Err(e @ PushError::Backpressure) | Err(e @ PushError::Closed) => {
                return self.fail(e.to_string())
            }
        };
        match ticket.wait(deadline) {
            Some(BatchOutcome::Done(summary)) => ok_response(vec![(
                "batch".into(),
                Value::Obj(vec![
                    ("ops".into(), Value::Num(summary.ops as f64)),
                    ("added".into(), Value::Num(summary.added as f64)),
                    ("removed".into(), Value::Num(summary.removed as f64)),
                    (
                        "signatures_rerun".into(),
                        Value::Num(summary.signatures_rerun as f64),
                    ),
                    ("policies".into(), Value::Num(summary.policies as f64)),
                ]),
            )]),
            Some(BatchOutcome::Failed(e)) => self.fail(format!("analysis failed: {e}")),
            None => {
                // The op IS accepted and will be applied; only the
                // confirmation wait expired.
                self.counters
                    .deadline_misses
                    .fetch_add(1, Ordering::Relaxed);
                separ_obs::counter_add("serve.deadline_miss", 1);
                ok_response(vec![("accepted".into(), Value::Bool(true))])
            }
        }
    }

    fn query(&self, what: QueryWhat) -> String {
        let snap = self.published.lock().expect("published lock").clone();
        match what {
            QueryWhat::Policies => {
                let json = separ_core::policy_io::to_json(&snap.policies);
                match Value::parse(&json) {
                    Ok(v) => ok_response(vec![("policies".into(), v)]),
                    Err(e) => self.fail(format!("policy serialization: {e}")),
                }
            }
            QueryWhat::Exploits => ok_response(vec![(
                "exploits".into(),
                Value::Arr(snap.exploits.iter().cloned().map(Value::Str).collect()),
            )]),
            QueryWhat::Apps => ok_response(vec![(
                "apps".into(),
                Value::Arr(snap.apps.iter().cloned().map(Value::Str).collect()),
            )]),
            QueryWhat::Summary => ok_response(vec![
                ("apps".into(), Value::Num(snap.apps.len() as f64)),
                ("policies".into(), Value::Num(snap.policies.len() as f64)),
                ("exploits".into(), Value::Num(snap.exploits.len() as f64)),
                (
                    "total_syntheses".into(),
                    Value::Num(snap.total_syntheses as f64),
                ),
            ]),
        }
    }

    fn stats(&self) -> String {
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let ops = self.counters.ops_coalesced.load(Ordering::Relaxed);
        let coalescing = if batches == 0 {
            1.0
        } else {
            ops as f64 / batches as f64
        };
        let cache = self.cache.stats();
        ok_response(vec![
            (
                "uptime_ms".into(),
                Value::Num(self.metrics.uptime_ms() as f64),
            ),
            (
                "requests".into(),
                Value::Num(self.counters.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "failed".into(),
                Value::Num(self.counters.failed.load(Ordering::Relaxed) as f64),
            ),
            ("batches".into(), Value::Num(batches as f64)),
            ("ops_coalesced".into(), Value::Num(ops as f64)),
            ("coalescing_factor".into(), Value::Num(coalescing)),
            (
                "deadline_misses".into(),
                Value::Num(self.counters.deadline_misses.load(Ordering::Relaxed) as f64),
            ),
            ("queue_depth".into(), Value::Num(self.queue.depth() as f64)),
            (
                "cache".into(),
                Value::Obj(vec![
                    ("memory_hits".into(), Value::Num(cache.memory_hits as f64)),
                    ("disk_hits".into(), Value::Num(cache.disk_hits as f64)),
                    ("misses".into(), Value::Num(cache.misses as f64)),
                    ("evicted".into(), Value::Num(cache.evicted as f64)),
                ]),
            ),
        ])
    }

    /// The `metrics` response: live gauges, per-type rolling latency
    /// windows, PDP/cache totals, and per-scrape counter deltas — as
    /// structured JSON, or (with `prometheus`) as text exposition
    /// carried in the `body` field.
    fn metrics_response(&self, prometheus: bool) -> String {
        if prometheus {
            return ok_response(vec![
                ("format".into(), Value::Str("prometheus".into())),
                ("body".into(), Value::Str(self.prometheus_text())),
            ]);
        }
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let ops = self.counters.ops_coalesced.load(Ordering::Relaxed);
        let coalescing = if batches == 0 {
            1.0
        } else {
            ops as f64 / batches as f64
        };
        let totals = self.pdp.totals();
        let cache = self.cache.stats();
        let counters = separ_obs::global().counters();
        let obj = |m: &std::collections::BTreeMap<String, u64>| {
            Value::Obj(
                m.iter()
                    .map(|(k, &v)| (k.clone(), Value::Num(v as f64)))
                    .collect(),
            )
        };
        ok_response(vec![
            (
                "uptime_ms".into(),
                Value::Num(self.metrics.uptime_ms() as f64),
            ),
            ("queue_depth".into(), Value::Num(self.queue.depth() as f64)),
            ("subscribers".into(), Value::Num(self.subs.count() as f64)),
            (
                "subscribers_dropped".into(),
                Value::Num(self.subs.dropped() as f64),
            ),
            ("seq".into(), Value::Num(self.subs.seq() as f64)),
            (
                "last_batch_age_ms".into(),
                match self.metrics.last_batch_age_ms() {
                    Some(ms) => Value::Num(ms as f64),
                    None => Value::Null,
                },
            ),
            (
                "requests".into(),
                Value::Num(self.counters.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "failed".into(),
                Value::Num(self.counters.failed.load(Ordering::Relaxed) as f64),
            ),
            (
                "slow_requests".into(),
                Value::Num(self.metrics.slow_requests.get() as f64),
            ),
            (
                "audit_records".into(),
                Value::Num(self.metrics.audit_records.get() as f64),
            ),
            ("batches".into(), Value::Num(batches as f64)),
            ("ops_coalesced".into(), Value::Num(ops as f64)),
            ("coalescing_factor".into(), Value::Num(coalescing)),
            (
                "deadline_misses".into(),
                Value::Num(self.counters.deadline_misses.load(Ordering::Relaxed) as f64),
            ),
            (
                "pdp".into(),
                Value::Obj(vec![
                    ("evaluations".into(), Value::Num(totals.evaluations as f64)),
                    ("allowed".into(), Value::Num(totals.allowed as f64)),
                    ("denied".into(), Value::Num(totals.denied as f64)),
                    ("prompts".into(), Value::Num(totals.prompts as f64)),
                    ("swaps".into(), Value::Num(totals.swaps as f64)),
                    ("policies".into(), Value::Num(totals.policies as f64)),
                ]),
            ),
            (
                "cache".into(),
                Value::Obj(vec![
                    ("memory_hits".into(), Value::Num(cache.memory_hits as f64)),
                    ("disk_hits".into(), Value::Num(cache.disk_hits as f64)),
                    ("misses".into(), Value::Num(cache.misses as f64)),
                    ("evicted".into(), Value::Num(cache.evicted as f64)),
                ]),
            ),
            ("rolling".into(), self.metrics.rolling_json()),
            (
                "counters".into(),
                Value::Obj(
                    counters
                        .iter()
                        .map(|(&k, &v)| (k.to_string(), Value::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("counters_delta".into(), obj(&self.metrics.counter_deltas())),
        ])
    }

    /// The full Prometheus text exposition: daemon gauges and counters
    /// first (fixed order), then windowed latency quantiles, then every
    /// process-global obs counter (sorted) — byte-stable across scrapes
    /// of the same state.
    fn prometheus_text(&self) -> String {
        let mut w = PromWriter::new();
        let gauge = |w: &mut PromWriter, name: &str, help: &str, v: f64| {
            w.family(name, "gauge", help);
            w.sample(name, &[], v);
        };
        let counter = |w: &mut PromWriter, name: &str, help: &str, v: f64| {
            w.family(name, "counter", help);
            w.sample(name, &[], v);
        };
        gauge(
            &mut w,
            "separ_uptime_seconds",
            "seconds since daemon start",
            self.metrics.uptime_ms() as f64 / 1_000.0,
        );
        gauge(
            &mut w,
            "separ_queue_depth",
            "pending churn ops",
            self.queue.depth() as f64,
        );
        gauge(
            &mut w,
            "separ_subscribers",
            "connected policy-delta subscribers",
            self.subs.count() as f64,
        );
        if let Some(ms) = self.metrics.last_batch_age_ms() {
            gauge(
                &mut w,
                "separ_last_batch_age_seconds",
                "seconds since the last applied batch",
                ms as f64 / 1_000.0,
            );
        }
        counter(
            &mut w,
            "separ_policy_delta_seq",
            "policy-delta events published",
            self.subs.seq() as f64,
        );
        counter(
            &mut w,
            "separ_subscribers_dropped_total",
            "subscribers dropped for lagging",
            self.subs.dropped() as f64,
        );
        counter(
            &mut w,
            "separ_requests_total",
            "requests served",
            self.counters.requests.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut w,
            "separ_requests_failed_total",
            "requests answered with an error",
            self.counters.failed.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut w,
            "separ_slow_requests_total",
            "requests over the slow-log threshold",
            self.metrics.slow_requests.get() as f64,
        );
        counter(
            &mut w,
            "separ_audit_records_total",
            "audit records written",
            self.metrics.audit_records.get() as f64,
        );
        counter(
            &mut w,
            "separ_batches_total",
            "analysis batches applied",
            self.counters.batches.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut w,
            "separ_ops_coalesced_total",
            "churn ops folded into batches",
            self.counters.ops_coalesced.load(Ordering::Relaxed) as f64,
        );
        counter(
            &mut w,
            "separ_deadline_misses_total",
            "confirmation waits that expired",
            self.counters.deadline_misses.load(Ordering::Relaxed) as f64,
        );
        let totals = self.pdp.totals();
        counter(
            &mut w,
            "separ_pdp_evaluations_total",
            "decisions evaluated",
            totals.evaluations as f64,
        );
        counter(
            &mut w,
            "separ_pdp_allowed_total",
            "decisions that allowed the operation",
            totals.allowed as f64,
        );
        counter(
            &mut w,
            "separ_pdp_denied_total",
            "decisions that refused the operation",
            totals.denied as f64,
        );
        counter(
            &mut w,
            "separ_pdp_prompts_total",
            "decisions that prompted the user",
            totals.prompts as f64,
        );
        counter(
            &mut w,
            "separ_pdp_swaps_total",
            "policy-set swaps published",
            totals.swaps as f64,
        );
        gauge(
            &mut w,
            "separ_pdp_policies",
            "policies in the live set",
            totals.policies as f64,
        );
        let cache = self.cache.stats();
        counter(
            &mut w,
            "separ_cache_memory_hits_total",
            "extraction-cache memory hits",
            cache.memory_hits as f64,
        );
        counter(
            &mut w,
            "separ_cache_disk_hits_total",
            "extraction-cache disk hits",
            cache.disk_hits as f64,
        );
        counter(
            &mut w,
            "separ_cache_misses_total",
            "extraction-cache misses",
            cache.misses as f64,
        );
        counter(
            &mut w,
            "separ_cache_evicted_total",
            "extraction-cache evictions",
            cache.evicted as f64,
        );
        self.metrics.rolling_prometheus(&mut w);
        obs_counters_prometheus(&mut w);
        w.finish()
    }

    /// The `health` response: liveness (worker thread running),
    /// readiness (accepting requests) and staleness (last-batch age).
    fn health(&self) -> String {
        let live = self
            .worker
            .lock()
            .expect("worker lock")
            .as_ref()
            .map(|h| !h.is_finished())
            .unwrap_or(false);
        ok_response(vec![
            ("ready".into(), Value::Bool(live)),
            ("live".into(), Value::Bool(live)),
            (
                "uptime_ms".into(),
                Value::Num(self.metrics.uptime_ms() as f64),
            ),
            ("queue_depth".into(), Value::Num(self.queue.depth() as f64)),
            (
                "last_batch_age_ms".into(),
                match self.metrics.last_batch_age_ms() {
                    Some(ms) => Value::Num(ms as f64),
                    None => Value::Null,
                },
            ),
            ("seq".into(), Value::Num(self.subs.seq() as f64)),
        ])
    }

    /// Registers a policy-delta subscriber: it receives one event line
    /// per batch applied after this call, in order. The socket server
    /// calls this when a connection sends `subscribe`; in-process
    /// harnesses (and tests) use it directly.
    pub fn subscribe(&self) -> Subscription {
        let sub = self.subs.subscribe();
        self.metrics.subscribers.set(self.subs.count() as i64);
        sub
    }

    /// Removes a subscriber whose connection closed.
    pub fn unsubscribe(&self, id: u64) {
        self.subs.unsubscribe(id);
        self.metrics.subscribers.set(self.subs.count() as i64);
    }

    /// The acknowledgement line a new subscriber receives first:
    /// carries the current sequence number, so the client knows which
    /// events precede its subscription.
    pub fn subscribe_ack(&self) -> String {
        ok_response(vec![
            ("subscribed".into(), Value::Bool(true)),
            ("seq".into(), Value::Num(self.subs.seq() as f64)),
        ])
    }

    /// The daemon's live metrics registry (bench harnesses read the
    /// uptime epoch and record ancillary samples through this).
    pub fn live_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    fn shutdown(&self) -> String {
        match self.drain() {
            Ok(()) => ok_response(vec![("stopped".into(), Value::Bool(true))]),
            Err(e) => error_response(&format!("shutdown: {e}")),
        }
    }

    /// Closes the queue, joins the worker (which drains every accepted
    /// op, persists, and fsyncs), idempotently.
    ///
    /// # Errors
    ///
    /// Fails if the worker thread panicked.
    pub fn drain(&self) -> Result<(), ServeError> {
        let _span = separ_obs::span("serve.shutdown");
        self.queue.close();
        let handle = self.worker.lock().expect("worker lock").take();
        let joined = match handle {
            Some(handle) => handle
                .join()
                .map_err(|_| ServeError("analysis worker panicked".into())),
            None => Ok(()),
        };
        // Disconnect subscribers only after the join: the drained
        // batches' delta events are published by the worker on its way
        // out, and every subscriber is owed them.
        self.subs.close();
        joined
    }

    /// Whether the daemon has been shut down (drained and joined).
    pub fn is_stopped(&self) -> bool {
        self.worker.lock().expect("worker lock").is_none()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

fn snapshot_of(session: &IncrementalSession) -> Published {
    Published {
        policies: Arc::new(session.policies().to_vec()),
        apps: session.apps().iter().map(|a| a.package.clone()).collect(),
        exploits: session.exploits().map(|e| e.to_string()).collect(),
        total_syntheses: session.total_syntheses(),
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    mut session: IncrementalSession,
    store: Option<SessionStore>,
    queue: Arc<ChurnQueue>,
    pdp: SharedPdp,
    published: Arc<Mutex<Published>>,
    counters: Arc<Counters>,
    metrics: Arc<ServeMetrics>,
    subs: Arc<Subscriptions>,
    batch_max: usize,
) {
    while let Some(batch) = queue.take_batch(batch_max) {
        let _span = separ_obs::span("serve.batch");
        let started = Instant::now();
        let ops: Vec<SessionOp> = batch.iter().map(|(op, _)| op.clone()).collect();
        let outcome = match session.apply_batch(ops) {
            Ok(delta) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .ops_coalesced
                    .fetch_add(delta.ops_coalesced as u64, Ordering::Relaxed);
                separ_obs::counter_add("serve.batches", 1);
                separ_obs::counter_add("serve.ops", delta.ops_coalesced as u64);
                separ_obs::observe_ns("serve.batch", started.elapsed().as_nanos() as u64);
                let summary = BatchSummary {
                    ops: delta.ops_coalesced,
                    added: delta.added.len(),
                    removed: delta.removed.len(),
                    signatures_rerun: delta.signatures_rerun,
                    policies: session.policies().len(),
                };
                // The subscription event needs the policy ids before
                // apply_delta consumes the delta; the sequence number
                // is claimed here, on the only thread that ever does,
                // so seq order IS batch order.
                let event = PolicyDeltaEvent::new(
                    subs.next_seq(),
                    &delta.added,
                    &delta.removed,
                    delta.apps_resliced,
                    delta.signatures_rerun,
                    delta.ops_coalesced,
                    session.policies().len(),
                );
                // Publish first (decisions go live), then persist (a
                // crash between the two replays the batch's effect from
                // the clients' perspective as already-analyzed state
                // that simply wasn't saved — re-sending is idempotent).
                pdp.apply_delta(delta.added, &delta.removed);
                *published.lock().expect("published lock") = snapshot_of(&session);
                metrics.mark_batch();
                metrics.record("batch", started.elapsed().as_nanos() as u64);
                let line: Arc<str> = Arc::from(event.to_line().as_str());
                subs.publish(&line);
                metrics.subscribers.set(subs.count() as i64);
                metrics.subscribers_dropped.set(subs.dropped() as i64);
                if let Some(store) = &store {
                    if let Err(e) = store.persist(session.apps()) {
                        eprintln!("separ serve: store persist failed: {e}");
                    }
                }
                BatchOutcome::Done(Arc::new(summary))
            }
            Err(e) => BatchOutcome::Failed(Arc::from(e.to_string().as_str())),
        };
        fulfill_batch(&batch, &outcome);
    }
    // Queue closed and drained: make the final state durable.
    if let Some(store) = &store {
        if let Err(e) = store.persist(session.apps()).and_then(|()| store.sync()) {
            eprintln!("separ serve: final store sync failed: {e}");
        }
    }
}
