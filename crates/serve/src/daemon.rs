//! The analysis daemon: one [`IncrementalSession`] behind a coalescing
//! batch worker, with decisions served lock-free off a [`SharedPdp`].
//!
//! ```text
//! connection threads                     analysis worker (one thread)
//! ──────────────────                     ───────────────────────────
//! decode + extract (ModelCache) ─┐
//! enqueue op, get Ticket ────────┼─▶ ChurnQueue ─▶ take_batch(max)
//! wait(deadline) ◀───────────────┘        │           apply_batch (ONE pass)
//!                                         │           SharedPdp::apply_delta
//! decide ──▶ PdpReader (lock-free) ◀──────┘           store.persist
//! query/stats ──▶ published snapshot                  fulfill tickets
//! ```
//!
//! Expensive per-request work (package decode and model extraction)
//! happens on the *connection* thread before the op is enqueued, so it
//! parallelizes across clients and malformed packages are refused
//! immediately; the worker only ever folds ready-made models into the
//! session. A burst of N churn requests drains as one
//! [`IncrementalSession::apply_batch`] pass — the coalescing factor
//! (ops per batch) is the daemon's central performance metric.
//!
//! With a store directory configured, every batch persists the bundle
//! manifest; on startup the daemon restores the persisted models and
//! re-synthesizes from them **without re-extracting** any package.
//! Shutdown closes the queue, drains what was accepted, persists, and
//! fsyncs — accepted requests are never lost (see
//! `crate::queue`'s close-then-drain contract).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use separ_analysis::cache::ModelCache;
use separ_core::policy::Policy;
use separ_core::{IncrementalSession, SeparConfig, SessionOp, SignatureRegistry};
use separ_enforce::{CompiledPolicySet, PromptHandler, SharedPdp};
use separ_obs::json::Value;

use crate::protocol::{error_response, ok_response, QueryWhat, Request};
use crate::queue::{fulfill_batch, BatchOutcome, BatchSummary, ChurnQueue, PushError};
use crate::store::SessionStore;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Analysis configuration for the underlying session.
    pub config: SeparConfig,
    /// Maximum pending churn ops before producers block (backpressure).
    pub queue_capacity: usize,
    /// Maximum ops folded into one analysis pass.
    pub batch_max: usize,
    /// Confirmation-wait deadline for churn requests that don't set
    /// `deadline_ms`.
    pub default_deadline: Duration,
    /// Persistent session-store directory; `None` = in-memory only.
    pub store_dir: Option<std::path::PathBuf>,
    /// Extraction-cache size cap (the store is never capped).
    pub cache_cap_bytes: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            config: SeparConfig::default(),
            queue_capacity: 64,
            batch_max: 32,
            default_deadline: Duration::from_secs(30),
            store_dir: None,
            cache_cap_bytes: None,
        }
    }
}

/// A startup error.
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ServeError {}

/// The read-mostly snapshot `query`/`stats` answer from; the worker
/// replaces it after every batch.
#[derive(Debug, Default, Clone)]
struct Published {
    policies: Arc<Vec<Policy>>,
    apps: Vec<String>,
    exploits: Vec<String>,
    total_syntheses: usize,
}

/// Monotonic service counters.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    ops_coalesced: AtomicU64,
    deadline_misses: AtomicU64,
}

/// The running daemon. [`Daemon::handle`] is the entire service: socket
/// servers, tests and in-process harnesses all feed request lines
/// through it.
pub struct Daemon {
    queue: Arc<ChurnQueue>,
    pdp: SharedPdp,
    cache: Arc<ModelCache>,
    published: Arc<Mutex<Published>>,
    counters: Arc<Counters>,
    default_deadline: Duration,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    restored_apps: usize,
    restore_skipped: usize,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("queue_depth", &self.queue.depth())
            .field("restored_apps", &self.restored_apps)
            .finish()
    }
}

impl Daemon {
    /// Boots the daemon: restores the session from the store (if any),
    /// runs the initial synthesis, publishes the PDP, and starts the
    /// analysis worker.
    ///
    /// # Errors
    ///
    /// Fails if the store is unusable or the initial analysis fails.
    pub fn start(cfg: ServeConfig) -> Result<Daemon, ServeError> {
        let _span = separ_obs::span("serve.start");
        let store = match &cfg.store_dir {
            Some(dir) => Some(SessionStore::open(dir).map_err(|e| ServeError(e.to_string()))?),
            None => None,
        };
        let restored = match &store {
            Some(store) => store.restore().map_err(|e| ServeError(e.to_string()))?,
            None => Default::default(),
        };
        let (restored_apps, restore_skipped) = (restored.apps.len(), restored.skipped);
        // The extraction cache lives *inside* the store dir when one is
        // configured, so a single flag places all daemon state.
        let cache = Arc::new(match &cfg.store_dir {
            Some(dir) => ModelCache::with_dir_capped(dir.join("cache"), cfg.cache_cap_bytes),
            None => ModelCache::new(),
        });
        let session =
            IncrementalSession::new(SignatureRegistry::standard(), cfg.config, restored.apps)
                .map_err(|e| ServeError(format!("initial analysis: {e}")))?;
        let pdp = SharedPdp::new(CompiledPolicySet::compile(
            session.policies().to_vec(),
            session.apps().iter().map(|a| a.package.clone()).collect(),
        ));
        let published = Arc::new(Mutex::new(snapshot_of(&session)));
        if let Some(store) = &store {
            store
                .persist(session.apps())
                .map_err(|e| ServeError(e.to_string()))?;
        }
        let queue = Arc::new(ChurnQueue::new(cfg.queue_capacity));
        let counters = Arc::new(Counters::default());
        let worker = {
            let queue = Arc::clone(&queue);
            let pdp = pdp.clone();
            let published = Arc::clone(&published);
            let counters = Arc::clone(&counters);
            let batch_max = cfg.batch_max;
            std::thread::Builder::new()
                .name("separ-serve-worker".into())
                .spawn(move || {
                    worker_loop(session, store, queue, pdp, published, counters, batch_max)
                })
                .map_err(|e| ServeError(format!("worker thread: {e}")))?
        };
        Ok(Daemon {
            queue,
            pdp,
            cache,
            published,
            counters,
            default_deadline: cfg.default_deadline,
            worker: Mutex::new(Some(worker)),
            restored_apps,
            restore_skipped,
        })
    }

    /// How many apps the store restored at boot (and how many manifest
    /// entries were unrecoverable).
    pub fn restored(&self) -> (usize, usize) {
        (self.restored_apps, self.restore_skipped)
    }

    /// Handles one request line, returning one response line (no
    /// trailing newline). Never panics on malformed input — every error
    /// becomes an `{"ok":false,...}` response.
    pub fn handle(&self, line: &str) -> String {
        let _span = separ_obs::span("serve.request");
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        separ_obs::counter_add("serve.requests", 1);
        let request = match Request::parse(line.trim()) {
            Ok(request) => request,
            Err(e) => return self.fail(e),
        };
        match request {
            Request::Install { bytes, deadline_ms } => {
                // Extraction happens here, on the caller's thread: it
                // parallelizes across connections and the worker only
                // sees ready models.
                let model = match self.cache.get_or_extract(&bytes) {
                    Ok((model, _)) => (*model).clone(),
                    Err(e) => return self.fail(format!("install: {e}")),
                };
                self.churn(SessionOp::Install(model), deadline_ms)
            }
            Request::Uninstall {
                package,
                deadline_ms,
            } => self.churn(SessionOp::Uninstall(package), deadline_ms),
            Request::SetPermission {
                package,
                permission,
                granted,
                deadline_ms,
            } => self.churn(
                SessionOp::SetPermission {
                    package,
                    permission,
                    granted,
                },
                deadline_ms,
            ),
            Request::Query(what) => self.query(what),
            Request::Decide {
                event,
                ctx,
                prompt_allow,
            } => {
                let mut prompt = if prompt_allow {
                    PromptHandler::AlwaysAllow
                } else {
                    PromptHandler::AlwaysDeny
                };
                let decision = self.pdp.reader().evaluate(event, &ctx, &mut prompt);
                let mut fields =
                    vec![("decision".to_string(), Value::Str(decision.label().into()))];
                match decision.policy_id() {
                    Some(id) => fields.push(("policy_id".into(), Value::Num(id as f64))),
                    None => fields.push(("policy_id".into(), Value::Null)),
                }
                ok_response(fields)
            }
            Request::Stats => self.stats(),
            Request::Shutdown => self.shutdown(),
        }
    }

    fn fail(&self, message: String) -> String {
        self.counters.failed.fetch_add(1, Ordering::Relaxed);
        separ_obs::counter_add("serve.requests.failed", 1);
        error_response(&message)
    }

    fn churn(&self, op: SessionOp, deadline_ms: Option<u64>) -> String {
        let deadline = deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.default_deadline);
        let ticket = match self.queue.push(op, deadline) {
            Ok(ticket) => ticket,
            Err(e @ PushError::Backpressure) | Err(e @ PushError::Closed) => {
                return self.fail(e.to_string())
            }
        };
        match ticket.wait(deadline) {
            Some(BatchOutcome::Done(summary)) => ok_response(vec![(
                "batch".into(),
                Value::Obj(vec![
                    ("ops".into(), Value::Num(summary.ops as f64)),
                    ("added".into(), Value::Num(summary.added as f64)),
                    ("removed".into(), Value::Num(summary.removed as f64)),
                    (
                        "signatures_rerun".into(),
                        Value::Num(summary.signatures_rerun as f64),
                    ),
                    ("policies".into(), Value::Num(summary.policies as f64)),
                ]),
            )]),
            Some(BatchOutcome::Failed(e)) => self.fail(format!("analysis failed: {e}")),
            None => {
                // The op IS accepted and will be applied; only the
                // confirmation wait expired.
                self.counters
                    .deadline_misses
                    .fetch_add(1, Ordering::Relaxed);
                separ_obs::counter_add("serve.deadline_miss", 1);
                ok_response(vec![("accepted".into(), Value::Bool(true))])
            }
        }
    }

    fn query(&self, what: QueryWhat) -> String {
        let snap = self.published.lock().expect("published lock").clone();
        match what {
            QueryWhat::Policies => {
                let json = separ_core::policy_io::to_json(&snap.policies);
                match Value::parse(&json) {
                    Ok(v) => ok_response(vec![("policies".into(), v)]),
                    Err(e) => self.fail(format!("policy serialization: {e}")),
                }
            }
            QueryWhat::Exploits => ok_response(vec![(
                "exploits".into(),
                Value::Arr(snap.exploits.iter().cloned().map(Value::Str).collect()),
            )]),
            QueryWhat::Apps => ok_response(vec![(
                "apps".into(),
                Value::Arr(snap.apps.iter().cloned().map(Value::Str).collect()),
            )]),
            QueryWhat::Summary => ok_response(vec![
                ("apps".into(), Value::Num(snap.apps.len() as f64)),
                ("policies".into(), Value::Num(snap.policies.len() as f64)),
                ("exploits".into(), Value::Num(snap.exploits.len() as f64)),
                (
                    "total_syntheses".into(),
                    Value::Num(snap.total_syntheses as f64),
                ),
            ]),
        }
    }

    fn stats(&self) -> String {
        let batches = self.counters.batches.load(Ordering::Relaxed);
        let ops = self.counters.ops_coalesced.load(Ordering::Relaxed);
        let coalescing = if batches == 0 {
            1.0
        } else {
            ops as f64 / batches as f64
        };
        let cache = self.cache.stats();
        ok_response(vec![
            (
                "requests".into(),
                Value::Num(self.counters.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "failed".into(),
                Value::Num(self.counters.failed.load(Ordering::Relaxed) as f64),
            ),
            ("batches".into(), Value::Num(batches as f64)),
            ("ops_coalesced".into(), Value::Num(ops as f64)),
            ("coalescing_factor".into(), Value::Num(coalescing)),
            (
                "deadline_misses".into(),
                Value::Num(self.counters.deadline_misses.load(Ordering::Relaxed) as f64),
            ),
            ("queue_depth".into(), Value::Num(self.queue.depth() as f64)),
            (
                "cache".into(),
                Value::Obj(vec![
                    ("memory_hits".into(), Value::Num(cache.memory_hits as f64)),
                    ("disk_hits".into(), Value::Num(cache.disk_hits as f64)),
                    ("misses".into(), Value::Num(cache.misses as f64)),
                    ("evicted".into(), Value::Num(cache.evicted as f64)),
                ]),
            ),
        ])
    }

    fn shutdown(&self) -> String {
        match self.drain() {
            Ok(()) => ok_response(vec![("stopped".into(), Value::Bool(true))]),
            Err(e) => error_response(&format!("shutdown: {e}")),
        }
    }

    /// Closes the queue, joins the worker (which drains every accepted
    /// op, persists, and fsyncs), idempotently.
    ///
    /// # Errors
    ///
    /// Fails if the worker thread panicked.
    pub fn drain(&self) -> Result<(), ServeError> {
        let _span = separ_obs::span("serve.shutdown");
        self.queue.close();
        let handle = self.worker.lock().expect("worker lock").take();
        if let Some(handle) = handle {
            handle
                .join()
                .map_err(|_| ServeError("analysis worker panicked".into()))?;
        }
        Ok(())
    }

    /// Whether the daemon has been shut down (drained and joined).
    pub fn is_stopped(&self) -> bool {
        self.worker.lock().expect("worker lock").is_none()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

fn snapshot_of(session: &IncrementalSession) -> Published {
    Published {
        policies: Arc::new(session.policies().to_vec()),
        apps: session.apps().iter().map(|a| a.package.clone()).collect(),
        exploits: session.exploits().map(|e| e.to_string()).collect(),
        total_syntheses: session.total_syntheses(),
    }
}

fn worker_loop(
    mut session: IncrementalSession,
    store: Option<SessionStore>,
    queue: Arc<ChurnQueue>,
    pdp: SharedPdp,
    published: Arc<Mutex<Published>>,
    counters: Arc<Counters>,
    batch_max: usize,
) {
    while let Some(batch) = queue.take_batch(batch_max) {
        let _span = separ_obs::span("serve.batch");
        let started = Instant::now();
        let ops: Vec<SessionOp> = batch.iter().map(|(op, _)| op.clone()).collect();
        let outcome = match session.apply_batch(ops) {
            Ok(delta) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .ops_coalesced
                    .fetch_add(delta.ops_coalesced as u64, Ordering::Relaxed);
                separ_obs::counter_add("serve.batches", 1);
                separ_obs::counter_add("serve.ops", delta.ops_coalesced as u64);
                separ_obs::observe_ns("serve.batch", started.elapsed().as_nanos() as u64);
                let summary = BatchSummary {
                    ops: delta.ops_coalesced,
                    added: delta.added.len(),
                    removed: delta.removed.len(),
                    signatures_rerun: delta.signatures_rerun,
                    policies: session.policies().len(),
                };
                // Publish first (decisions go live), then persist (a
                // crash between the two replays the batch's effect from
                // the clients' perspective as already-analyzed state
                // that simply wasn't saved — re-sending is idempotent).
                pdp.apply_delta(delta.added, &delta.removed);
                *published.lock().expect("published lock") = snapshot_of(&session);
                if let Some(store) = &store {
                    if let Err(e) = store.persist(session.apps()) {
                        eprintln!("separ serve: store persist failed: {e}");
                    }
                }
                BatchOutcome::Done(Arc::new(summary))
            }
            Err(e) => BatchOutcome::Failed(Arc::from(e.to_string().as_str())),
        };
        fulfill_batch(&batch, &outcome);
    }
    // Queue closed and drained: make the final state durable.
    if let Some(store) = &store {
        if let Err(e) = store.persist(session.apps()).and_then(|()| store.sync()) {
            eprintln!("separ serve: final store sync failed: {e}");
        }
    }
}
