//! Socket front end: line-delimited request/response over a unix-domain
//! socket or TCP.
//!
//! Each accepted connection gets its own thread reading lines and
//! passing them to [`Daemon::handle`]; heavy per-request work (package
//! decode + model extraction) therefore runs concurrently across
//! clients, while the churn itself funnels through the daemon's single
//! coalescing worker. The accept loop ends after a `shutdown` request
//! has been served and drains; in-flight connections finish their
//! current request.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::daemon::{Daemon, ServeError};
use crate::protocol::Request;

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// A unix-domain socket at the given path (removed on bind and on
    /// clean exit).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7878`.
    Tcp(String),
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Runs the accept loop until a client sends `shutdown`. Returns once
/// the daemon has drained and all state is durable.
///
/// # Errors
///
/// Fails if the endpoint cannot be bound.
pub fn serve(daemon: Daemon, endpoint: &Endpoint) -> Result<(), ServeError> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a previous run would make bind
            // fail; the store, not the socket, carries state.
            let _ = std::fs::remove_file(path);
            Listener::Unix(
                UnixListener::bind(path)
                    .map_err(|e| ServeError(format!("{}: {e}", path.display())))?,
            )
        }
        Endpoint::Tcp(addr) => {
            Listener::Tcp(TcpListener::bind(addr).map_err(|e| ServeError(format!("{addr}: {e}")))?)
        }
    };
    let daemon = Arc::new(daemon);
    let stopping = Arc::new(AtomicBool::new(false));
    let mut handlers = Vec::new();
    loop {
        let stream: Box<dyn Connection> = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => break,
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => break,
            },
        };
        if stopping.load(Ordering::Acquire) {
            break;
        }
        let daemon = Arc::clone(&daemon);
        let stopping_for_conn = Arc::clone(&stopping);
        let endpoint_for_conn = endpoint.clone();
        handlers.push(std::thread::spawn(move || {
            if connection_loop(stream, &daemon) {
                stopping_for_conn.store(true, Ordering::Release);
                // Unblock the accept loop with a throwaway connection.
                nudge(&endpoint_for_conn);
            }
        }));
        if stopping.load(Ordering::Acquire) {
            break;
        }
    }
    for h in handlers {
        let _ = h.join();
    }
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    // `shutdown` already drained via handle(); this covers the
    // accept-error exit path.
    daemon.drain()
}

/// One connection: read a line, answer a line. Returns `true` if this
/// connection served a `shutdown`.
///
/// A `subscribe` request upgrades the connection instead of answering
/// it: the loop stops reading and pushes policy-delta event lines until
/// the client hangs up or the daemon shuts down.
fn connection_loop(stream: Box<dyn Connection>, daemon: &Daemon) -> bool {
    let Ok(reader) = stream.try_clone_reader() else {
        return false;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // The contains() pre-filter keeps the hot request path at one
        // parse (inside handle); only candidate lines parse here.
        if line.contains("subscribe")
            && matches!(Request::parse(line.trim()), Ok(Request::Subscribe))
        {
            subscription_loop(writer, daemon);
            return false;
        }
        let response = daemon.handle(&line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if daemon.is_stopped() {
            return true;
        }
    }
    false
}

/// Pushes the subscription acknowledgement and then one event line per
/// applied batch. Ends when the client's socket dies (the next write
/// fails) or the daemon disconnects the subscriber (shutdown, or the
/// client lagged past its buffer).
fn subscription_loop(mut writer: Box<dyn Connection>, daemon: &Daemon) {
    let sub = daemon.subscribe();
    let ack = daemon.subscribe_ack();
    if writer.write_all(ack.as_bytes()).is_err()
        || writer.write_all(b"\n").is_err()
        || writer.flush().is_err()
    {
        daemon.unsubscribe(sub.id);
        return;
    }
    while let Ok(event) = sub.recv() {
        if writer.write_all(event.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    daemon.unsubscribe(sub.id);
}

/// Connects and immediately drops, solely to wake a blocking `accept`.
fn nudge(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// The small common surface of [`UnixStream`] and [`TcpStream`] the
/// connection loop needs.
trait Connection: Write + Send {
    /// An independent read handle on the same socket.
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>>;
}

impl Connection for UnixStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Connection for TcpStream {
    fn try_clone_reader(&self) -> std::io::Result<Box<dyn std::io::Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}
