//! Live service metrics behind the `metrics` request: per-request-type
//! rolling latency windows, gauges, and per-scrape counter deltas.
//!
//! Everything here is designed to sit *beside* the hot paths, not in
//! them: recording a request latency touches one slice mutex of a
//! [`RollingHistogram`] (tens of nanoseconds against a decide round
//! trip measured in hundreds of microseconds — `serve_load` measures
//! and asserts the ratio), and gauges are single relaxed atomics. The
//! expensive work — merging windows, walking counters, rendering JSON
//! or Prometheus text — happens only when someone actually scrapes.

use std::sync::Mutex;
use std::time::Instant;

use separ_obs::json::Value;
use separ_obs::prometheus::{sanitize, PromWriter};
use separ_obs::{CounterDeltas, Gauge, HistogramSnapshot, RollingHistogram};

/// Every request kind the daemon tracks a rolling latency window for.
/// `batch` is recorded by the analysis worker (one sample per coalesced
/// batch); the rest by [`Daemon::handle`](crate::Daemon::handle).
pub const REQUEST_KINDS: [&str; 10] = [
    "install",
    "uninstall",
    "set_permission",
    "query",
    "decide",
    "stats",
    "metrics",
    "health",
    "invalid",
    "batch",
];

/// The daemon's live metrics registry.
///
/// One instance per [`Daemon`](crate::Daemon); shared with the analysis
/// worker. All recording methods are `&self` and thread-safe.
pub struct ServeMetrics {
    started: Instant,
    rolling: Vec<RollingHistogram>,
    /// Connected `subscribe` streams.
    pub subscribers: Gauge,
    /// Subscribers disconnected for lagging (cumulative).
    pub subscribers_dropped: Gauge,
    /// Requests slower than the configured `--slow-ms` (cumulative).
    pub slow_requests: Gauge,
    /// Audit records written (cumulative); 0 when auditing is off.
    pub audit_records: Gauge,
    /// Nanoseconds-from-start of the last applied batch; 0 = never.
    last_batch_ns: Gauge,
    deltas: Mutex<CounterDeltas>,
}

impl ServeMetrics {
    /// A fresh registry; `started` is the daemon's uptime epoch.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            rolling: REQUEST_KINDS
                .iter()
                .map(|_| RollingHistogram::standard())
                .collect(),
            subscribers: Gauge::new(),
            subscribers_dropped: Gauge::new(),
            slow_requests: Gauge::new(),
            audit_records: Gauge::new(),
            last_batch_ns: Gauge::new(),
            deltas: Mutex::new(CounterDeltas::new()),
        }
    }

    /// Milliseconds since the daemon started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Records one request of `kind` taking `ns` nanoseconds. Unknown
    /// kinds are dropped (the set is closed over [`REQUEST_KINDS`]).
    pub fn record(&self, kind: &str, ns: u64) {
        if let Some(i) = REQUEST_KINDS.iter().position(|&k| k == kind) {
            self.rolling[i].record(ns);
        }
    }

    /// Marks a batch as applied now (drives `last_batch_age_ms`).
    pub fn mark_batch(&self) {
        self.last_batch_ns
            .set(self.started.elapsed().as_nanos() as i64);
    }

    /// Milliseconds since the last applied batch; `None` before the
    /// first one.
    pub fn last_batch_age_ms(&self) -> Option<u64> {
        let at = self.last_batch_ns.get();
        if at <= 0 {
            return None;
        }
        let now = self.started.elapsed().as_nanos() as i64;
        Some((now.saturating_sub(at) / 1_000_000).max(0) as u64)
    }

    /// The rolling windows of every request kind with traffic, as the
    /// `rolling` JSON object: kind → window label → summary.
    pub fn rolling_json(&self) -> Value {
        let mut kinds = Vec::new();
        for (i, &kind) in REQUEST_KINDS.iter().enumerate() {
            let windows = self.rolling[i].windows();
            if windows.iter().all(|(_, w)| w.count() == 0) {
                continue;
            }
            let obj = windows
                .into_iter()
                .map(|(label, w)| (label.to_string(), window_json(&w)))
                .collect();
            kinds.push((kind.to_string(), Value::Obj(obj)));
        }
        Value::Obj(kinds)
    }

    /// Appends one `separ_request_latency_seconds` gauge family holding
    /// the windowed quantiles of every request kind with traffic.
    pub fn rolling_prometheus(&self, w: &mut PromWriter) {
        let name = "separ_request_latency_seconds";
        w.family(
            name,
            "gauge",
            "windowed request latency quantiles by request type",
        );
        for (i, &kind) in REQUEST_KINDS.iter().enumerate() {
            for (window, snap) in self.rolling[i].windows() {
                if snap.count() == 0 {
                    continue;
                }
                for &(q, label) in &[(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    w.sample(
                        name,
                        &[("type", kind), ("window", window), ("quantile", label)],
                        snap.quantile(q) as f64 / 1e9,
                    );
                }
                w.sample(
                    &format!("{name}_count"),
                    &[("type", kind), ("window", window)],
                    snap.count() as f64,
                );
            }
        }
    }

    /// Per-scrape deltas of the process-global obs counters (empty when
    /// the collector is disabled). Advances the scrape baseline.
    pub fn counter_deltas(&self) -> std::collections::BTreeMap<String, u64> {
        let current = separ_obs::global().counters();
        self.deltas.lock().expect("deltas lock").delta(&current)
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("uptime_ms", &self.uptime_ms())
            .finish()
    }
}

/// One rolling window as JSON: count plus µs-valued quantiles.
fn window_json(w: &HistogramSnapshot) -> Value {
    let us = |ns: u64| Value::Num(ns as f64 / 1_000.0);
    Value::Obj(vec![
        ("count".into(), Value::Num(w.count() as f64)),
        ("p50_us".into(), us(w.quantile(0.5))),
        ("p90_us".into(), us(w.quantile(0.9))),
        ("p99_us".into(), us(w.quantile(0.99))),
        ("max_us".into(), us(w.max())),
        ("mean_us".into(), us(w.mean())),
    ])
}

/// Renders the obs-counter section of the Prometheus exposition: every
/// global counter as its own `separ_<name>_total` family, in sorted
/// (BTreeMap) order so repeated scrapes are byte-stable.
pub fn obs_counters_prometheus(w: &mut PromWriter) {
    for (name, value) in separ_obs::global().counters() {
        let prom = format!("separ_{}_total", sanitize(name));
        w.family(&prom, "counter", "process-global observability counter");
        w.sample(&prom, &[], value as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_known_kinds() {
        let m = ServeMetrics::new();
        m.record("decide", 1_000);
        m.record("decide", 2_000);
        m.record("nonsense", 5_000);
        let rolling = m.rolling_json();
        let decide = rolling.get("decide").expect("decide tracked");
        let w10 = decide.get("10s").expect("10s window");
        assert_eq!(w10.get("count").and_then(Value::as_u64), Some(2));
        assert!(rolling.get("nonsense").is_none());
        assert!(rolling.get("install").is_none(), "no traffic, no entry");
    }

    #[test]
    fn rolling_prometheus_emits_quantiles_per_window() {
        let m = ServeMetrics::new();
        for i in 0..100 {
            m.record("decide", 1_000 * (i + 1));
        }
        let mut w = PromWriter::new();
        m.rolling_prometheus(&mut w);
        let text = w.finish();
        assert!(text.contains("# TYPE separ_request_latency_seconds gauge"));
        assert!(text.contains(
            "separ_request_latency_seconds{type=\"decide\",window=\"10s\",quantile=\"0.99\"}"
        ));
        assert!(
            text.contains("separ_request_latency_seconds_count{type=\"decide\",window=\"5m\"} 100")
        );
        assert!(!text.contains("type=\"install\""));
    }

    #[test]
    fn last_batch_age_starts_empty() {
        let m = ServeMetrics::new();
        assert_eq!(m.last_batch_age_ms(), None);
        m.mark_batch();
        assert!(m.last_batch_age_ms().expect("marked") < 1_000);
    }
}
