//! The daemon's persistent session store.
//!
//! Layout under the store directory:
//!
//! ```text
//! store/
//!   manifest.json          {"version":1,"apps":[{"package":p,"model":hex},...]}
//!   models/<hex>.model     self-checking entries (separ_analysis::cache codec)
//! ```
//!
//! The manifest records the bundle **in session order** (order is part of
//! session identity — policies are derived app-by-app); each entry points
//! at a content-addressed model file, so an app update writes a new model
//! file and flips one manifest pointer. The manifest is replaced
//! atomically (write temp + rename), which gives crash consistency: a
//! reader always sees either the old or the new manifest, never a torn
//! one, and model files are written *before* the manifest that references
//! them. Model files carry their own checksums; a corrupt or missing file
//! drops only that app from recovery (counted, never silently).
//!
//! The store is deliberately separate from the extraction
//! [`ModelCache`](separ_analysis::cache::ModelCache): the cache is a
//! performance artifact whose LRU cap may evict anything, while the store
//! *is* the session — eviction must never eat device state.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use separ_analysis::cache::{decode_entry, encode_entry, sha256};
use separ_analysis::model::AppModel;
use separ_obs::json::Value;

/// What [`SessionStore::restore`] recovered.
#[derive(Debug, Default)]
pub struct Restored {
    /// The recovered bundle models, in session order.
    pub apps: Vec<AppModel>,
    /// Manifest entries that could not be recovered (missing or corrupt
    /// model file).
    pub skipped: usize,
}

/// A store error (always carries the offending path's context).
#[derive(Debug)]
pub struct StoreError(String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for StoreError {}

/// The on-disk session store.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    /// Opens (creating if needed) the store under `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory tree cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SessionStore, StoreError> {
        let dir = dir.into();
        let models = dir.join("models");
        std::fs::create_dir_all(&models)
            .map_err(|e| StoreError(format!("{}: {e}", models.display())))?;
        Ok(SessionStore { dir })
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn model_path(&self, hex: &str) -> PathBuf {
        self.dir.join("models").join(format!("{hex}.model"))
    }

    /// Persists the current bundle: writes any model files not yet
    /// present, atomically replaces the manifest, then removes orphaned
    /// model files no manifest entry references.
    ///
    /// # Errors
    ///
    /// Fails if a model file or the manifest cannot be written — in that
    /// case the *previous* manifest remains intact and authoritative.
    pub fn persist(&self, apps: &[AppModel]) -> Result<(), StoreError> {
        let _span = separ_obs::span("serve.store.persist");
        let mut entries = Vec::with_capacity(apps.len());
        for app in apps {
            let encoded = encode_entry(app);
            let hex = hex32(&sha256(&encoded));
            let path = self.model_path(&hex);
            if !path.exists() {
                std::fs::write(&path, &encoded)
                    .map_err(|e| StoreError(format!("{}: {e}", path.display())))?;
            }
            entries.push((app.package.clone(), hex));
        }
        let manifest = Value::Obj(vec![
            ("version".into(), Value::Num(1.0)),
            (
                "apps".into(),
                Value::Arr(
                    entries
                        .iter()
                        .map(|(package, hex)| {
                            Value::Obj(vec![
                                ("package".into(), Value::Str(package.clone())),
                                ("model".into(), Value::Str(hex.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let mut text = String::new();
        manifest.write_into(&mut text);
        text.push('\n');
        let tmp = self.dir.join("manifest.json.tmp");
        std::fs::write(&tmp, &text).map_err(|e| StoreError(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, self.manifest_path())
            .map_err(|e| StoreError(format!("{}: {e}", self.manifest_path().display())))?;
        // Garbage-collect model files the new manifest no longer names.
        // Best effort: a leaked file costs bytes, not correctness.
        if let Ok(dir) = std::fs::read_dir(self.dir.join("models")) {
            for entry in dir.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(hex) = name.strip_suffix(".model") else {
                    continue;
                };
                if !entries.iter().any(|(_, h)| h == hex) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Reads the manifest and decodes every referenced model. A missing
    /// manifest is an empty (fresh) store, not an error.
    ///
    /// # Errors
    ///
    /// Fails only on an unreadably malformed manifest; unrecoverable
    /// *model* files merely count into [`Restored::skipped`].
    pub fn restore(&self) -> Result<Restored, StoreError> {
        let _span = separ_obs::span("serve.store.restore");
        let path = self.manifest_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Restored::default()),
            Err(e) => return Err(StoreError(format!("{}: {e}", path.display()))),
        };
        let manifest = Value::parse(text.trim())
            .map_err(|e| StoreError(format!("{}: {e}", path.display())))?;
        let apps_field = manifest
            .get("apps")
            .and_then(Value::as_arr)
            .ok_or_else(|| StoreError(format!("{}: missing \"apps\"", path.display())))?;
        let mut restored = Restored::default();
        for entry in apps_field {
            let Some(hex) = entry.get("model").and_then(Value::as_str) else {
                restored.skipped += 1;
                continue;
            };
            let model = std::fs::read(self.model_path(hex))
                .ok()
                .and_then(|data| decode_entry(&data));
            match model {
                Some(model) => restored.apps.push(model),
                None => restored.skipped += 1,
            }
        }
        Ok(restored)
    }

    /// Flushes the store to stable storage: fsyncs the manifest, every
    /// referenced model file, and the directories holding them. Called on
    /// shutdown after the final [`SessionStore::persist`], making the
    /// drain-then-exit sequence durable.
    ///
    /// # Errors
    ///
    /// Fails if any fsync fails.
    pub fn sync(&self) -> Result<(), StoreError> {
        let _span = separ_obs::span("serve.store.sync");
        fsync_path(&self.manifest_path())?;
        if let Ok(dir) = std::fs::read_dir(self.dir.join("models")) {
            for entry in dir.flatten() {
                fsync_path(&entry.path())?;
            }
        }
        fsync_path(&self.dir.join("models"))?;
        fsync_path(&self.dir)
    }
}

fn fsync_path(path: &Path) -> Result<(), StoreError> {
    match std::fs::File::open(path) {
        Ok(f) => f
            .sync_all()
            .map_err(|e| StoreError(format!("{}: fsync: {e}", path.display()))),
        // A store that never persisted has no manifest yet; nothing to
        // make durable.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError(format!("{}: {e}", path.display()))),
    }
}

fn hex32(key: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for b in key {
        let _ = write!(out, "{b:02x}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn app(package: &str) -> AppModel {
        AppModel {
            package: package.into(),
            components: Vec::new(),
            uses_permissions: BTreeSet::from([format!("{package}.PERM")]),
            defines_permissions: BTreeSet::new(),
            diagnostics: Vec::new(),
            stats: Default::default(),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("separ-serve-store-{}-{tag}", std::process::id()))
    }

    #[test]
    fn persist_restore_round_trips_in_order() {
        let dir = tmp("round");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).expect("opens");
        let apps = vec![app("com.b"), app("com.a"), app("com.c")];
        store.persist(&apps).expect("persists");
        store.sync().expect("syncs");
        let restored = SessionStore::open(&dir)
            .expect("reopens")
            .restore()
            .expect("restores");
        assert_eq!(restored.skipped, 0);
        assert_eq!(restored.apps, apps, "order and content survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_store_restores_empty() {
        let dir = tmp("fresh");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).expect("opens");
        let restored = store.restore().expect("restores");
        assert!(restored.apps.is_empty());
        assert_eq!(restored.skipped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repersist_drops_orphaned_models_and_corruption_skips_one_app() {
        let dir = tmp("gc");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).expect("opens");
        store
            .persist(&[app("com.a"), app("com.b")])
            .expect("persists");
        let count = || {
            std::fs::read_dir(dir.join("models"))
                .map(|d| d.flatten().count())
                .unwrap_or(0)
        };
        assert_eq!(count(), 2);
        // Uninstall com.b: its model file is garbage-collected.
        store.persist(&[app("com.a")]).expect("persists");
        assert_eq!(count(), 1);
        // Corrupt the surviving model: restore skips that app, reports it.
        let model = std::fs::read_dir(dir.join("models"))
            .expect("dir")
            .flatten()
            .next()
            .expect("one model")
            .path();
        let mut data = std::fs::read(&model).expect("read");
        let mid = data.len() / 2;
        data[mid] ^= 0x1;
        std::fs::write(&model, &data).expect("write");
        let restored = store.restore().expect("restores");
        assert!(restored.apps.is_empty());
        assert_eq!(restored.skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn updating_one_app_flips_one_manifest_pointer() {
        let dir = tmp("update");
        let _ = std::fs::remove_dir_all(&dir);
        let store = SessionStore::open(&dir).expect("opens");
        let mut apps = vec![app("com.a"), app("com.b")];
        store.persist(&apps).expect("persists");
        apps[0].uses_permissions.insert("NEW".into());
        store.persist(&apps).expect("persists");
        let restored = store.restore().expect("restores");
        assert_eq!(restored.apps, apps);
        assert!(restored.apps[0].uses_permissions.contains("NEW"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
