//! The `separ serve` wire protocol.
//!
//! One request per line, one response per line, both JSON objects — the
//! lowest-common-denominator framing every language can speak from a
//! shell one-liner up. Requests select a command with `"cmd"`:
//!
//! ```text
//! {"cmd":"install","bytes_hex":"<package bytes>"[,"deadline_ms":N]}
//! {"cmd":"uninstall","package":"com.example"[,"deadline_ms":N]}
//! {"cmd":"set_permission","package":"p","permission":"q","granted":true}
//! {"cmd":"query","what":"policies"|"exploits"|"apps"|"summary"}
//! {"cmd":"decide","event":"icc_send","sender_app":"p","sender_component":"LC;",
//!  "receiver_app":"r","receiver_component":"LD;","action":"a",
//!  "tags":["LOCATION"],"prompt":"deny"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"[,"format":"prometheus"]}
//! {"cmd":"health"}
//! {"cmd":"subscribe"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":"..."}`.
//! Churn commands (install / uninstall / set_permission) answer once the
//! batch their op was folded into has been analyzed, carrying the batch
//! summary; `deadline_ms` bounds only how long the *client* waits for
//! that confirmation — an accepted op is applied even if its requester
//! stopped listening.
//!
//! `subscribe` upgrades the connection to a push stream: after the
//! `{"ok":true,"subscribed":true,"seq":N}` acknowledgement the server
//! writes one `{"event":"policy_delta",...}` line per applied batch
//! (see [`crate::subscribe`]) and reads nothing further. `metrics` with
//! `"format":"prometheus"` carries the text exposition in the `body`
//! string field of the (still one-line JSON) response.

use std::collections::BTreeSet;

use separ_android::types::Resource;
use separ_core::policy::PolicyEvent;
use separ_enforce::IccContext;
use separ_obs::json::Value;

/// What a [`Request::Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryWhat {
    /// The full current policy set (policy_io JSON).
    Policies,
    /// The current exploit scenarios, one description per entry.
    Exploits,
    /// The installed packages, in bundle order.
    Apps,
    /// Counts only.
    Summary,
}

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Install (or update) the package encoded in `bytes`.
    Install {
        /// Raw package bytes (hex-decoded from the wire).
        bytes: Vec<u8>,
        /// Client-side confirmation deadline.
        deadline_ms: Option<u64>,
    },
    /// Remove a package.
    Uninstall {
        /// The package to remove.
        package: String,
        /// Client-side confirmation deadline.
        deadline_ms: Option<u64>,
    },
    /// Toggle a permission.
    SetPermission {
        /// The target package.
        package: String,
        /// The permission to toggle.
        permission: String,
        /// `true` grants, `false` revokes.
        granted: bool,
        /// Client-side confirmation deadline.
        deadline_ms: Option<u64>,
    },
    /// Read the current analysis state.
    Query(QueryWhat),
    /// Evaluate one ICC event against the published policy set.
    Decide {
        /// The guarded event kind.
        event: PolicyEvent,
        /// The intercepted event's context.
        ctx: Box<IccContext>,
        /// How to answer a policy prompt (`true` = consent).
        prompt_allow: bool,
    },
    /// Service counters.
    Stats,
    /// Live operational metrics (rolling latency windows, gauges,
    /// counter deltas); `prometheus` selects text exposition.
    Metrics {
        /// `true` = Prometheus text exposition in the `body` field,
        /// `false` = structured JSON.
        prometheus: bool,
    },
    /// Liveness/readiness probe.
    Health,
    /// Upgrade this connection to a policy-delta push stream.
    Subscribe,
    /// Drain, persist, and exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, unknown
    /// commands, or missing/ill-typed fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| format!("bad json: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("missing \"cmd\"")?;
        let deadline_ms = v.get("deadline_ms").and_then(Value::as_u64);
        match cmd {
            "install" => {
                let hex = v
                    .get("bytes_hex")
                    .and_then(Value::as_str)
                    .ok_or("install: missing \"bytes_hex\"")?;
                Ok(Request::Install {
                    bytes: decode_hex(hex).ok_or("install: bad hex")?,
                    deadline_ms,
                })
            }
            "uninstall" => Ok(Request::Uninstall {
                package: str_field(&v, "package")?,
                deadline_ms,
            }),
            "set_permission" => Ok(Request::SetPermission {
                package: str_field(&v, "package")?,
                permission: str_field(&v, "permission")?,
                granted: v
                    .get("granted")
                    .and_then(Value::as_bool)
                    .ok_or("set_permission: missing \"granted\"")?,
                deadline_ms,
            }),
            "query" => {
                let what = match v.get("what").and_then(Value::as_str) {
                    Some("policies") => QueryWhat::Policies,
                    Some("exploits") => QueryWhat::Exploits,
                    Some("apps") => QueryWhat::Apps,
                    Some("summary") | None => QueryWhat::Summary,
                    Some(other) => return Err(format!("query: unknown \"what\": {other}")),
                };
                Ok(Request::Query(what))
            }
            "decide" => {
                let event_name = v
                    .get("event")
                    .and_then(Value::as_str)
                    .ok_or("decide: missing \"event\"")?;
                let event = PolicyEvent::from_name(event_name)
                    .ok_or_else(|| format!("decide: unknown event: {event_name}"))?;
                let mut tags = BTreeSet::new();
                if let Some(arr) = v.get("tags").and_then(Value::as_arr) {
                    for t in arr {
                        let name = t.as_str().ok_or("decide: tags must be strings")?;
                        let r = Resource::from_name(name)
                            .ok_or_else(|| format!("decide: unknown tag: {name}"))?;
                        tags.insert(r);
                    }
                }
                let opt = |key: &str| v.get(key).and_then(Value::as_str).map(String::from);
                let ctx = IccContext {
                    sender_app: str_field(&v, "sender_app")?,
                    sender_component: opt("sender_component").unwrap_or_default(),
                    receiver_app: opt("receiver_app"),
                    receiver_component: opt("receiver_component"),
                    action: opt("action"),
                    tags,
                };
                let prompt_allow = match v.get("prompt").and_then(Value::as_str) {
                    Some("allow") => true,
                    Some("deny") | None => false,
                    Some(other) => return Err(format!("decide: unknown prompt: {other}")),
                };
                Ok(Request::Decide {
                    event,
                    ctx: Box::new(ctx),
                    prompt_allow,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => {
                let prometheus = match v.get("format").and_then(Value::as_str) {
                    Some("prometheus") => true,
                    Some("json") | None => false,
                    Some(other) => return Err(format!("metrics: unknown format: {other}")),
                };
                Ok(Request::Metrics { prometheus })
            }
            "health" => Ok(Request::Health),
            "subscribe" => Ok(Request::Subscribe),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd: {other}")),
        }
    }

    /// Whether this request mutates the bundle (goes through the churn
    /// queue rather than being answered immediately).
    pub fn is_churn(&self) -> bool {
        matches!(
            self,
            Request::Install { .. } | Request::Uninstall { .. } | Request::SetPermission { .. }
        )
    }

    /// The request's kind label, as used for per-type latency metrics
    /// and the audit log.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Install { .. } => "install",
            Request::Uninstall { .. } => "uninstall",
            Request::SetPermission { .. } => "set_permission",
            Request::Query(_) => "query",
            Request::Decide { .. } => "decide",
            Request::Stats => "stats",
            Request::Metrics { .. } => "metrics",
            Request::Health => "health",
            Request::Subscribe => "subscribe",
            Request::Shutdown => "shutdown",
        }
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing \"{key}\""))
}

/// Decodes a lowercase/uppercase hex string; `None` on odd length or
/// non-hex bytes.
pub fn decode_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(hex.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

/// Encodes bytes as lowercase hex (the `bytes_hex` wire form).
pub fn encode_hex(bytes: &[u8]) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Builds an `{"ok":false,"error":...}` response line.
pub fn error_response(message: &str) -> String {
    let v = Value::Obj(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.into())),
    ]);
    let mut out = String::new();
    v.write_into(&mut out);
    out
}

/// Builds an `{"ok":true,...}` response line from extra fields.
pub fn ok_response(fields: Vec<(String, Value)>) -> String {
    let mut obj = Vec::with_capacity(fields.len() + 1);
    obj.push(("ok".into(), Value::Bool(true)));
    obj.extend(fields);
    let mut out = String::new();
    Value::Obj(obj).write_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(decode_hex(&encode_hex(&bytes)).unwrap(), bytes);
        assert_eq!(decode_hex("AbFf").unwrap(), vec![0xab, 0xff]);
        assert!(decode_hex("abc").is_none());
        assert!(decode_hex("zz").is_none());
    }

    #[test]
    fn parses_churn_requests() {
        let r = Request::parse(r#"{"cmd":"install","bytes_hex":"00ff","deadline_ms":250}"#)
            .expect("parses");
        match r {
            Request::Install { bytes, deadline_ms } => {
                assert_eq!(bytes, vec![0, 0xff]);
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(Request::parse(r#"{"cmd":"uninstall","package":"com.a"}"#)
            .expect("parses")
            .is_churn());
        let r = Request::parse(
            r#"{"cmd":"set_permission","package":"p","permission":"q","granted":false}"#,
        )
        .expect("parses");
        match r {
            Request::SetPermission { granted, .. } => assert!(!granted),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_decide_with_tags_and_prompt() {
        let line = concat!(
            r#"{"cmd":"decide","event":"icc_send","sender_app":"com.a","#,
            r#""sender_component":"LC;","action":"x","tags":["LOCATION"],"#,
            r#""prompt":"allow"}"#
        );
        match Request::parse(line).expect("parses") {
            Request::Decide {
                event,
                ctx,
                prompt_allow,
            } => {
                assert_eq!(event, PolicyEvent::IccSend);
                assert_eq!(ctx.sender_app, "com.a");
                assert!(ctx.tags.contains(&Resource::Location));
                assert!(prompt_allow);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_observability_requests() {
        match Request::parse(r#"{"cmd":"metrics"}"#).expect("parses") {
            Request::Metrics { prometheus } => assert!(!prometheus),
            other => panic!("wrong request: {other:?}"),
        }
        match Request::parse(r#"{"cmd":"metrics","format":"prometheus"}"#).expect("parses") {
            Request::Metrics { prometheus } => assert!(prometheus),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(Request::parse(r#"{"cmd":"metrics","format":"xml"}"#).is_err());
        assert!(matches!(
            Request::parse(r#"{"cmd":"health"}"#).expect("parses"),
            Request::Health
        ));
        let sub = Request::parse(r#"{"cmd":"subscribe"}"#).expect("parses");
        assert!(matches!(sub, Request::Subscribe));
        assert_eq!(sub.kind(), "subscribe");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"cmd":"launch_missiles"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"install"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"install","bytes_hex":"0"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"decide","event":"nope","sender_app":"a"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"query","what":"everything"}"#).is_err());
    }

    #[test]
    fn response_builders_emit_valid_json() {
        let ok = ok_response(vec![("n".into(), Value::Num(3.0))]);
        let v = Value::parse(&ok).expect("valid");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        let err = error_response("bad \"thing\"");
        let v = Value::parse(&err).expect("valid");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("bad \"thing\"")
        );
    }
}
