//! End-to-end daemon tests over the in-process [`Daemon::handle`]
//! interface — the same line-in/line-out surface the socket server
//! exposes, minus the socket.

use std::time::Duration;

use separ_core::policy_io;
use separ_enforce::probe_contexts;
use separ_obs::json::Value;
use separ_serve::protocol::encode_hex;
use separ_serve::{Daemon, ServeConfig};

fn package_hex(apk: &separ_dex::program::Apk) -> String {
    encode_hex(&separ_dex::codec::encode(apk))
}

fn serial_config() -> ServeConfig {
    ServeConfig {
        config: separ_core::SeparConfig::serial(),
        ..ServeConfig::default()
    }
}

fn parse_ok(line: &str) -> Value {
    let v = Value::parse(line).expect("response is valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "response not ok: {line}"
    );
    v
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("separ-serve-test-{}-{tag}", std::process::id()))
}

#[test]
fn churn_query_decide_round_trip() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    // Install the motivating bundle one request at a time.
    for apk in [
        separ_corpus::motivating::navigator_app(),
        separ_corpus::motivating::messenger_app(false),
        separ_corpus::motivating::malicious_app("+15550000"),
    ] {
        let line = format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, package_hex(&apk));
        let v = parse_ok(&daemon.handle(&line));
        let batch = v.get("batch").expect("batch summary");
        assert!(batch.get("ops").and_then(Value::as_u64).unwrap() >= 1);
    }
    // The bundle is vulnerable: policies and exploits exist.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(3));
    let policies = v.get("policies").and_then(Value::as_u64).expect("count");
    assert!(policies > 0, "motivating bundle synthesizes policies");
    assert!(v.get("exploits").and_then(Value::as_u64).unwrap() > 0);
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"apps"}"#));
    let apps = v.get("apps").and_then(Value::as_arr).expect("list");
    assert_eq!(apps.len(), 3);
    // Round-trip the published policy set through the wire form and
    // drive `decide` with contexts engineered to hit each policy: the
    // daemon must enforce what it just synthesized.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
    let mut json = String::new();
    v.get("policies")
        .expect("policy JSON")
        .write_into(&mut json);
    let policies = policy_io::from_json(&json).expect("valid policy JSON");
    let mut non_allow = 0;
    for (event, ctx) in probe_contexts(&policies) {
        let tags: Vec<String> = ctx
            .tags
            .iter()
            .map(|t| format!("\"{}\"", t.name()))
            .collect();
        let line = format!(
            concat!(
                r#"{{"cmd":"decide","event":"{}","sender_app":"{}","#,
                r#""sender_component":"{}","receiver_app":"{}","#,
                r#""receiver_component":"{}","action":"{}","#,
                r#""tags":[{}],"prompt":"deny"}}"#
            ),
            event.name(),
            ctx.sender_app,
            ctx.sender_component,
            ctx.receiver_app.as_deref().unwrap_or(""),
            ctx.receiver_component.as_deref().unwrap_or(""),
            ctx.action.as_deref().unwrap_or(""),
            tags.join(",")
        );
        let v = parse_ok(&daemon.handle(&line));
        let decision = v.get("decision").and_then(Value::as_str).expect("label");
        if decision != "allow" {
            non_allow += 1;
            assert!(v.get("policy_id").and_then(Value::as_u64).is_some());
        }
    }
    assert!(non_allow > 0, "published policies actually decide events");
    // Uninstalling the malicious app retires policies.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"uninstall","package":"com.innocent.wallpaper"}"#));
    assert!(v.get("batch").is_some());
    // Stats are coherent and nothing was dropped.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    assert!(v.get("requests").and_then(Value::as_u64).unwrap() >= 5);
    assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert!(v.get("coalescing_factor").and_then(Value::as_f64).unwrap() >= 1.0);
    let v = parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    assert_eq!(v.get("stopped").and_then(Value::as_bool), Some(true));
    assert!(daemon.is_stopped());
}

#[test]
fn malformed_requests_fail_without_harming_the_session() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    for bad in [
        "not json",
        r#"{"cmd":"install","bytes_hex":"zz"}"#,
        r#"{"cmd":"install","bytes_hex":"00"}"#, // undecodable package
        r#"{"cmd":"decide","event":"nope","sender_app":"a"}"#,
    ] {
        let v = Value::parse(&daemon.handle(bad)).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).is_some());
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(0));
}

#[test]
fn restart_recovers_the_session_without_reextraction() {
    let dir = tmp("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServeConfig {
        store_dir: Some(dir.clone()),
        ..serial_config()
    };
    let policies_before;
    {
        let daemon = Daemon::start(cfg()).expect("boots");
        assert_eq!(daemon.restored(), (0, 0));
        for apk in [
            separ_corpus::motivating::navigator_app(),
            separ_corpus::motivating::malicious_app("+15550000"),
        ] {
            let line = format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, package_hex(&apk));
            parse_ok(&daemon.handle(&line));
        }
        policies_before = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
        parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    }
    // A "new process": same store, fresh daemon.
    let daemon = Daemon::start(cfg()).expect("reboots");
    assert_eq!(daemon.restored(), (2, 0), "both models recovered");
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(2));
    // Recovery went through the store, not the extractor: the fresh
    // extraction cache was never consulted.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    let cache = v.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(0));
    // And the policy set is the same one, byte for byte.
    let policies_after = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
    let ser = |v: &Value| {
        let mut s = String::new();
        v.get("policies").expect("set").write_into(&mut s);
        s
    };
    assert_eq!(ser(&policies_before), ser(&policies_after));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shutdown guarantee: ops that were *accepted* (enqueued) before
/// shutdown are applied and persisted even if their requesters never
/// waited for confirmation — a drain, not a drop.
#[test]
fn shutdown_mid_batch_loses_no_accepted_request() {
    let dir = tmp("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServeConfig {
        store_dir: Some(dir.clone()),
        ..serial_config()
    };
    {
        let daemon = Daemon::start(cfg()).expect("boots");
        // `deadline_ms:0` returns the moment the op is accepted, so all
        // three land in the queue ahead of (or racing) the worker...
        for apk in [
            separ_corpus::motivating::navigator_app(),
            separ_corpus::motivating::messenger_app(false),
            separ_corpus::motivating::malicious_app("+15550000"),
        ] {
            let line = format!(
                r#"{{"cmd":"install","bytes_hex":"{}","deadline_ms":0}}"#,
                package_hex(&apk)
            );
            let v = parse_ok(&daemon.handle(&line));
            assert!(
                v.get("accepted").and_then(Value::as_bool) == Some(true)
                    || v.get("batch").is_some(),
                "op accepted either way"
            );
        }
        // ...and shutdown fires while they may still be queued. Drain
        // must apply every accepted op before the store syncs.
        parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    }
    let daemon = Daemon::start(cfg()).expect("reboots");
    assert_eq!(daemon.restored().0, 3, "every accepted install survived");
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"apps"}"#));
    let apps: Vec<&str> = v
        .get("apps")
        .and_then(Value::as_arr)
        .expect("list")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(apps.len(), 3);
    assert!(apps.contains(&"com.innocent.wallpaper"));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A burst of concurrent churn coalesces into fewer analysis passes
/// than requests (the tentpole's economy claim), with every request
/// answered.
#[test]
fn concurrent_churn_coalesces() {
    let daemon = std::sync::Arc::new(Daemon::start(serial_config()).expect("boots"));
    // Seed one app so permission toggles have a target.
    let line = format!(
        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
        package_hex(&separ_corpus::motivating::navigator_app())
    );
    parse_ok(&daemon.handle(&line));
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let daemon = std::sync::Arc::clone(&daemon);
            std::thread::spawn(move || {
                let line = format!(
                    concat!(
                        r#"{{"cmd":"set_permission","package":"com.navigator","#,
                        r#""permission":"android.permission.PERM_{}","granted":true}}"#
                    ),
                    i % 2
                );
                parse_ok(&daemon.handle(&line));
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    let ops = v.get("ops_coalesced").and_then(Value::as_u64).expect("ops");
    let batches = v.get("batches").and_then(Value::as_u64).expect("batches");
    assert_eq!(ops, 9, "every accepted op was applied");
    assert!(batches <= ops, "batching never exceeds one pass per op");
    assert_eq!(v.get("failed").and_then(Value::as_u64), Some(0));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    std::thread::sleep(Duration::from_millis(1));
}
