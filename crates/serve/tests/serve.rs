//! End-to-end daemon tests over the in-process [`Daemon::handle`]
//! interface — the same line-in/line-out surface the socket server
//! exposes, minus the socket.

use std::time::Duration;

use separ_core::policy_io;
use separ_enforce::probe_contexts;
use separ_obs::json::Value;
use separ_serve::protocol::encode_hex;
use separ_serve::{Daemon, PolicyDeltaEvent, ServeConfig};

fn package_hex(apk: &separ_dex::program::Apk) -> String {
    encode_hex(&separ_dex::codec::encode(apk))
}

fn serial_config() -> ServeConfig {
    ServeConfig {
        config: separ_core::SeparConfig::serial(),
        ..ServeConfig::default()
    }
}

fn parse_ok(line: &str) -> Value {
    let v = Value::parse(line).expect("response is valid JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "response not ok: {line}"
    );
    v
}

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("separ-serve-test-{}-{tag}", std::process::id()))
}

#[test]
fn churn_query_decide_round_trip() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    // Install the motivating bundle one request at a time.
    for apk in [
        separ_corpus::motivating::navigator_app(),
        separ_corpus::motivating::messenger_app(false),
        separ_corpus::motivating::malicious_app("+15550000"),
    ] {
        let line = format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, package_hex(&apk));
        let v = parse_ok(&daemon.handle(&line));
        let batch = v.get("batch").expect("batch summary");
        assert!(batch.get("ops").and_then(Value::as_u64).unwrap() >= 1);
    }
    // The bundle is vulnerable: policies and exploits exist.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(3));
    let policies = v.get("policies").and_then(Value::as_u64).expect("count");
    assert!(policies > 0, "motivating bundle synthesizes policies");
    assert!(v.get("exploits").and_then(Value::as_u64).unwrap() > 0);
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"apps"}"#));
    let apps = v.get("apps").and_then(Value::as_arr).expect("list");
    assert_eq!(apps.len(), 3);
    // Round-trip the published policy set through the wire form and
    // drive `decide` with contexts engineered to hit each policy: the
    // daemon must enforce what it just synthesized.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
    let mut json = String::new();
    v.get("policies")
        .expect("policy JSON")
        .write_into(&mut json);
    let policies = policy_io::from_json(&json).expect("valid policy JSON");
    let mut non_allow = 0;
    for (event, ctx) in probe_contexts(&policies) {
        let tags: Vec<String> = ctx
            .tags
            .iter()
            .map(|t| format!("\"{}\"", t.name()))
            .collect();
        let line = format!(
            concat!(
                r#"{{"cmd":"decide","event":"{}","sender_app":"{}","#,
                r#""sender_component":"{}","receiver_app":"{}","#,
                r#""receiver_component":"{}","action":"{}","#,
                r#""tags":[{}],"prompt":"deny"}}"#
            ),
            event.name(),
            ctx.sender_app,
            ctx.sender_component,
            ctx.receiver_app.as_deref().unwrap_or(""),
            ctx.receiver_component.as_deref().unwrap_or(""),
            ctx.action.as_deref().unwrap_or(""),
            tags.join(",")
        );
        let v = parse_ok(&daemon.handle(&line));
        let decision = v.get("decision").and_then(Value::as_str).expect("label");
        if decision != "allow" {
            non_allow += 1;
            assert!(v.get("policy_id").and_then(Value::as_u64).is_some());
        }
    }
    assert!(non_allow > 0, "published policies actually decide events");
    // Uninstalling the malicious app retires policies.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"uninstall","package":"com.innocent.wallpaper"}"#));
    assert!(v.get("batch").is_some());
    // Stats are coherent and nothing was dropped.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    assert!(v.get("requests").and_then(Value::as_u64).unwrap() >= 5);
    assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert!(v.get("coalescing_factor").and_then(Value::as_f64).unwrap() >= 1.0);
    let v = parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    assert_eq!(v.get("stopped").and_then(Value::as_bool), Some(true));
    assert!(daemon.is_stopped());
}

#[test]
fn malformed_requests_fail_without_harming_the_session() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    for bad in [
        "not json",
        r#"{"cmd":"install","bytes_hex":"zz"}"#,
        r#"{"cmd":"install","bytes_hex":"00"}"#, // undecodable package
        r#"{"cmd":"decide","event":"nope","sender_app":"a"}"#,
    ] {
        let v = Value::parse(&daemon.handle(bad)).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert!(v.get("error").and_then(Value::as_str).is_some());
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(0));
}

#[test]
fn restart_recovers_the_session_without_reextraction() {
    let dir = tmp("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServeConfig {
        store_dir: Some(dir.clone()),
        ..serial_config()
    };
    let policies_before;
    {
        let daemon = Daemon::start(cfg()).expect("boots");
        assert_eq!(daemon.restored(), (0, 0));
        for apk in [
            separ_corpus::motivating::navigator_app(),
            separ_corpus::motivating::malicious_app("+15550000"),
        ] {
            let line = format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, package_hex(&apk));
            parse_ok(&daemon.handle(&line));
        }
        policies_before = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
        parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    }
    // A "new process": same store, fresh daemon.
    let daemon = Daemon::start(cfg()).expect("reboots");
    assert_eq!(daemon.restored(), (2, 0), "both models recovered");
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    assert_eq!(v.get("apps").and_then(Value::as_u64), Some(2));
    // Recovery went through the store, not the extractor: the fresh
    // extraction cache was never consulted.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    let cache = v.get("cache").expect("cache stats");
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(0));
    // And the policy set is the same one, byte for byte.
    let policies_after = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"policies"}"#));
    let ser = |v: &Value| {
        let mut s = String::new();
        v.get("policies").expect("set").write_into(&mut s);
        s
    };
    assert_eq!(ser(&policies_before), ser(&policies_after));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shutdown guarantee: ops that were *accepted* (enqueued) before
/// shutdown are applied and persisted even if their requesters never
/// waited for confirmation — a drain, not a drop.
#[test]
fn shutdown_mid_batch_loses_no_accepted_request() {
    let dir = tmp("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServeConfig {
        store_dir: Some(dir.clone()),
        ..serial_config()
    };
    {
        let daemon = Daemon::start(cfg()).expect("boots");
        // `deadline_ms:0` returns the moment the op is accepted, so all
        // three land in the queue ahead of (or racing) the worker...
        for apk in [
            separ_corpus::motivating::navigator_app(),
            separ_corpus::motivating::messenger_app(false),
            separ_corpus::motivating::malicious_app("+15550000"),
        ] {
            let line = format!(
                r#"{{"cmd":"install","bytes_hex":"{}","deadline_ms":0}}"#,
                package_hex(&apk)
            );
            let v = parse_ok(&daemon.handle(&line));
            assert!(
                v.get("accepted").and_then(Value::as_bool) == Some(true)
                    || v.get("batch").is_some(),
                "op accepted either way"
            );
        }
        // ...and shutdown fires while they may still be queued. Drain
        // must apply every accepted op before the store syncs.
        parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    }
    let daemon = Daemon::start(cfg()).expect("reboots");
    assert_eq!(daemon.restored().0, 3, "every accepted install survived");
    let v = parse_ok(&daemon.handle(r#"{"cmd":"query","what":"apps"}"#));
    let apps: Vec<&str> = v
        .get("apps")
        .and_then(Value::as_arr)
        .expect("list")
        .iter()
        .filter_map(Value::as_str)
        .collect();
    assert_eq!(apps.len(), 3);
    assert!(apps.contains(&"com.innocent.wallpaper"));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A burst of concurrent churn coalesces into fewer analysis passes
/// than requests (the tentpole's economy claim), with every request
/// answered.
#[test]
fn concurrent_churn_coalesces() {
    let daemon = std::sync::Arc::new(Daemon::start(serial_config()).expect("boots"));
    // Seed one app so permission toggles have a target.
    let line = format!(
        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
        package_hex(&separ_corpus::motivating::navigator_app())
    );
    parse_ok(&daemon.handle(&line));
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let daemon = std::sync::Arc::clone(&daemon);
            std::thread::spawn(move || {
                let line = format!(
                    concat!(
                        r#"{{"cmd":"set_permission","package":"com.navigator","#,
                        r#""permission":"android.permission.PERM_{}","granted":true}}"#
                    ),
                    i % 2
                );
                parse_ok(&daemon.handle(&line));
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    let ops = v.get("ops_coalesced").and_then(Value::as_u64).expect("ops");
    let batches = v.get("batches").and_then(Value::as_u64).expect("batches");
    assert_eq!(ops, 9, "every accepted op was applied");
    assert!(batches <= ops, "batching never exceeds one pass per op");
    assert_eq!(v.get("failed").and_then(Value::as_u64), Some(0));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    std::thread::sleep(Duration::from_millis(1));
}

#[test]
fn metrics_endpoint_reports_rolling_latencies_and_totals() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    let line = format!(
        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
        package_hex(&separ_corpus::motivating::navigator_app())
    );
    parse_ok(&daemon.handle(&line));
    for _ in 0..50 {
        parse_ok(&daemon.handle(
            r#"{"cmd":"decide","event":"icc_send","sender_app":"com.navigator","prompt":"deny"}"#,
        ));
    }
    // The stats satellite: uptime next to the existing queue depth.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    assert!(v.get("uptime_ms").and_then(Value::as_u64).is_some());
    assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(0));
    // The metrics endpoint: live gauges, PDP totals, rolling windows.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"metrics"}"#));
    assert!(v.get("uptime_ms").and_then(Value::as_u64).is_some());
    assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(0));
    assert!(v.get("seq").and_then(Value::as_u64).unwrap() >= 1);
    assert!(v.get("last_batch_age_ms").and_then(Value::as_u64).is_some());
    let pdp = v.get("pdp").expect("pdp totals");
    assert_eq!(pdp.get("evaluations").and_then(Value::as_u64), Some(50));
    let evals = pdp.get("allowed").and_then(Value::as_u64).unwrap()
        + pdp.get("denied").and_then(Value::as_u64).unwrap();
    assert_eq!(evals, 50, "allowed + denied partition evaluations");
    let rolling = v.get("rolling").expect("rolling windows");
    let decide = rolling.get("decide").expect("decide is tracked");
    for window in ["10s", "1m", "5m"] {
        let w = decide.get(window).expect("window");
        assert_eq!(w.get("count").and_then(Value::as_u64), Some(50));
        assert!(w.get("p50_us").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(
            w.get("p99_us").and_then(Value::as_f64).unwrap()
                >= w.get("p50_us").and_then(Value::as_f64).unwrap()
        );
    }
    assert!(rolling.get("install").is_some());
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
}

/// Line-by-line structural validation of the Prometheus exposition,
/// plus family-order stability across scrapes.
#[test]
fn prometheus_exposition_is_valid_and_stable() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    parse_ok(
        &daemon
            .handle(r#"{"cmd":"decide","event":"icc_send","sender_app":"com.a","prompt":"deny"}"#),
    );
    let scrape = || {
        let v = parse_ok(&daemon.handle(r#"{"cmd":"metrics","format":"prometheus"}"#));
        assert_eq!(v.get("format").and_then(Value::as_str), Some("prometheus"));
        v.get("body")
            .and_then(Value::as_str)
            .expect("body")
            .to_string()
    };
    let families = |body: &str| -> Vec<String> {
        let mut declared = Vec::new();
        let mut helped = std::collections::BTreeSet::new();
        for line in body.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().expect("family name");
                helped.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().expect("family name").to_string();
                let kind = it.next().expect("family kind");
                assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line}");
                assert!(helped.contains(&name), "HELP precedes TYPE: {line}");
                declared.push(name);
            } else {
                // A sample: `name{labels} value` or `name value`, with
                // the metric belonging to a declared family.
                let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
                let name = name_labels.split('{').next().expect("metric name");
                assert!(
                    value.parse::<f64>().is_ok() || value == "+Inf",
                    "parsable value: {line}"
                );
                let family = declared.iter().any(|f| {
                    name == f
                        || name
                            .strip_prefix(f.as_str())
                            .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count"))
                });
                assert!(family, "sample outside any declared family: {line}");
                if let Some(labels) = name_labels.strip_prefix(name) {
                    if !labels.is_empty() {
                        assert!(labels.starts_with('{') && labels.ends_with('}'), "{line}");
                    }
                }
            }
        }
        declared
    };
    let first = scrape();
    let order_a = families(&first);
    assert!(order_a.iter().any(|f| f == "separ_uptime_seconds"));
    assert!(order_a.iter().any(|f| f == "separ_pdp_evaluations_total"));
    assert!(order_a.iter().any(|f| f == "separ_request_latency_seconds"));
    // Same state, scraped again: family order is identical (values such
    // as uptime may move, the shape may not).
    let order_b = families(&scrape());
    assert_eq!(order_a, order_b, "exposition ordering is stable");
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
}

/// The tentpole's subscription guarantee: every applied batch is
/// delivered to every subscriber exactly once, in sequence order, even
/// while churn lands from many threads at once.
#[test]
fn subscribers_see_every_batch_exactly_once_in_order() {
    let daemon = std::sync::Arc::new(Daemon::start(serial_config()).expect("boots"));
    let subs: Vec<_> = (0..2).map(|_| daemon.subscribe()).collect();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let daemon = std::sync::Arc::clone(&daemon);
            std::thread::spawn(move || {
                let line = if i == 0 {
                    format!(
                        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
                        package_hex(&separ_corpus::motivating::navigator_app())
                    )
                } else {
                    format!(
                        concat!(
                            r#"{{"cmd":"set_permission","package":"com.navigator","#,
                            r#""permission":"android.permission.PERM_{}","granted":true}}"#
                        ),
                        i
                    )
                };
                let v = Value::parse(&daemon.handle(&line)).expect("valid");
                // Toggles racing ahead of the install may fail; the
                // batches that *were* applied are what subscribers see.
                v.get("ok").and_then(Value::as_bool) == Some(true)
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"stats"}"#));
    let batches = v.get("batches").and_then(Value::as_u64).expect("batches");
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    // Drain each subscription to disconnection and check the stream.
    for sub in subs {
        let mut seqs = Vec::new();
        while let Ok(line) = sub.recv_timeout(Duration::from_secs(5)) {
            let ev = PolicyDeltaEvent::parse(&line).expect("policy_delta event");
            seqs.push(ev.seq);
        }
        assert_eq!(
            seqs,
            (1..=batches).collect::<Vec<_>>(),
            "every batch exactly once, in order"
        );
    }
}

/// A subscriber that stops draining is disconnected instead of
/// stalling the analysis worker.
#[test]
fn lagging_subscribers_are_dropped_not_blocking() {
    let cfg = ServeConfig {
        subscriber_buffer: 1,
        ..serial_config()
    };
    let daemon = Daemon::start(cfg).expect("boots");
    let laggard = daemon.subscribe();
    // Three sequential batches against a buffer of one: the second
    // publish finds the buffer full and drops the subscriber.
    for i in 0..3 {
        let apk = separ_corpus::motivating::messenger_app(i % 2 == 0);
        let line = format!(r#"{{"cmd":"install","bytes_hex":"{}"}}"#, package_hex(&apk));
        parse_ok(&daemon.handle(&line));
    }
    let v = parse_ok(&daemon.handle(r#"{"cmd":"metrics"}"#));
    assert_eq!(v.get("subscribers").and_then(Value::as_u64), Some(0));
    assert!(
        v.get("subscribers_dropped")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    // The laggard still drains its buffered prefix (in order), then
    // observes the disconnect — and can tell from the seq gap vs
    // `metrics.seq` that it must re-sync.
    let first = laggard
        .recv_timeout(Duration::from_secs(5))
        .expect("buffered");
    assert_eq!(PolicyDeltaEvent::parse(&first).expect("event").seq, 1);
    assert!(laggard.recv_timeout(Duration::from_millis(200)).is_err());
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
}

/// The audit log records every decide and bundle mutation as schema-
/// complete JSONL.
#[test]
fn audit_log_captures_decides_and_churn() {
    let dir = tmp("audit");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("audit.log");
    let cfg = ServeConfig {
        audit_path: Some(path.clone()),
        ..serial_config()
    };
    let daemon = Daemon::start(cfg).expect("boots");
    let line = format!(
        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
        package_hex(&separ_corpus::motivating::navigator_app())
    );
    parse_ok(&daemon.handle(&line));
    parse_ok(&daemon.handle(
        r#"{"cmd":"decide","event":"icc_send","sender_app":"com.navigator","prompt":"deny"}"#,
    ));
    // A failed churn is audited too (undecodable package).
    let failed = daemon.handle(r#"{"cmd":"install","bytes_hex":"00"}"#);
    assert!(failed.starts_with("{\"ok\":false"));
    // Reads (query/stats/metrics) are NOT audited.
    parse_ok(&daemon.handle(r#"{"cmd":"query","what":"summary"}"#));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    let text = std::fs::read_to_string(&path).expect("audit log exists");
    let records: Vec<Value> = text
        .lines()
        .map(|l| Value::parse(l).expect("valid JSONL"))
        .collect();
    assert_eq!(records.len(), 3, "install + decide + failed install");
    for r in &records {
        assert!(r.get("ts_ms").and_then(Value::as_u64).unwrap() > 0);
        assert!(r.get("req_id").and_then(Value::as_u64).unwrap() > 0);
        assert!(r.get("kind").and_then(Value::as_str).is_some());
        assert!(r.get("ok").and_then(Value::as_bool).is_some());
        assert!(r.get("latency_us").and_then(Value::as_u64).is_some());
    }
    let install = &records[0];
    assert_eq!(install.get("kind").and_then(Value::as_str), Some("install"));
    assert_eq!(
        install.get("package").and_then(Value::as_str),
        Some("com.navigator")
    );
    let decide = &records[1];
    assert_eq!(decide.get("kind").and_then(Value::as_str), Some("decide"));
    assert!(decide.get("decision").and_then(Value::as_str).is_some());
    let failed = &records[2];
    assert_eq!(failed.get("ok").and_then(Value::as_bool), Some(false));
    assert!(failed.get("error").and_then(Value::as_str).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_tracks_liveness_and_batch_age() {
    let daemon = Daemon::start(serial_config()).expect("boots");
    let v = parse_ok(&daemon.handle(r#"{"cmd":"health"}"#));
    assert_eq!(v.get("ready").and_then(Value::as_bool), Some(true));
    assert_eq!(v.get("live").and_then(Value::as_bool), Some(true));
    assert!(matches!(v.get("last_batch_age_ms"), Some(Value::Null)));
    assert_eq!(v.get("seq").and_then(Value::as_u64), Some(0));
    let line = format!(
        r#"{{"cmd":"install","bytes_hex":"{}"}}"#,
        package_hex(&separ_corpus::motivating::navigator_app())
    );
    parse_ok(&daemon.handle(&line));
    let v = parse_ok(&daemon.handle(r#"{"cmd":"health"}"#));
    assert!(v.get("last_batch_age_ms").and_then(Value::as_u64).is_some());
    assert_eq!(v.get("seq").and_then(Value::as_u64), Some(1));
    parse_ok(&daemon.handle(r#"{"cmd":"shutdown"}"#));
    // After drain the worker is gone: not live, not ready.
    let v = parse_ok(&daemon.handle(r#"{"cmd":"health"}"#));
    assert_eq!(v.get("live").and_then(Value::as_bool), Some(false));
    assert_eq!(v.get("ready").and_then(Value::as_bool), Some(false));
}
