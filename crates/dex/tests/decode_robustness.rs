//! Decoder robustness: hostile bytes must yield `DexError`, never a
//! panic, arithmetic overflow, or hang — and structurally malformed
//! in-memory packages must not survive an encode/decode round trip.

use proptest::prelude::*;

use separ_dex::build::ApkBuilder;
use separ_dex::codec::{decode, encode};
use separ_dex::instr::{Instr, InvokeKind, Reg};
use separ_dex::manifest::{ComponentDecl, ComponentKind};
use separ_dex::program::{Apk, Class, Dex, Method};
use separ_dex::refs::{FieldId, MethodId, StrId, TypeId};

fn small_apk() -> Apk {
    let mut b = ApkBuilder::new("com.example.robust");
    b.uses_permission("android.permission.INTERNET");
    b.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
    let mut cb = b.class("LMain;");
    let mut m = cb.method("onCreate", 2, false, true);
    let v = m.reg();
    let s = m.reg();
    m.const_int(v, 7);
    m.const_string(s, "hello");
    m.invoke_static("LMain;", "onCreate", &[v], true);
    m.move_result(v);
    m.ret(v);
    m.finish();
    cb.finish();
    b.finish()
}

/// A well-formed host for hand-planted malformed methods.
fn host_apk(method: Method) -> Apk {
    let mut dex = Dex::new();
    let ty = dex.pools.ty("LHost;");
    dex.classes.push(Class {
        ty,
        super_ty: None,
        fields: vec![],
        methods: vec![method],
    });
    Apk::new(separ_dex::manifest::Manifest::new("com.bad"), dex)
}

fn method(code: Vec<Instr>) -> Method {
    Method {
        name: StrId::from_index(0),
        num_registers: 2,
        num_params: 0,
        is_static: true,
        returns_value: false,
        code,
    }
}

#[test]
fn every_strict_prefix_is_rejected() {
    let bytes = encode(&small_apk());
    for n in 0..bytes.len() {
        assert!(
            decode(&bytes[..n]).is_err(),
            "prefix of {n}/{} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn out_of_range_pool_indices_do_not_round_trip() {
    // The encoder writes raw indices; the decoder must reject every kind
    // of dangling reference rather than hand it to the analyses.
    let cases: Vec<(&str, Apk)> = vec![
        (
            "string id in const-string",
            host_apk(method(vec![
                Instr::ConstString {
                    dst: Reg(0),
                    value: StrId::from_index(999),
                },
                Instr::ReturnVoid,
            ])),
        ),
        (
            "type id in new-instance",
            host_apk(method(vec![
                Instr::NewInstance {
                    dst: Reg(0),
                    class: TypeId::from_index(999),
                },
                Instr::ReturnVoid,
            ])),
        ),
        (
            "method id in invoke",
            host_apk(method(vec![
                Instr::Invoke {
                    kind: InvokeKind::Static,
                    method: MethodId::from_index(999),
                    args: vec![],
                },
                Instr::ReturnVoid,
            ])),
        ),
        (
            "field id in sget",
            host_apk(method(vec![
                Instr::SGet {
                    dst: Reg(0),
                    field: FieldId::from_index(999),
                },
                Instr::ReturnVoid,
            ])),
        ),
        ("method name id", {
            let mut m = method(vec![Instr::ReturnVoid]);
            m.name = StrId::from_index(999);
            host_apk(m)
        }),
        ("class type id", {
            let mut apk = host_apk(method(vec![Instr::ReturnVoid]));
            apk.dex.classes[0].ty = TypeId::from_index(999);
            apk
        }),
    ];
    for (what, apk) in cases {
        let bytes = encode(&apk);
        assert!(
            decode(&bytes).is_err(),
            "out-of-range {what} must be rejected by the decoder"
        );
    }
}

#[test]
fn out_of_range_targets_and_registers_do_not_round_trip() {
    let branch = host_apk(method(vec![Instr::Goto { target: 999 }]));
    assert!(decode(&encode(&branch)).is_err(), "dangling branch target");
    let reg = host_apk(method(vec![
        Instr::ConstInt {
            dst: Reg(999),
            value: 0,
        },
        Instr::ReturnVoid,
    ]));
    assert!(decode(&encode(&reg)).is_err(), "register outside the frame");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mutated_packages_never_panic(
        flips in prop::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 1..16),
    ) {
        let mut bytes = encode(&small_apk()).to_vec();
        for (idx, xor) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= xor;
        }
        // Ok (mutation missed the checksum-protected payload semantics)
        // or Err — but never a panic, overflow, or hang.
        let _ = decode(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let _ = decode(&bytes);
    }

    #[test]
    fn sdex_framed_garbage_never_panics(payload in prop::collection::vec(any::<u8>(), 0..256)) {
        // A correct header *and checksum* around arbitrary payload bytes
        // drives the corruption past the integrity checks and into the
        // structure decoders, which must still fail cleanly.
        let mut bytes = b"SDEX".to_vec();
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        let _ = decode(&bytes);
    }
}

/// FNV-1a, matching the container's integrity hash.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
