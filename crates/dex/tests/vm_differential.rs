//! Differential testing of the interpreter: random register programs are
//! executed both by the VM and by an independent reference evaluator
//! written directly in the test; results must agree. Exercises arithmetic,
//! moves, constants and forward branches, through the full builder →
//! binary codec → decode → execute path.

use proptest::prelude::*;

use separ_dex::build::ApkBuilder;
use separ_dex::codec::{decode, encode};
use separ_dex::vm::{Heap, NopSyscalls, Value, Vm};
use separ_dex::BinOp;

const REGS: u16 = 4;

/// One step of the generated program.
#[derive(Clone, Debug)]
enum Step {
    ConstInt {
        dst: u16,
        value: i64,
    },
    Move {
        dst: u16,
        src: u16,
    },
    Bin {
        op: u8,
        dst: u16,
        lhs: u16,
        rhs: u16,
    },
    /// `if-eqz reg: skip the next `skip` steps` (forward only).
    SkipIfZero {
        reg: u16,
        skip: u8,
    },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..REGS, -100i64..100).prop_map(|(dst, value)| Step::ConstInt { dst, value }),
        (0..REGS, 0..REGS).prop_map(|(dst, src)| Step::Move { dst, src }),
        (0u8..4, 0..REGS, 0..REGS, 0..REGS).prop_map(|(op, dst, lhs, rhs)| Step::Bin {
            op,
            dst,
            lhs,
            rhs
        }),
        (0..REGS, 1u8..4).prop_map(|(reg, skip)| Step::SkipIfZero { reg, skip }),
    ]
}

/// Independent reference evaluation (no VM code involved).
fn reference_eval(steps: &[Step]) -> i64 {
    let mut regs = [0i64; REGS as usize];
    let mut i = 0usize;
    while i < steps.len() {
        match &steps[i] {
            Step::ConstInt { dst, value } => regs[*dst as usize] = *value,
            Step::Move { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Step::Bin { op, dst, lhs, rhs } => {
                let (a, b) = (regs[*lhs as usize], regs[*rhs as usize]);
                regs[*dst as usize] = match op % 4 {
                    0 => a.wrapping_add(b),
                    1 => a.wrapping_sub(b),
                    2 => a.wrapping_mul(b),
                    _ => i64::from(a == b),
                };
            }
            Step::SkipIfZero { reg, skip } => {
                if regs[*reg as usize] == 0 {
                    i += *skip as usize;
                }
            }
        }
        i += 1;
    }
    regs[0]
}

/// Assemble the same program through the builder DSL.
fn assemble(steps: &[Step]) -> separ_dex::Apk {
    use separ_dex::instr::Reg;
    let mut apk = ApkBuilder::new("diff.test");
    let mut cb = apk.class("LDiff;");
    let mut m = cb.method("run", 0, true, true);
    let regs: Vec<Reg> = (0..REGS).map(|_| m.reg()).collect();
    // Zero-initialize, matching the reference evaluator's starting state
    // (VM registers otherwise start as Null, not Int(0)).
    for &r in &regs {
        m.const_int(r, 0);
    }
    // Pre-create one label per step position plus the end.
    let labels: Vec<_> = (0..=steps.len()).map(|_| m.new_label()).collect();
    for (i, step) in steps.iter().enumerate() {
        m.bind(labels[i]);
        match step {
            Step::ConstInt { dst, value } => {
                m.const_int(regs[*dst as usize], *value);
            }
            Step::Move { dst, src } => {
                m.mov(regs[*dst as usize], regs[*src as usize]);
            }
            Step::Bin { op, dst, lhs, rhs } => {
                let op = match op % 4 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    _ => BinOp::CmpEq,
                };
                m.binop(
                    op,
                    regs[*dst as usize],
                    regs[*lhs as usize],
                    regs[*rhs as usize],
                );
            }
            Step::SkipIfZero { reg, skip } => {
                let target = (i + 1 + *skip as usize).min(steps.len());
                m.if_eqz(regs[*reg as usize], labels[target]);
            }
        }
    }
    m.bind(labels[steps.len()]);
    m.ret(regs[0]);
    m.finish();
    cb.finish();
    apk.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vm_agrees_with_reference(steps in prop::collection::vec(arb_step(), 0..40)) {
        let expected = reference_eval(&steps);
        let apk = assemble(&steps);
        // Through the binary codec, like a real deployment.
        let decoded = decode(&encode(&apk)).expect("round-trips");
        let mut vm = Vm::new(&decoded.dex);
        let mut heap = Heap::new();
        let got = vm
            .invoke(&mut heap, &mut NopSyscalls, "LDiff;", "run", vec![])
            .expect("program terminates");
        prop_assert_eq!(got, Some(Value::Int(expected)));
    }
}
