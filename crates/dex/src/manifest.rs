//! Application manifests: components, intent filters and permissions.
//!
//! The analog of `AndroidManifest.xml` — the architectural information the
//! paper's AME reads first: declared components, their kinds, exported
//! flags, enforced permissions and statically declared intent filters.

/// The four Android component kinds.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ComponentKind {
    /// A UI screen.
    Activity,
    /// A background service.
    Service,
    /// A broadcast receiver.
    Receiver,
    /// A content provider (may not declare intent filters).
    Provider,
}

impl ComponentKind {
    /// All kinds, in declaration order.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Activity,
        ComponentKind::Service,
        ComponentKind::Receiver,
        ComponentKind::Provider,
    ];

    /// Stable tag for codecs and display.
    pub fn tag(self) -> u8 {
        match self {
            ComponentKind::Activity => 0,
            ComponentKind::Service => 1,
            ComponentKind::Receiver => 2,
            ComponentKind::Provider => 3,
        }
    }

    /// Inverse of [`ComponentKind::tag`].
    pub fn from_tag(tag: u8) -> Option<ComponentKind> {
        ComponentKind::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::Receiver => "receiver",
            ComponentKind::Provider => "provider",
        };
        f.write_str(s)
    }
}

/// A statically declared intent filter.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntentFilterDecl {
    /// Accepted actions (must be non-empty to match any implicit intent).
    pub actions: Vec<String>,
    /// Accepted categories.
    pub categories: Vec<String>,
    /// Accepted MIME data types.
    pub data_types: Vec<String>,
    /// Accepted data schemes.
    pub data_schemes: Vec<String>,
}

impl IntentFilterDecl {
    /// Creates a filter accepting the given actions.
    pub fn for_actions<I, S>(actions: I) -> IntentFilterDecl
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        IntentFilterDecl {
            actions: actions.into_iter().map(Into::into).collect(),
            ..IntentFilterDecl::default()
        }
    }
}

/// A component entry in the manifest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentDecl {
    /// Class descriptor implementing the component
    /// (e.g. `"Lcom/app/MainActivity;"`).
    pub class: String,
    /// Component kind.
    pub kind: ComponentKind,
    /// The `android:exported` attribute, if present.
    pub exported: Option<bool>,
    /// Permission callers must hold to access this component, if any.
    pub permission: Option<String>,
    /// Statically declared intent filters.
    pub intent_filters: Vec<IntentFilterDecl>,
}

impl ComponentDecl {
    /// Creates a component with no filters and default export rules.
    pub fn new(class: impl Into<String>, kind: ComponentKind) -> ComponentDecl {
        ComponentDecl {
            class: class.into(),
            kind,
            exported: None,
            permission: None,
            intent_filters: Vec::new(),
        }
    }

    /// Android's effective-export rule: a component is reachable from other
    /// apps if `exported` is explicitly true, or it declares at least one
    /// intent filter and `exported` is not explicitly false.
    pub fn is_effectively_exported(&self) -> bool {
        match self.exported {
            Some(explicit) => explicit,
            None => !self.intent_filters.is_empty(),
        }
    }
}

/// An application manifest.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Manifest {
    /// The application package (e.g. `"com.example.navigator"`).
    pub package: String,
    /// Permissions the app requests (granted at install time).
    pub uses_permissions: Vec<String>,
    /// Custom permissions the app defines.
    pub defines_permissions: Vec<String>,
    /// Declared components.
    pub components: Vec<ComponentDecl>,
}

impl Manifest {
    /// Creates an empty manifest for a package.
    pub fn new(package: impl Into<String>) -> Manifest {
        Manifest {
            package: package.into(),
            ..Manifest::default()
        }
    }

    /// Finds a component by its class descriptor.
    pub fn component(&self, class: &str) -> Option<&ComponentDecl> {
        self.components.iter().find(|c| c.class == class)
    }

    /// Returns `true` if the app holds the given permission.
    pub fn has_permission(&self, permission: &str) -> bool {
        self.uses_permissions.iter().any(|p| p == permission)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_rules_follow_android_semantics() {
        let mut c = ComponentDecl::new("LFoo;", ComponentKind::Service);
        assert!(!c.is_effectively_exported(), "no filters, no flag");
        c.intent_filters
            .push(IntentFilterDecl::for_actions(["a.b.SHOW"]));
        assert!(c.is_effectively_exported(), "filters imply exported");
        c.exported = Some(false);
        assert!(!c.is_effectively_exported(), "explicit flag wins");
        c.exported = Some(true);
        c.intent_filters.clear();
        assert!(c.is_effectively_exported());
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in ComponentKind::ALL {
            assert_eq!(ComponentKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ComponentKind::from_tag(9), None);
    }

    #[test]
    fn manifest_lookup() {
        let mut m = Manifest::new("com.example");
        m.components
            .push(ComponentDecl::new("LMain;", ComponentKind::Activity));
        m.uses_permissions
            .push("android.permission.SEND_SMS".into());
        assert!(m.component("LMain;").is_some());
        assert!(m.component("LOther;").is_none());
        assert!(m.has_permission("android.permission.SEND_SMS"));
        assert!(!m.has_permission("android.permission.CAMERA"));
    }
}
