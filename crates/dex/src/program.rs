//! Programs: classes, methods, fields, and the APK container.

use std::collections::HashMap;

use crate::instr::Instr;
use crate::manifest::Manifest;
use crate::refs::{Pools, StrId, TypeId};

/// A method definition with its code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Method {
    /// Method name (string-pool entry).
    pub name: StrId,
    /// Total registers in the frame.
    pub num_registers: u16,
    /// Number of parameters; they arrive in the *last* `num_params`
    /// registers, receiver (if any) first among them.
    pub num_params: u8,
    /// Whether this is a static method (no receiver among the params).
    pub is_static: bool,
    /// Whether the method returns a value.
    pub returns_value: bool,
    /// The instruction stream.
    pub code: Vec<Instr>,
}

impl Method {
    /// The register holding parameter `i` (receiver counts as parameter 0
    /// for instance methods).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_params`.
    pub fn param_reg(&self, i: u8) -> crate::instr::Reg {
        assert!(i < self.num_params, "parameter index out of range");
        crate::instr::Reg(self.num_registers - u16::from(self.num_params) + u16::from(i))
    }
}

/// A field definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDef {
    /// Field name (string-pool entry).
    pub name: StrId,
    /// Whether the field is static.
    pub is_static: bool,
}

/// A class definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Class {
    /// This class's type-pool entry.
    pub ty: TypeId,
    /// Superclass, if any (e.g. `Landroid/app/Service;`).
    pub super_ty: Option<TypeId>,
    /// Field definitions.
    pub fields: Vec<FieldDef>,
    /// Method definitions.
    pub methods: Vec<Method>,
}

/// A dex-like code unit: pools plus class definitions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dex {
    /// The constant pools.
    pub pools: Pools,
    /// Defined classes.
    pub classes: Vec<Class>,
}

impl Dex {
    /// Creates an empty unit.
    pub fn new() -> Dex {
        Dex::default()
    }

    /// Finds a class by type id.
    pub fn class(&self, ty: TypeId) -> Option<&Class> {
        self.classes.iter().find(|c| c.ty == ty)
    }

    /// Finds a class by descriptor.
    pub fn class_by_name(&self, descriptor: &str) -> Option<&Class> {
        let ty = self.pools.find_type(descriptor)?;
        self.class(ty)
    }

    /// Finds a defined method by class type and name.
    pub fn method(&self, ty: TypeId, name: &str) -> Option<&Method> {
        self.class(ty)?
            .methods
            .iter()
            .find(|m| self.pools.str_at(m.name) == name)
    }

    /// Resolves a method by walking up the superclass chain from `ty`.
    ///
    /// Returns the defining class and the method.
    pub fn resolve_method(&self, ty: TypeId, name: &str) -> Option<(TypeId, &Method)> {
        let mut current = Some(ty);
        // Bound the walk: a chain longer than the class count means a
        // superclass cycle (hostile input), not a deeper hierarchy.
        let mut hops = 0;
        while let Some(t) = current {
            if hops > self.classes.len() {
                return None;
            }
            hops += 1;
            if let Some(m) = self.method(t, name) {
                return Some((t, m));
            }
            current = self.class(t).and_then(|c| c.super_ty);
        }
        None
    }

    /// Total number of instructions across all methods (a size measure).
    pub fn code_size(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| &c.methods)
            .map(|m| m.code.len())
            .sum()
    }

    /// An index from class descriptor to class position, for bulk lookups.
    pub fn class_index(&self) -> HashMap<&str, usize> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (self.pools.type_at(c.ty), i))
            .collect()
    }
}

/// An application package: manifest + code, the unit AME consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Apk {
    /// The manifest.
    pub manifest: Manifest,
    /// The code unit.
    pub dex: Dex,
}

impl Apk {
    /// Creates a package from parts.
    pub fn new(manifest: Manifest, dex: Dex) -> Apk {
        Apk { manifest, dex }
    }

    /// The application package name.
    pub fn package(&self) -> &str {
        &self.manifest.package
    }

    /// Approximate size in "instructions + declarations", used by the
    /// Figure-5 experiment as the app-size axis.
    pub fn size_metric(&self) -> usize {
        self.dex.code_size() + self.manifest.components.len() * 10 + self.dex.classes.len() * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Reg};

    fn sample_dex() -> Dex {
        let mut dex = Dex::new();
        let base = dex.pools.ty("LBase;");
        let derived = dex.pools.ty("LDerived;");
        let run = dex.pools.str("run");
        let only_base = dex.pools.str("onlyBase");
        dex.classes.push(Class {
            ty: base,
            super_ty: None,
            fields: vec![],
            methods: vec![
                Method {
                    name: run,
                    num_registers: 1,
                    num_params: 1,
                    is_static: false,
                    returns_value: false,
                    code: vec![Instr::ReturnVoid],
                },
                Method {
                    name: only_base,
                    num_registers: 1,
                    num_params: 1,
                    is_static: false,
                    returns_value: false,
                    code: vec![Instr::ReturnVoid],
                },
            ],
        });
        dex.classes.push(Class {
            ty: derived,
            super_ty: Some(base),
            fields: vec![],
            methods: vec![Method {
                name: run,
                num_registers: 2,
                num_params: 1,
                is_static: false,
                returns_value: false,
                code: vec![Instr::Nop, Instr::ReturnVoid],
            }],
        });
        dex
    }

    #[test]
    fn method_resolution_walks_superclasses() {
        let dex = sample_dex();
        let derived = dex.pools.find_type("LDerived;").expect("type");
        let (def_ty, m) = dex.resolve_method(derived, "run").expect("found");
        assert_eq!(def_ty, derived, "override wins");
        assert_eq!(m.code.len(), 2);
        let (def_ty2, _) = dex.resolve_method(derived, "onlyBase").expect("inherited");
        assert_eq!(dex.pools.type_at(def_ty2), "LBase;");
        assert!(dex.resolve_method(derived, "missing").is_none());
    }

    #[test]
    fn param_registers_are_trailing() {
        let m = Method {
            name: StrId::from_index(0),
            num_registers: 5,
            num_params: 2,
            is_static: true,
            returns_value: false,
            code: vec![],
        };
        assert_eq!(m.param_reg(0), Reg(3));
        assert_eq!(m.param_reg(1), Reg(4));
    }

    #[test]
    fn code_size_sums_methods() {
        let dex = sample_dex();
        assert_eq!(dex.code_size(), 4);
    }
}
