//! **separ-dex** — the bytecode substrate of the SEPAR reproduction.
//!
//! The SEPAR paper analyzes Android APKs: Dalvik bytecode plus a manifest.
//! Neither real APKs nor a Dalvik toolchain are available here, so this
//! crate rebuilds the closest synthetic equivalent from scratch:
//!
//! * a register-based instruction set modelled on Dalvik ([`instr`]),
//!   with constant pools ([`refs`]) and class/method structure
//!   ([`program`]);
//! * manifests with components, intent filters and permissions
//!   ([`manifest`]);
//! * a binary container format with checksums, encoded and decoded byte
//!   for byte ([`codec`]) — the model extractor consumes these bytes, so
//!   static analysis runs on real binaries, not in-memory ASTs;
//! * a builder DSL for assembling apps programmatically ([`build`]);
//! * an interpreter used by the policy-enforcement runtime ([`vm`]).
//!
//! # Examples
//!
//! ```
//! use separ_dex::build::ApkBuilder;
//! use separ_dex::codec::{decode, encode};
//!
//! let mut builder = ApkBuilder::new("com.example.app");
//! let mut class = builder.class("Lcom/example/Main;");
//! let mut method = class.method("onCreate", 1, false, false);
//! method.ret_void();
//! method.finish();
//! class.finish();
//! let apk = builder.finish();
//!
//! let bytes = encode(&apk);
//! let decoded = decode(&bytes)?;
//! assert_eq!(decoded.package(), "com.example.app");
//! # Ok::<(), separ_dex::error::DexError>(())
//! ```
#![warn(missing_docs)]

pub mod build;
pub mod codec;
pub mod disasm;
pub mod error;
pub mod instr;
pub mod manifest;
pub mod program;
pub mod refs;
pub mod verify;
pub mod vm;

pub use build::ApkBuilder;
pub use error::{DexError, VmError};
pub use instr::{BinOp, Instr, InvokeKind, Reg};
pub use manifest::{ComponentDecl, ComponentKind, IntentFilterDecl, Manifest};
pub use program::{Apk, Class, Dex, FieldDef, Method};
pub use refs::{FieldId, FieldRef, MethodId, MethodRef, Pools, StrId, TypeId};
pub use verify::{Defect, DefectKind, DefectScope, Severity};
pub use vm::{Heap, NopSyscalls, ObjRef, Syscalls, Value, Vm};
