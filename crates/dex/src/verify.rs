//! Static bytecode verification over decoded sdex programs.
//!
//! Dalvik's bytecode verifier gives Android static analyses their
//! well-formedness guarantees for free; the sdex substrate gets the same
//! guarantees from this module. [`verify_dex`] walks every class and method
//! and reports structured [`Defect`]s:
//!
//! * **register bounds** — every register a method touches fits inside its
//!   declared frame, and the declared parameters do too;
//! * **pool indices** — every string/type/field/method id referenced by
//!   class structure or code points inside its pool;
//! * **branch targets** — branches land on real instruction indices and
//!   control cannot run off the end of a method body;
//! * **`move-result` pairing** — each `move-result` directly follows an
//!   invoke of a value-returning method and cannot be jumped into;
//! * **use-before-definition** — a register read before it is assigned on
//!   some path from entry (a warning: the sdex VM null-initializes frames,
//!   and the corpus deliberately uses fresh registers as receiver
//!   placeholders);
//! * **unreachable code** — instructions no path from entry reaches;
//! * **superclass cycles** and **duplicate classes** at the class level.
//!
//! Error-severity defects mark structure the downstream analyses must never
//! see ([`DefectScope`] says whether the method body or the whole class is
//! poisoned); warnings are suspicious but analyzable. The analysis crate's
//! diagnostics layer turns defects into per-app diagnostics and quarantines
//! accordingly.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::instr::Instr;
use crate::program::{Dex, Method};
use crate::refs::Pools;

/// How serious a defect is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational only.
    Info,
    /// Suspicious but analyzable; analysis proceeds.
    Warning,
    /// Malformed; the defective scope is quarantined from analysis.
    Error,
}

impl Severity {
    /// Stable lowercase tag for display and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The defect classes the verifier detects.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DefectKind {
    /// A register index is outside the declared frame.
    RegisterBounds,
    /// A register may be read before any assignment on some path.
    UseBeforeDef,
    /// A `move-result` without a directly preceding value-returning invoke.
    MoveResultPairing,
    /// A branch target outside the method body, or control running off its
    /// end.
    BranchTarget,
    /// A string/type/field/method id outside its pool.
    PoolIndex,
    /// Instructions unreachable from the method entry.
    UnreachableCode,
    /// The superclass chain never terminates.
    SuperclassCycle,
    /// Two classes share one type descriptor.
    DuplicateClass,
}

impl DefectKind {
    /// The severity this defect class always carries.
    pub fn severity(self) -> Severity {
        match self {
            DefectKind::RegisterBounds
            | DefectKind::MoveResultPairing
            | DefectKind::BranchTarget
            | DefectKind::PoolIndex
            | DefectKind::SuperclassCycle => Severity::Error,
            DefectKind::UseBeforeDef | DefectKind::UnreachableCode | DefectKind::DuplicateClass => {
                Severity::Warning
            }
        }
    }

    /// Stable kebab-case tag for display and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            DefectKind::RegisterBounds => "register-bounds",
            DefectKind::UseBeforeDef => "use-before-def",
            DefectKind::MoveResultPairing => "move-result-pairing",
            DefectKind::BranchTarget => "branch-target",
            DefectKind::PoolIndex => "pool-index",
            DefectKind::UnreachableCode => "unreachable-code",
            DefectKind::SuperclassCycle => "superclass-cycle",
            DefectKind::DuplicateClass => "duplicate-class",
        }
    }
}

/// What an Error-severity defect poisons.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DefectScope {
    /// The whole class (its structure cannot be trusted).
    Class,
    /// One method body.
    Method,
}

/// One verification finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Defect {
    /// The defect class.
    pub kind: DefectKind,
    /// What the defect poisons if it is an error.
    pub scope: DefectScope,
    /// Index of the class in [`Dex::classes`].
    pub class_idx: usize,
    /// Index of the method within the class, for method-level defects.
    pub method_idx: Option<usize>,
    /// Class descriptor (or `class#N` when the type id itself is bad).
    pub class: String,
    /// Method name (or `method#N` when the name id itself is bad).
    pub method: Option<String>,
    /// Instruction index, for instruction-level defects.
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Defect {
    /// The severity of this defect (a function of its kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// A `LClass;->method@pc` location string.
    pub fn location(&self) -> String {
        let mut loc = self.class.clone();
        if let Some(m) = &self.method {
            loc.push_str("->");
            loc.push_str(m);
        }
        if let Some(pc) = self.pc {
            loc.push('@');
            loc.push_str(&pc.to_string());
        }
        loc
    }
}

/// Verifies every class and method of a code unit.
///
/// Defects come out grouped by class, then by method, then by instruction
/// index — a deterministic order suitable for golden tests.
pub fn verify_dex(dex: &Dex) -> Vec<Defect> {
    let mut span = separ_obs::span("dex.verify");
    span.set_arg("classes", dex.classes.len().to_string());
    let pools = &dex.pools;
    let mut out = Vec::new();
    let mut seen_types: HashMap<usize, usize> = HashMap::new();
    for (ci, class) in dex.classes.iter().enumerate() {
        let class_name = display_class(pools, dex, ci);
        let mut class_broken = false;
        if class.ty.index() >= pools.num_types() {
            class_broken = true;
            out.push(class_defect(
                DefectKind::PoolIndex,
                ci,
                &class_name,
                format!(
                    "class type id {} outside type pool of {}",
                    class.ty.index(),
                    pools.num_types()
                ),
            ));
        } else if let Some(first) = seen_types.insert(class.ty.index(), ci) {
            out.push(class_defect(
                DefectKind::DuplicateClass,
                ci,
                &class_name,
                format!("duplicate definition of {class_name} (first at class #{first})"),
            ));
        }
        if let Some(sup) = class.super_ty {
            if sup.index() >= pools.num_types() {
                class_broken = true;
                out.push(class_defect(
                    DefectKind::PoolIndex,
                    ci,
                    &class_name,
                    format!(
                        "superclass type id {} outside type pool of {}",
                        sup.index(),
                        pools.num_types()
                    ),
                ));
            }
        }
        for (fi, field) in class.fields.iter().enumerate() {
            if field.name.index() >= pools.num_strings() {
                class_broken = true;
                out.push(class_defect(
                    DefectKind::PoolIndex,
                    ci,
                    &class_name,
                    format!(
                        "field #{fi} name id {} outside string pool of {}",
                        field.name.index(),
                        pools.num_strings()
                    ),
                ));
            }
        }
        for (mi, method) in class.methods.iter().enumerate() {
            let method_name = display_method(pools, method, mi);
            if method.name.index() >= pools.num_strings() {
                // A method the class structure itself cannot name poisons
                // the class: lookups by name would index out of the pool.
                class_broken = true;
                out.push(class_defect(
                    DefectKind::PoolIndex,
                    ci,
                    &class_name,
                    format!(
                        "method #{mi} name id {} outside string pool of {}",
                        method.name.index(),
                        pools.num_strings()
                    ),
                ));
            }
            for (kind, pc, message) in verify_method_body(pools, method) {
                out.push(Defect {
                    kind,
                    scope: DefectScope::Method,
                    class_idx: ci,
                    method_idx: Some(mi),
                    class: class_name.clone(),
                    method: Some(method_name.clone()),
                    pc,
                    message,
                });
            }
        }
        if !class_broken && !superclass_chain_terminates(dex, ci) {
            out.push(class_defect(
                DefectKind::SuperclassCycle,
                ci,
                &class_name,
                format!("superclass chain of {class_name} never terminates"),
            ));
        }
    }
    span.set_arg("defects", out.len().to_string());
    out
}

fn class_defect(kind: DefectKind, ci: usize, class: &str, message: String) -> Defect {
    Defect {
        kind,
        scope: DefectScope::Class,
        class_idx: ci,
        method_idx: None,
        class: class.to_string(),
        method: None,
        pc: None,
        message,
    }
}

fn display_class(pools: &Pools, dex: &Dex, ci: usize) -> String {
    let ty = dex.classes[ci].ty;
    if ty.index() < pools.num_types() {
        pools.type_at(ty).to_string()
    } else {
        format!("class#{ci}")
    }
}

fn display_method(pools: &Pools, method: &Method, mi: usize) -> String {
    if method.name.index() < pools.num_strings() {
        pools.str_at(method.name).to_string()
    } else {
        format!("method#{mi}")
    }
}

/// Walks the superclass chain with a hop budget; a chain longer than the
/// class count must contain a cycle.
fn superclass_chain_terminates(dex: &Dex, ci: usize) -> bool {
    let mut current = dex.classes[ci].super_ty;
    let mut hops = 0usize;
    while let Some(t) = current {
        if hops > dex.classes.len() {
            return false;
        }
        hops += 1;
        current = dex.class(t).and_then(|c| c.super_ty);
    }
    true
}

/// Verifies one method body. Returns `(kind, pc, message)` triples in
/// deterministic order: structural errors first, then pairing, then
/// flow-derived warnings.
fn verify_method_body(pools: &Pools, method: &Method) -> Vec<(DefectKind, Option<u32>, String)> {
    let mut out = Vec::new();
    let code = &method.code;
    let nr = method.num_registers;
    if u16::from(method.num_params) > nr {
        out.push((
            DefectKind::RegisterBounds,
            None,
            format!(
                "{} parameters do not fit in {} registers",
                method.num_params, nr
            ),
        ));
    }
    if code.is_empty() {
        out.push((
            DefectKind::BranchTarget,
            None,
            "method body is empty; control immediately runs off the end".to_string(),
        ));
        return out;
    }
    for (pc, instr) in code.iter().enumerate() {
        let pc32 = pc as u32;
        for reg in instr.uses().into_iter().chain(instr.def()) {
            if reg.0 >= nr {
                out.push((
                    DefectKind::RegisterBounds,
                    Some(pc32),
                    format!("register v{} outside frame of {nr} registers", reg.0),
                ));
            }
        }
        if let Some(target) = instr.branch_target() {
            if target as usize >= code.len() {
                out.push((
                    DefectKind::BranchTarget,
                    Some(pc32),
                    format!(
                        "branch target {target} outside method body of {} instructions",
                        code.len()
                    ),
                ));
            }
        }
        if let Some((pool, index, len)) = bad_pool_ref(pools, instr) {
            out.push((
                DefectKind::PoolIndex,
                Some(pc32),
                format!("{pool} id {index} outside {pool} pool of {len}"),
            ));
        }
    }
    if !code[code.len() - 1].is_terminator() {
        out.push((
            DefectKind::BranchTarget,
            Some((code.len() - 1) as u32),
            "control runs off the end of the method body".to_string(),
        ));
    }
    if out
        .iter()
        .any(|(kind, _, _)| kind.severity() == Severity::Error)
    {
        // Structural errors make target/pool lookups below unsafe; the
        // method is quarantined anyway.
        return out;
    }
    let branch_targets: HashSet<usize> = code
        .iter()
        .filter_map(|i| i.branch_target())
        .map(|t| t as usize)
        .collect();
    for (pc, instr) in code.iter().enumerate() {
        if !matches!(instr, Instr::MoveResult { .. }) {
            continue;
        }
        let pc32 = pc as u32;
        if pc == 0 {
            out.push((
                DefectKind::MoveResultPairing,
                Some(pc32),
                "move-result at method entry has no preceding invoke".to_string(),
            ));
        } else if branch_targets.contains(&pc) {
            out.push((
                DefectKind::MoveResultPairing,
                Some(pc32),
                "move-result is a branch target; a jump skips its invoke".to_string(),
            ));
        } else {
            match &code[pc - 1] {
                Instr::Invoke { method: id, .. } if pools.method_at(*id).returns_value => {}
                Instr::Invoke { method: id, .. } => {
                    out.push((
                        DefectKind::MoveResultPairing,
                        Some(pc32),
                        format!(
                            "move-result after void invoke of {}",
                            pools.method_display(*id)
                        ),
                    ));
                }
                _ => {
                    out.push((
                        DefectKind::MoveResultPairing,
                        Some(pc32),
                        "move-result does not directly follow an invoke".to_string(),
                    ));
                }
            }
        }
    }
    let reachable = reachable_pcs(code);
    let mut pc = 0;
    while pc < code.len() {
        if reachable[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < code.len() && !reachable[pc] {
            pc += 1;
        }
        out.push((
            DefectKind::UnreachableCode,
            Some(start as u32),
            format!(
                "instructions {start}..{} are unreachable from the method entry",
                pc - 1
            ),
        ));
    }
    out.extend(check_definite_assignment(method, &reachable));
    out
}

/// The pool an instruction's operand indexes, if the index is out of range.
fn bad_pool_ref(pools: &Pools, instr: &Instr) -> Option<(&'static str, usize, usize)> {
    match instr {
        Instr::ConstString { value, .. } if value.index() >= pools.num_strings() => {
            Some(("string", value.index(), pools.num_strings()))
        }
        Instr::NewInstance { class, .. } if class.index() >= pools.num_types() => {
            Some(("type", class.index(), pools.num_types()))
        }
        Instr::Invoke { method, .. } if method.index() >= pools.num_methods() => {
            Some(("method", method.index(), pools.num_methods()))
        }
        Instr::IGet { field, .. }
        | Instr::IPut { field, .. }
        | Instr::SGet { field, .. }
        | Instr::SPut { field, .. }
            if field.index() >= pools.num_fields() =>
        {
            Some(("field", field.index(), pools.num_fields()))
        }
        _ => None,
    }
}

/// Instruction indices reachable from entry (structural checks passed, so
/// every branch target is in range).
fn reachable_pcs(code: &[Instr]) -> Vec<bool> {
    let mut reachable = vec![false; code.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if std::mem::replace(&mut reachable[pc], true) {
            continue;
        }
        if let Some(target) = code[pc].branch_target() {
            stack.push(target as usize);
        }
        if !code[pc].is_terminator() && pc + 1 < code.len() {
            stack.push(pc + 1);
        }
    }
    reachable
}

/// Forward definite-assignment dataflow: a register is *definitely
/// assigned* at a pc if every path from entry assigns it first. Parameters
/// arrive pre-assigned in the trailing registers. Reads of registers not
/// definitely assigned are reported as [`DefectKind::UseBeforeDef`]
/// warnings.
fn check_definite_assignment(
    method: &Method,
    reachable: &[bool],
) -> Vec<(DefectKind, Option<u32>, String)> {
    let code = &method.code;
    let nr = method.num_registers as usize;
    let words = nr.div_ceil(64).max(1);
    let mut entry = vec![0u64; words];
    for r in (nr - method.num_params as usize)..nr {
        entry[r / 64] |= 1 << (r % 64);
    }
    // `states[pc]` is the meet (intersection) over all paths reaching `pc`;
    // the worklist drives it monotonically downward to a fixpoint.
    let mut states: Vec<Option<Vec<u64>>> = vec![None; code.len()];
    states[0] = Some(entry);
    let mut worklist = vec![0usize];
    while let Some(pc) = worklist.pop() {
        let mut bits = states[pc].clone().expect("worklist entries have states");
        if let Some(def) = code[pc].def() {
            bits[def.index() / 64] |= 1 << (def.index() % 64);
        }
        let mut successors = [None, None];
        if let Some(target) = code[pc].branch_target() {
            successors[0] = Some(target as usize);
        }
        if !code[pc].is_terminator() && pc + 1 < code.len() {
            successors[1] = Some(pc + 1);
        }
        for succ in successors.into_iter().flatten() {
            match &mut states[succ] {
                Some(existing) => {
                    let mut changed = false;
                    for (e, b) in existing.iter_mut().zip(&bits) {
                        let met = *e & b;
                        changed |= met != *e;
                        *e = met;
                    }
                    if changed {
                        worklist.push(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(bits.clone());
                    worklist.push(succ);
                }
            }
        }
    }
    let mut findings: BTreeSet<(usize, u16)> = BTreeSet::new();
    for (pc, instr) in code.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let Some(bits) = &states[pc] else { continue };
        for reg in instr.uses() {
            if bits[reg.index() / 64] & (1 << (reg.index() % 64)) == 0 {
                findings.insert((pc, reg.0));
            }
        }
    }
    findings
        .into_iter()
        .map(|(pc, reg)| {
            (
                DefectKind::UseBeforeDef,
                Some(pc as u32),
                format!("register v{reg} may be read before it is assigned"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{InvokeKind, Reg};
    use crate::program::Class;
    use crate::refs::{MethodId, StrId, TypeId};

    fn named_method(dex: &mut Dex, code: Vec<Instr>, num_registers: u16) -> Method {
        Method {
            name: dex.pools.str("m"),
            num_registers,
            num_params: 0,
            is_static: true,
            returns_value: false,
            code,
        }
    }

    fn kinds(dex: &Dex) -> Vec<DefectKind> {
        verify_dex(dex).into_iter().map(|d| d.kind).collect()
    }

    #[test]
    fn clean_method_verifies_clean() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![
                Instr::ConstInt {
                    dst: Reg(0),
                    value: 1,
                },
                Instr::IfEqz {
                    reg: Reg(0),
                    target: 3,
                },
                Instr::Nop,
                Instr::ReturnVoid,
            ],
            1,
        );
        let mut dex = host_with(dex, m);
        assert!(verify_dex(&dex).is_empty());
        // Params count as assigned.
        let p = Method {
            name: dex.pools.str("p"),
            num_registers: 2,
            num_params: 1,
            is_static: true,
            returns_value: false,
            code: vec![Instr::Return { reg: Reg(1) }],
        };
        dex.classes[0].methods.push(p);
        assert!(verify_dex(&dex).is_empty());
    }

    fn host_with(mut dex: Dex, method: Method) -> Dex {
        let ty = dex.pools.ty("LHost;");
        dex.classes.push(Class {
            ty,
            super_ty: None,
            fields: vec![],
            methods: vec![method],
        });
        dex
    }

    #[test]
    fn register_bounds_defects() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![
                Instr::ConstInt {
                    dst: Reg(5),
                    value: 0,
                },
                Instr::ReturnVoid,
            ],
            2,
        );
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::RegisterBounds]);
        let d = &verify_dex(&dex)[0];
        assert_eq!(d.severity(), Severity::Error);
        assert_eq!(d.scope, DefectScope::Method);
        assert_eq!(d.location(), "LHost;->m@0");
    }

    #[test]
    fn params_must_fit_in_frame() {
        let mut dex = Dex::new();
        let mut m = named_method(&mut dex, vec![Instr::ReturnVoid], 1);
        m.num_params = 3;
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::RegisterBounds]);
    }

    #[test]
    fn branch_target_defects() {
        let mut dex = Dex::new();
        let m = named_method(&mut dex, vec![Instr::Goto { target: 9 }], 1);
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::BranchTarget]);
    }

    #[test]
    fn falling_off_the_end_is_a_branch_defect() {
        let mut dex = Dex::new();
        let m = named_method(&mut dex, vec![Instr::Nop], 1);
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::BranchTarget]);
        let mut dex2 = Dex::new();
        let empty = named_method(&mut dex2, vec![], 1);
        let dex2 = host_with(dex2, empty);
        assert_eq!(kinds(&dex2), vec![DefectKind::BranchTarget]);
    }

    #[test]
    fn pool_index_defects_in_code() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![
                Instr::ConstString {
                    dst: Reg(0),
                    value: StrId::from_index(999),
                },
                Instr::ReturnVoid,
            ],
            1,
        );
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::PoolIndex]);
        let mut dex2 = Dex::new();
        let m2 = named_method(
            &mut dex2,
            vec![
                Instr::Invoke {
                    kind: InvokeKind::Static,
                    method: MethodId::from_index(7),
                    args: vec![],
                },
                Instr::ReturnVoid,
            ],
            1,
        );
        let dex2 = host_with(dex2, m2);
        assert_eq!(kinds(&dex2), vec![DefectKind::PoolIndex]);
    }

    #[test]
    fn move_result_pairing_defects() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![Instr::MoveResult { dst: Reg(0) }, Instr::ReturnVoid],
            1,
        );
        let dex = host_with(dex, m);
        assert_eq!(kinds(&dex), vec![DefectKind::MoveResultPairing]);

        // move-result after a void invoke.
        let mut dex2 = Dex::new();
        let api = dex2.pools.ty("LApi;");
        let void_m = dex2.pools.method(api, "fire", 0, false);
        let m2 = named_method(
            &mut dex2,
            vec![
                Instr::Invoke {
                    kind: InvokeKind::Static,
                    method: void_m,
                    args: vec![],
                },
                Instr::MoveResult { dst: Reg(0) },
                Instr::ReturnVoid,
            ],
            1,
        );
        let dex2 = host_with(dex2, m2);
        assert_eq!(kinds(&dex2), vec![DefectKind::MoveResultPairing]);

        // A jump into a move-result skips its invoke.
        let mut dex3 = Dex::new();
        let api3 = dex3.pools.ty("LApi;");
        let val_m = dex3.pools.method(api3, "get", 0, true);
        let m3 = named_method(
            &mut dex3,
            vec![
                Instr::Goto { target: 2 },
                Instr::Invoke {
                    kind: InvokeKind::Static,
                    method: val_m,
                    args: vec![],
                },
                Instr::MoveResult { dst: Reg(0) },
                Instr::ReturnVoid,
            ],
            1,
        );
        let dex3 = host_with(dex3, m3);
        let ks = kinds(&dex3);
        assert!(ks.contains(&DefectKind::MoveResultPairing), "{ks:?}");
    }

    #[test]
    fn paired_move_result_is_clean() {
        let mut dex = Dex::new();
        let api = dex.pools.ty("LApi;");
        let val_m = dex.pools.method(api, "get", 0, true);
        let m = named_method(
            &mut dex,
            vec![
                Instr::Invoke {
                    kind: InvokeKind::Static,
                    method: val_m,
                    args: vec![],
                },
                Instr::MoveResult { dst: Reg(0) },
                Instr::ReturnVoid,
            ],
            1,
        );
        let dex = host_with(dex, m);
        assert!(verify_dex(&dex).is_empty());
    }

    #[test]
    fn unreachable_code_is_a_warning() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![Instr::ReturnVoid, Instr::Nop, Instr::ReturnVoid],
            1,
        );
        let dex = host_with(dex, m);
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::UnreachableCode);
        assert_eq!(defects[0].severity(), Severity::Warning);
        assert_eq!(defects[0].pc, Some(1));
    }

    #[test]
    fn use_before_def_is_a_warning() {
        let mut dex = Dex::new();
        let m = named_method(
            &mut dex,
            vec![
                Instr::Move {
                    dst: Reg(0),
                    src: Reg(1),
                },
                Instr::ReturnVoid,
            ],
            2,
        );
        let dex = host_with(dex, m);
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::UseBeforeDef);
        assert_eq!(defects[0].severity(), Severity::Warning);
    }

    #[test]
    fn definite_assignment_needs_all_paths() {
        // v0 is assigned on only one arm of the branch.
        let mut dex = Dex::new();
        let m = Method {
            name: dex.pools.str("m"),
            num_registers: 2,
            num_params: 1,
            is_static: true,
            returns_value: true,
            code: vec![
                Instr::IfEqz {
                    reg: Reg(1),
                    target: 2,
                },
                Instr::ConstInt {
                    dst: Reg(0),
                    value: 1,
                },
                Instr::Return { reg: Reg(0) },
            ],
        };
        let dex = host_with(dex, m);
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::UseBeforeDef);
        assert_eq!(defects[0].pc, Some(2));
    }

    #[test]
    fn assignment_on_all_paths_is_clean() {
        let mut dex = Dex::new();
        let m = Method {
            name: dex.pools.str("m"),
            num_registers: 2,
            num_params: 1,
            is_static: true,
            returns_value: true,
            code: vec![
                Instr::IfEqz {
                    reg: Reg(1),
                    target: 3,
                },
                Instr::ConstInt {
                    dst: Reg(0),
                    value: 1,
                },
                Instr::Goto { target: 4 },
                Instr::ConstInt {
                    dst: Reg(0),
                    value: 2,
                },
                Instr::Return { reg: Reg(0) },
            ],
        };
        let dex = host_with(dex, m);
        assert!(verify_dex(&dex).is_empty());
    }

    #[test]
    fn class_level_pool_defects() {
        let mut dex = Dex::new();
        dex.pools.ty("LReal;");
        dex.classes.push(Class {
            ty: TypeId::from_index(42),
            super_ty: None,
            fields: vec![],
            methods: vec![],
        });
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::PoolIndex);
        assert_eq!(defects[0].scope, DefectScope::Class);
        assert_eq!(defects[0].class, "class#0");
    }

    #[test]
    fn superclass_cycles_are_detected() {
        let mut dex = Dex::new();
        let a = dex.pools.ty("LA;");
        let b = dex.pools.ty("LB;");
        for (ty, sup) in [(a, b), (b, a)] {
            dex.classes.push(Class {
                ty,
                super_ty: Some(sup),
                fields: vec![],
                methods: vec![],
            });
        }
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 2);
        assert!(defects.iter().all(|d| d.kind == DefectKind::SuperclassCycle
            && d.severity() == Severity::Error
            && d.scope == DefectScope::Class));
    }

    #[test]
    fn duplicate_classes_are_warnings() {
        let mut dex = Dex::new();
        let ty = dex.pools.ty("LDup;");
        for _ in 0..2 {
            dex.classes.push(Class {
                ty,
                super_ty: None,
                fields: vec![],
                methods: vec![],
            });
        }
        let defects = verify_dex(&dex);
        assert_eq!(defects.len(), 1);
        assert_eq!(defects[0].kind, DefectKind::DuplicateClass);
        assert_eq!(defects[0].class_idx, 1);
    }
}
