//! Binary encoding and decoding of APK packages.
//!
//! Layout: `SDEX` magic, a u16 version, a u32 payload length, the payload
//! (manifest, pools, classes), and a trailing FNV-1a checksum of the
//! payload. All integers are little-endian. The decoder validates every
//! pool index and branch target, so a decoded package is structurally
//! sound by construction.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::DexError;
use crate::instr::{BinOp, Instr, InvokeKind, Reg};
use crate::manifest::{ComponentDecl, ComponentKind, IntentFilterDecl, Manifest};
use crate::program::{Apk, Class, Dex, FieldDef, Method};
use crate::refs::{FieldId, FieldRef, MethodId, MethodRef, Pools, StrId, TypeId};

const MAGIC: &[u8; 4] = b"SDEX";
const VERSION: u16 = 1;

/// Encodes a package to bytes.
pub fn encode(apk: &Apk) -> Bytes {
    let mut payload = BytesMut::with_capacity(4096);
    encode_manifest(&mut payload, &apk.manifest);
    encode_pools(&mut payload, &apk.dex.pools);
    encode_classes(&mut payload, &apk.dex);
    let checksum = fnv1a(&payload);
    let mut out = BytesMut::with_capacity(payload.len() + 18);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(payload.len() as u32);
    out.put_slice(&payload);
    out.put_u64_le(checksum);
    out.freeze()
}

/// Decodes a package from bytes.
///
/// # Errors
///
/// Returns a [`DexError`] for truncated input, bad magic/version, checksum
/// mismatch, or any structural violation (bad opcode, out-of-range index,
/// branch past the end of a method).
pub fn decode(bytes: &[u8]) -> Result<Apk, DexError> {
    let mut span = separ_obs::span("dex.decode");
    span.set_arg("bytes", bytes.len().to_string());
    let mut buf = bytes;
    if buf.remaining() < 10 {
        return Err(DexError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DexError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DexError::BadVersion(version));
    }
    let payload_len = buf.get_u32_le() as usize;
    if buf.remaining() < payload_len + 8 {
        return Err(DexError::Truncated);
    }
    let payload = &buf[..payload_len];
    let mut tail = &buf[payload_len..];
    let checksum = tail.get_u64_le();
    if fnv1a(payload) != checksum {
        return Err(DexError::ChecksumMismatch);
    }
    let mut p = payload;
    let manifest = decode_manifest(&mut p)?;
    let pools = decode_pools(&mut p)?;
    let classes = decode_classes(&mut p, &pools)?;
    span.set_arg("app", manifest.package.clone());
    Ok(Apk::new(manifest, Dex { pools, classes }))
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------- primitive helpers ----------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, DexError> {
    if buf.remaining() < 4 {
        return Err(DexError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DexError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| DexError::BadUtf8)?;
    let out = s.to_string();
    buf.advance(len);
    Ok(out)
}

fn put_str_vec(buf: &mut BytesMut, v: &[String]) {
    buf.put_u32_le(v.len() as u32);
    for s in v {
        put_str(buf, s);
    }
}

fn get_str_vec(buf: &mut &[u8]) -> Result<Vec<String>, DexError> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_str(buf)?);
    }
    Ok(out)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, DexError> {
    if buf.remaining() < 4 {
        return Err(DexError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, DexError> {
    if buf.remaining() < 2 {
        return Err(DexError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, DexError> {
    if buf.remaining() < 1 {
        return Err(DexError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64, DexError> {
    if buf.remaining() < 8 {
        return Err(DexError::Truncated);
    }
    Ok(buf.get_i64_le())
}

// ---------- manifest ----------

fn encode_manifest(buf: &mut BytesMut, m: &Manifest) {
    put_str(buf, &m.package);
    put_str_vec(buf, &m.uses_permissions);
    put_str_vec(buf, &m.defines_permissions);
    buf.put_u32_le(m.components.len() as u32);
    for c in &m.components {
        put_str(buf, &c.class);
        buf.put_u8(c.kind.tag());
        buf.put_u8(match c.exported {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        match &c.permission {
            None => buf.put_u8(0),
            Some(p) => {
                buf.put_u8(1);
                put_str(buf, p);
            }
        }
        buf.put_u32_le(c.intent_filters.len() as u32);
        for filt in &c.intent_filters {
            put_str_vec(buf, &filt.actions);
            put_str_vec(buf, &filt.categories);
            put_str_vec(buf, &filt.data_types);
            put_str_vec(buf, &filt.data_schemes);
        }
    }
}

fn decode_manifest(buf: &mut &[u8]) -> Result<Manifest, DexError> {
    let package = get_str(buf)?;
    let uses_permissions = get_str_vec(buf)?;
    let defines_permissions = get_str_vec(buf)?;
    let n = get_u32(buf)? as usize;
    let mut components = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let class = get_str(buf)?;
        let kind = ComponentKind::from_tag(get_u8(buf)?)
            .ok_or(DexError::Malformed("bad component kind"))?;
        let exported = match get_u8(buf)? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(DexError::Malformed("bad exported flag")),
        };
        let permission = match get_u8(buf)? {
            0 => None,
            1 => Some(get_str(buf)?),
            _ => return Err(DexError::Malformed("bad permission flag")),
        };
        let nf = get_u32(buf)? as usize;
        let mut intent_filters = Vec::with_capacity(nf.min(256));
        for _ in 0..nf {
            intent_filters.push(IntentFilterDecl {
                actions: get_str_vec(buf)?,
                categories: get_str_vec(buf)?,
                data_types: get_str_vec(buf)?,
                data_schemes: get_str_vec(buf)?,
            });
        }
        components.push(ComponentDecl {
            class,
            kind,
            exported,
            permission,
            intent_filters,
        });
    }
    Ok(Manifest {
        package,
        uses_permissions,
        defines_permissions,
        components,
    })
}

// ---------- pools ----------

fn encode_pools(buf: &mut BytesMut, p: &Pools) {
    buf.put_u32_le(p.num_strings() as u32);
    for s in p.strings() {
        put_str(buf, s);
    }
    buf.put_u32_le(p.num_types() as u32);
    for t in p.types() {
        put_str(buf, t);
    }
    buf.put_u32_le(p.num_fields() as u32);
    for f in p.fields() {
        buf.put_u32_le(f.class.index() as u32);
        buf.put_u32_le(f.name.index() as u32);
    }
    buf.put_u32_le(p.num_methods() as u32);
    for m in p.methods() {
        buf.put_u32_le(m.class.index() as u32);
        buf.put_u32_le(m.name.index() as u32);
        buf.put_u8(m.arity);
        buf.put_u8(u8::from(m.returns_value));
    }
}

fn decode_pools(buf: &mut &[u8]) -> Result<Pools, DexError> {
    let ns = get_u32(buf)? as usize;
    let mut strings = Vec::with_capacity(ns.min(65536));
    for _ in 0..ns {
        strings.push(get_str(buf)?);
    }
    let nt = get_u32(buf)? as usize;
    let mut types = Vec::with_capacity(nt.min(65536));
    for _ in 0..nt {
        types.push(get_str(buf)?);
    }
    let nf = get_u32(buf)? as usize;
    let mut fields = Vec::with_capacity(nf.min(65536));
    for _ in 0..nf {
        fields.push(FieldRef {
            class: TypeId::from_index(get_u32(buf)? as usize),
            name: StrId::from_index(get_u32(buf)? as usize),
        });
    }
    let nm = get_u32(buf)? as usize;
    let mut methods = Vec::with_capacity(nm.min(65536));
    for _ in 0..nm {
        methods.push(MethodRef {
            class: TypeId::from_index(get_u32(buf)? as usize),
            name: StrId::from_index(get_u32(buf)? as usize),
            arity: get_u8(buf)?,
            returns_value: get_u8(buf)? != 0,
        });
    }
    Pools::from_parts(strings, types, fields, methods)
        .ok_or(DexError::Malformed("invalid pool entries"))
}

// ---------- classes & code ----------

fn encode_classes(buf: &mut BytesMut, dex: &Dex) {
    buf.put_u32_le(dex.classes.len() as u32);
    for c in &dex.classes {
        buf.put_u32_le(c.ty.index() as u32);
        buf.put_u32_le(c.super_ty.map_or(u32::MAX, |t| t.index() as u32));
        buf.put_u32_le(c.fields.len() as u32);
        for f in &c.fields {
            buf.put_u32_le(f.name.index() as u32);
            buf.put_u8(u8::from(f.is_static));
        }
        buf.put_u32_le(c.methods.len() as u32);
        for m in &c.methods {
            buf.put_u32_le(m.name.index() as u32);
            buf.put_u16_le(m.num_registers);
            buf.put_u8(m.num_params);
            buf.put_u8(u8::from(m.is_static));
            buf.put_u8(u8::from(m.returns_value));
            buf.put_u32_le(m.code.len() as u32);
            for i in &m.code {
                encode_instr(buf, i);
            }
        }
    }
}

fn decode_classes(buf: &mut &[u8], pools: &Pools) -> Result<Vec<Class>, DexError> {
    let check_str = |i: u32| -> Result<StrId, DexError> {
        if (i as usize) < pools.num_strings() {
            Ok(StrId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "string",
                index: i,
            })
        }
    };
    let check_type = |i: u32| -> Result<TypeId, DexError> {
        if (i as usize) < pools.num_types() {
            Ok(TypeId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "type",
                index: i,
            })
        }
    };
    let nc = get_u32(buf)? as usize;
    let mut classes = Vec::with_capacity(nc.min(65536));
    for _ in 0..nc {
        let ty = check_type(get_u32(buf)?)?;
        let super_raw = get_u32(buf)?;
        let super_ty = if super_raw == u32::MAX {
            None
        } else {
            Some(check_type(super_raw)?)
        };
        let nf = get_u32(buf)? as usize;
        let mut fields = Vec::with_capacity(nf.min(4096));
        for _ in 0..nf {
            fields.push(FieldDef {
                name: check_str(get_u32(buf)?)?,
                is_static: get_u8(buf)? != 0,
            });
        }
        let nm = get_u32(buf)? as usize;
        let mut methods = Vec::with_capacity(nm.min(4096));
        for _ in 0..nm {
            let name = check_str(get_u32(buf)?)?;
            let num_registers = get_u16(buf)?;
            let num_params = get_u8(buf)?;
            let is_static = get_u8(buf)? != 0;
            let returns_value = get_u8(buf)? != 0;
            let ni = get_u32(buf)? as usize;
            let mut code = Vec::with_capacity(ni.min(65536));
            for _ in 0..ni {
                code.push(decode_instr(buf, pools)?);
            }
            // Validate branch targets and register bounds.
            for i in &code {
                if let Some(t) = i.branch_target() {
                    if t as usize >= code.len() {
                        return Err(DexError::Malformed("branch target out of range"));
                    }
                }
                for r in i.uses().into_iter().chain(i.def()) {
                    if r.0 >= num_registers {
                        return Err(DexError::Malformed("register out of frame"));
                    }
                }
            }
            if u16::from(num_params) > num_registers {
                return Err(DexError::Malformed("more params than registers"));
            }
            methods.push(Method {
                name,
                num_registers,
                num_params,
                is_static,
                returns_value,
                code,
            });
        }
        classes.push(Class {
            ty,
            super_ty,
            fields,
            methods,
        });
    }
    Ok(classes)
}

fn encode_instr(buf: &mut BytesMut, i: &Instr) {
    match i {
        Instr::Nop => buf.put_u8(0),
        Instr::ConstString { dst, value } => {
            buf.put_u8(1);
            buf.put_u16_le(dst.0);
            buf.put_u32_le(value.index() as u32);
        }
        Instr::ConstInt { dst, value } => {
            buf.put_u8(2);
            buf.put_u16_le(dst.0);
            buf.put_i64_le(*value);
        }
        Instr::ConstNull { dst } => {
            buf.put_u8(3);
            buf.put_u16_le(dst.0);
        }
        Instr::Move { dst, src } => {
            buf.put_u8(4);
            buf.put_u16_le(dst.0);
            buf.put_u16_le(src.0);
        }
        Instr::NewInstance { dst, class } => {
            buf.put_u8(5);
            buf.put_u16_le(dst.0);
            buf.put_u32_le(class.index() as u32);
        }
        Instr::Invoke { kind, method, args } => {
            buf.put_u8(6);
            buf.put_u8(match kind {
                InvokeKind::Virtual => 0,
                InvokeKind::Static => 1,
                InvokeKind::Direct => 2,
            });
            buf.put_u32_le(method.index() as u32);
            buf.put_u8(args.len() as u8);
            for a in args {
                buf.put_u16_le(a.0);
            }
        }
        Instr::MoveResult { dst } => {
            buf.put_u8(7);
            buf.put_u16_le(dst.0);
        }
        Instr::IGet { dst, object, field } => {
            buf.put_u8(8);
            buf.put_u16_le(dst.0);
            buf.put_u16_le(object.0);
            buf.put_u32_le(field.index() as u32);
        }
        Instr::IPut { src, object, field } => {
            buf.put_u8(9);
            buf.put_u16_le(src.0);
            buf.put_u16_le(object.0);
            buf.put_u32_le(field.index() as u32);
        }
        Instr::SGet { dst, field } => {
            buf.put_u8(10);
            buf.put_u16_le(dst.0);
            buf.put_u32_le(field.index() as u32);
        }
        Instr::SPut { src, field } => {
            buf.put_u8(11);
            buf.put_u16_le(src.0);
            buf.put_u32_le(field.index() as u32);
        }
        Instr::IfEqz { reg, target } => {
            buf.put_u8(12);
            buf.put_u16_le(reg.0);
            buf.put_u32_le(*target);
        }
        Instr::IfNez { reg, target } => {
            buf.put_u8(13);
            buf.put_u16_le(reg.0);
            buf.put_u32_le(*target);
        }
        Instr::Goto { target } => {
            buf.put_u8(14);
            buf.put_u32_le(*target);
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            buf.put_u8(15);
            buf.put_u8(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::CmpEq => 3,
            });
            buf.put_u16_le(dst.0);
            buf.put_u16_le(lhs.0);
            buf.put_u16_le(rhs.0);
        }
        Instr::ReturnVoid => buf.put_u8(16),
        Instr::Return { reg } => {
            buf.put_u8(17);
            buf.put_u16_le(reg.0);
        }
        Instr::Throw { reg } => {
            buf.put_u8(18);
            buf.put_u16_le(reg.0);
        }
    }
}

fn decode_instr(buf: &mut &[u8], pools: &Pools) -> Result<Instr, DexError> {
    let check_str = |i: u32| -> Result<StrId, DexError> {
        if (i as usize) < pools.num_strings() {
            Ok(StrId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "string",
                index: i,
            })
        }
    };
    let check_type = |i: u32| -> Result<TypeId, DexError> {
        if (i as usize) < pools.num_types() {
            Ok(TypeId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "type",
                index: i,
            })
        }
    };
    let check_field = |i: u32| -> Result<FieldId, DexError> {
        if (i as usize) < pools.num_fields() {
            Ok(FieldId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "field",
                index: i,
            })
        }
    };
    let check_method = |i: u32| -> Result<MethodId, DexError> {
        if (i as usize) < pools.num_methods() {
            Ok(MethodId::from_index(i as usize))
        } else {
            Err(DexError::BadIndex {
                pool: "method",
                index: i,
            })
        }
    };
    let op = get_u8(buf)?;
    Ok(match op {
        0 => Instr::Nop,
        1 => Instr::ConstString {
            dst: Reg(get_u16(buf)?),
            value: check_str(get_u32(buf)?)?,
        },
        2 => Instr::ConstInt {
            dst: Reg(get_u16(buf)?),
            value: get_i64(buf)?,
        },
        3 => Instr::ConstNull {
            dst: Reg(get_u16(buf)?),
        },
        4 => Instr::Move {
            dst: Reg(get_u16(buf)?),
            src: Reg(get_u16(buf)?),
        },
        5 => Instr::NewInstance {
            dst: Reg(get_u16(buf)?),
            class: check_type(get_u32(buf)?)?,
        },
        6 => {
            let kind = match get_u8(buf)? {
                0 => InvokeKind::Virtual,
                1 => InvokeKind::Static,
                2 => InvokeKind::Direct,
                _ => return Err(DexError::Malformed("bad invoke kind")),
            };
            let method = check_method(get_u32(buf)?)?;
            let argc = get_u8(buf)? as usize;
            let mut args = Vec::with_capacity(argc);
            for _ in 0..argc {
                args.push(Reg(get_u16(buf)?));
            }
            Instr::Invoke { kind, method, args }
        }
        7 => Instr::MoveResult {
            dst: Reg(get_u16(buf)?),
        },
        8 => Instr::IGet {
            dst: Reg(get_u16(buf)?),
            object: Reg(get_u16(buf)?),
            field: check_field(get_u32(buf)?)?,
        },
        9 => Instr::IPut {
            src: Reg(get_u16(buf)?),
            object: Reg(get_u16(buf)?),
            field: check_field(get_u32(buf)?)?,
        },
        10 => Instr::SGet {
            dst: Reg(get_u16(buf)?),
            field: check_field(get_u32(buf)?)?,
        },
        11 => Instr::SPut {
            src: Reg(get_u16(buf)?),
            field: check_field(get_u32(buf)?)?,
        },
        12 => Instr::IfEqz {
            reg: Reg(get_u16(buf)?),
            target: get_u32(buf)?,
        },
        13 => Instr::IfNez {
            reg: Reg(get_u16(buf)?),
            target: get_u32(buf)?,
        },
        14 => Instr::Goto {
            target: get_u32(buf)?,
        },
        15 => {
            let op = match get_u8(buf)? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::CmpEq,
                _ => return Err(DexError::Malformed("bad binop")),
            };
            Instr::BinOp {
                op,
                dst: Reg(get_u16(buf)?),
                lhs: Reg(get_u16(buf)?),
                rhs: Reg(get_u16(buf)?),
            }
        }
        16 => Instr::ReturnVoid,
        17 => Instr::Return {
            reg: Reg(get_u16(buf)?),
        },
        18 => Instr::Throw {
            reg: Reg(get_u16(buf)?),
        },
        other => return Err(DexError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ApkBuilder;
    use crate::manifest::{ComponentKind, IntentFilterDecl};

    fn sample_apk() -> Apk {
        let mut apk = ApkBuilder::new("com.example.codec");
        apk.uses_permission("android.permission.ACCESS_FINE_LOCATION");
        let mut decl = ComponentDecl::new("Lcom/example/Svc;", ComponentKind::Service);
        decl.intent_filters
            .push(IntentFilterDecl::for_actions(["showLoc"]));
        decl.permission = Some("com.example.PERM".into());
        apk.add_component(decl);
        {
            let mut class = apk.class_extends("Lcom/example/Svc;", "Landroid/app/Service;");
            class.field("cache", false);
            let mut m = class.method("onStartCommand", 2, false, false);
            let v0 = m.reg();
            let v1 = m.reg();
            let done = m.new_label();
            m.const_string(v0, "locationInfo");
            m.const_int(v1, 42);
            m.if_eqz(v1, done);
            m.new_instance(v1, "Landroid/content/Intent;");
            m.invoke_virtual("Landroid/content/Intent;", "setAction", &[v1, v0], false);
            m.iput(v0, m.this(), "Lcom/example/Svc;", "cache");
            m.bind(done);
            m.ret_void();
            m.finish();
            class.finish();
        }
        apk.finish()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let apk = sample_apk();
        let bytes = encode(&apk);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(decoded.manifest, apk.manifest);
        assert_eq!(decoded.dex.classes, apk.dex.classes);
        assert_eq!(decoded.dex.pools.num_strings(), apk.dex.pools.num_strings());
        assert_eq!(decoded.dex.pools.num_methods(), apk.dex.pools.num_methods());
        // Re-encoding is byte-identical (canonical form).
        assert_eq!(encode(&decoded), bytes);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let apk = sample_apk();
        let mut bytes = encode(&apk).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DexError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let apk = sample_apk();
        let mut bytes = encode(&apk).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DexError::BadVersion(_))));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let apk = sample_apk();
        let mut bytes = encode(&apk).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let err = decode(&bytes).expect_err("must fail");
        // Either the checksum or (if the flip hit a length) truncation.
        assert!(
            matches!(err, DexError::ChecksumMismatch | DexError::Truncated),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn truncation_is_detected() {
        let apk = sample_apk();
        let bytes = encode(&apk);
        for cut in [0, 5, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn empty_apk_round_trips() {
        let apk = ApkBuilder::new("empty").finish();
        let bytes = encode(&apk);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(decoded.package(), "empty");
        assert!(decoded.dex.classes.is_empty());
    }
}
