//! Fluent builders for assembling APKs programmatically.
//!
//! The corpus generators use these to produce whole markets of synthetic
//! apps as real sdex binaries. Method bodies are written with labelled
//! branches and symbolic parameter registers; the builder resolves both
//! when the method is finished.

use crate::instr::{BinOp, Instr, InvokeKind, Reg};
use crate::manifest::{ComponentDecl, Manifest};
use crate::program::{Apk, Class, Dex, FieldDef, Method};
use crate::refs::TypeId;

/// Placeholder base for parameter registers, rewritten at finish time.
const PARAM_BASE: u16 = 0x8000;

/// A forward-referenceable code label.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Label(u32);

/// Builds an [`Apk`].
///
/// # Examples
///
/// ```
/// use separ_dex::build::ApkBuilder;
/// use separ_dex::manifest::{ComponentDecl, ComponentKind};
///
/// let mut apk = ApkBuilder::new("com.example.hello");
/// apk.add_component(ComponentDecl::new("Lcom/example/Main;", ComponentKind::Activity));
/// {
///     let mut class = apk.class("Lcom/example/Main;");
///     let mut m = class.method("onCreate", 1, false, false);
///     m.ret_void();
///     m.finish();
///     class.finish();
/// }
/// let apk = apk.finish();
/// assert_eq!(apk.package(), "com.example.hello");
/// ```
#[derive(Debug)]
pub struct ApkBuilder {
    manifest: Manifest,
    dex: Dex,
}

impl ApkBuilder {
    /// Starts building a package.
    pub fn new(package: impl Into<String>) -> ApkBuilder {
        ApkBuilder {
            manifest: Manifest::new(package),
            dex: Dex::new(),
        }
    }

    /// Adds a `uses-permission` entry.
    pub fn uses_permission(&mut self, permission: impl Into<String>) -> &mut ApkBuilder {
        self.manifest.uses_permissions.push(permission.into());
        self
    }

    /// Adds a custom permission definition.
    pub fn defines_permission(&mut self, permission: impl Into<String>) -> &mut ApkBuilder {
        self.manifest.defines_permissions.push(permission.into());
        self
    }

    /// Declares a manifest component.
    pub fn add_component(&mut self, decl: ComponentDecl) -> &mut ApkBuilder {
        self.manifest.components.push(decl);
        self
    }

    /// Starts a class (no superclass).
    pub fn class(&mut self, descriptor: &str) -> ClassBuilder<'_> {
        self.class_extending(descriptor, None)
    }

    /// Starts a class with a superclass.
    pub fn class_extends(&mut self, descriptor: &str, super_descriptor: &str) -> ClassBuilder<'_> {
        self.class_extending(descriptor, Some(super_descriptor))
    }

    fn class_extending(
        &mut self,
        descriptor: &str,
        super_descriptor: Option<&str>,
    ) -> ClassBuilder<'_> {
        let ty = self.dex.pools.ty(descriptor);
        let super_ty = super_descriptor.map(|s| self.dex.pools.ty(s));
        ClassBuilder {
            apk: self,
            ty,
            super_ty,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Finalizes the package.
    pub fn finish(self) -> Apk {
        Apk::new(self.manifest, self.dex)
    }
}

/// Builds one class of an [`ApkBuilder`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    apk: &'a mut ApkBuilder,
    ty: TypeId,
    super_ty: Option<TypeId>,
    fields: Vec<FieldDef>,
    methods: Vec<Method>,
}

impl<'a> ClassBuilder<'a> {
    /// The class's type id.
    pub fn ty(&self) -> TypeId {
        self.ty
    }

    /// Declares a field.
    pub fn field(&mut self, name: &str, is_static: bool) -> &mut ClassBuilder<'a> {
        let name = self.apk.dex.pools.str(name);
        self.fields.push(FieldDef { name, is_static });
        self
    }

    /// Starts a method. `num_params` counts the receiver for instance
    /// methods (pass at least 1 when `is_static` is false, as dex does).
    pub fn method(
        &mut self,
        name: &str,
        num_params: u8,
        is_static: bool,
        returns_value: bool,
    ) -> MethodBuilder<'a, '_> {
        assert!(
            is_static || num_params >= 1,
            "instance methods receive `this` as parameter 0"
        );
        let name = self.apk.dex.pools.str(name);
        MethodBuilder {
            class: self,
            name,
            num_params,
            is_static,
            returns_value,
            code: Vec::new(),
            next_local: 0,
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Finishes the class, adding it to the package.
    pub fn finish(self) {
        self.apk.dex.classes.push(Class {
            ty: self.ty,
            super_ty: self.super_ty,
            fields: self.fields,
            methods: self.methods,
        });
    }
}

/// Builds one method body.
#[derive(Debug)]
pub struct MethodBuilder<'a, 'c> {
    class: &'c mut ClassBuilder<'a>,
    name: crate::refs::StrId,
    num_params: u8,
    is_static: bool,
    returns_value: bool,
    code: Vec<Instr>,
    next_local: u16,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl<'a, 'c> MethodBuilder<'a, 'c> {
    /// Allocates a fresh local register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_local);
        self.next_local += 1;
        assert!(self.next_local < PARAM_BASE, "too many locals");
        r
    }

    /// The register of parameter `i` (receiver is parameter 0 for
    /// instance methods).
    pub fn param(&self, i: u8) -> Reg {
        assert!(i < self.num_params, "parameter index out of range");
        Reg(PARAM_BASE + u16::from(i))
    }

    /// The receiver register (`this`).
    ///
    /// # Panics
    ///
    /// Panics for static methods.
    pub fn this(&self) -> Reg {
        assert!(!self.is_static, "static methods have no receiver");
        self.param(0)
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds a label to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Emits `const-string`.
    pub fn const_string(&mut self, dst: Reg, value: &str) -> &mut Self {
        let value = self.class.apk.dex.pools.str(value);
        self.push(Instr::ConstString { dst, value })
    }

    /// Emits `const-int`.
    pub fn const_int(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.push(Instr::ConstInt { dst, value })
    }

    /// Emits `const-null`.
    pub fn const_null(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::ConstNull { dst })
    }

    /// Emits a register move.
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Move { dst, src })
    }

    /// Emits `new-instance`.
    pub fn new_instance(&mut self, dst: Reg, class_descriptor: &str) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        self.push(Instr::NewInstance { dst, class })
    }

    fn invoke(
        &mut self,
        kind: InvokeKind,
        class_descriptor: &str,
        name: &str,
        args: &[Reg],
        returns_value: bool,
    ) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        let arity = args.len() as u8;
        let method = self
            .class
            .apk
            .dex
            .pools
            .method(class, name, arity, returns_value);
        self.push(Instr::Invoke {
            kind,
            method,
            args: args.to_vec(),
        })
    }

    /// Emits `invoke-virtual` (receiver is `args[0]`).
    pub fn invoke_virtual(
        &mut self,
        class_descriptor: &str,
        name: &str,
        args: &[Reg],
        returns_value: bool,
    ) -> &mut Self {
        self.invoke(
            InvokeKind::Virtual,
            class_descriptor,
            name,
            args,
            returns_value,
        )
    }

    /// Emits `invoke-static`.
    pub fn invoke_static(
        &mut self,
        class_descriptor: &str,
        name: &str,
        args: &[Reg],
        returns_value: bool,
    ) -> &mut Self {
        self.invoke(
            InvokeKind::Static,
            class_descriptor,
            name,
            args,
            returns_value,
        )
    }

    /// Emits `invoke-direct` (constructors).
    pub fn invoke_direct(
        &mut self,
        class_descriptor: &str,
        name: &str,
        args: &[Reg],
        returns_value: bool,
    ) -> &mut Self {
        self.invoke(
            InvokeKind::Direct,
            class_descriptor,
            name,
            args,
            returns_value,
        )
    }

    /// Emits `move-result`.
    pub fn move_result(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::MoveResult { dst })
    }

    /// Emits `iget`.
    pub fn iget(
        &mut self,
        dst: Reg,
        object: Reg,
        class_descriptor: &str,
        field: &str,
    ) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        let field = self.class.apk.dex.pools.field(class, field);
        self.push(Instr::IGet { dst, object, field })
    }

    /// Emits `iput`.
    pub fn iput(
        &mut self,
        src: Reg,
        object: Reg,
        class_descriptor: &str,
        field: &str,
    ) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        let field = self.class.apk.dex.pools.field(class, field);
        self.push(Instr::IPut { src, object, field })
    }

    /// Emits `sget`.
    pub fn sget(&mut self, dst: Reg, class_descriptor: &str, field: &str) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        let field = self.class.apk.dex.pools.field(class, field);
        self.push(Instr::SGet { dst, field })
    }

    /// Emits `sput`.
    pub fn sput(&mut self, src: Reg, class_descriptor: &str, field: &str) -> &mut Self {
        let class = self.class.apk.dex.pools.ty(class_descriptor);
        let field = self.class.apk.dex.pools.field(class, field);
        self.push(Instr::SPut { src, field })
    }

    /// Emits `if-eqz` targeting a label.
    pub fn if_eqz(&mut self, reg: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.push(Instr::IfEqz {
            reg,
            target: u32::MAX,
        })
    }

    /// Emits `if-nez` targeting a label.
    pub fn if_nez(&mut self, reg: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.push(Instr::IfNez {
            reg,
            target: u32::MAX,
        })
    }

    /// Emits `goto` targeting a label.
    pub fn goto(&mut self, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.push(Instr::Goto { target: u32::MAX })
    }

    /// Emits an integer binary operation.
    pub fn binop(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: Reg) -> &mut Self {
        self.push(Instr::BinOp { op, dst, lhs, rhs })
    }

    /// Emits `return-void`.
    pub fn ret_void(&mut self) -> &mut Self {
        self.push(Instr::ReturnVoid)
    }

    /// Emits `return`.
    pub fn ret(&mut self, reg: Reg) -> &mut Self {
        self.push(Instr::Return { reg })
    }

    /// Emits `throw`.
    pub fn throw(&mut self, reg: Reg) -> &mut Self {
        self.push(Instr::Throw { reg })
    }

    /// Finishes the method: resolves labels, maps parameter placeholders to
    /// trailing registers, and adds the method to the class.
    ///
    /// # Panics
    ///
    /// Panics if a used label was never bound, or the body does not end in
    /// a terminator.
    pub fn finish(mut self) {
        // Resolve labels.
        for (pos, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0 as usize].expect("label used but never bound");
            match &mut self.code[pos] {
                Instr::IfEqz { target: t, .. }
                | Instr::IfNez { target: t, .. }
                | Instr::Goto { target: t } => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        if self.code.last().is_none_or(|i| !i.is_terminator()) {
            self.code.push(Instr::ReturnVoid);
        }
        // Map parameter placeholders.
        let locals = self.next_local;
        let remap = |r: &mut Reg| {
            if r.0 >= PARAM_BASE {
                *r = Reg(locals + (r.0 - PARAM_BASE));
            }
        };
        for instr in &mut self.code {
            match instr {
                Instr::ConstString { dst, .. }
                | Instr::ConstInt { dst, .. }
                | Instr::ConstNull { dst }
                | Instr::MoveResult { dst }
                | Instr::SGet { dst, .. }
                | Instr::NewInstance { dst, .. } => remap(dst),
                Instr::Move { dst, src } => {
                    remap(dst);
                    remap(src);
                }
                Instr::Invoke { args, .. } => args.iter_mut().for_each(remap),
                Instr::IGet { dst, object, .. } => {
                    remap(dst);
                    remap(object);
                }
                Instr::IPut { src, object, .. } => {
                    remap(src);
                    remap(object);
                }
                Instr::SPut { src, .. } => remap(src),
                Instr::IfEqz { reg, .. }
                | Instr::IfNez { reg, .. }
                | Instr::Return { reg }
                | Instr::Throw { reg } => remap(reg),
                Instr::BinOp { dst, lhs, rhs, .. } => {
                    remap(dst);
                    remap(lhs);
                    remap(rhs);
                }
                Instr::Goto { .. } | Instr::ReturnVoid | Instr::Nop => {}
            }
        }
        let method = Method {
            name: self.name,
            num_registers: locals + u16::from(self.num_params),
            num_params: self.num_params,
            is_static: self.is_static,
            returns_value: self.returns_value,
            code: std::mem::take(&mut self.code),
        };
        self.class.methods.push(method);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_method_with_params_and_labels() {
        let mut apk = ApkBuilder::new("com.test");
        {
            let mut class = apk.class_extends("Lcom/test/Svc;", "Landroid/app/Service;");
            let mut m = class.method("onStartCommand", 2, false, false);
            let v0 = m.reg();
            let skip = m.new_label();
            let intent = m.param(1);
            m.const_string(v0, "PHONE_NUM");
            m.invoke_virtual(
                "Landroid/content/Intent;",
                "getStringExtra",
                &[intent, v0],
                true,
            );
            m.move_result(v0);
            m.if_eqz(v0, skip);
            m.nop();
            m.bind(skip);
            m.ret_void();
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let class = apk.dex.class_by_name("Lcom/test/Svc;").expect("class");
        assert_eq!(
            apk.dex.pools.type_at(class.super_ty.expect("super")),
            "Landroid/app/Service;"
        );
        let m = &class.methods[0];
        // 1 local + 2 params.
        assert_eq!(m.num_registers, 3);
        assert_eq!(m.param_reg(1), Reg(2));
        // The intent arg of the invoke was remapped to the param register.
        match &m.code[1] {
            Instr::Invoke { args, .. } => assert_eq!(args[0], Reg(2)),
            other => panic!("unexpected {other:?}"),
        }
        // Branch resolved past the nop.
        match &m.code[3] {
            Instr::IfEqz { target, .. } => assert_eq!(*target, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_terminator_is_added() {
        let mut apk = ApkBuilder::new("t");
        let mut class = apk.class("LA;");
        let m = class.method("f", 0, true, false);
        m.finish();
        class.finish();
        let apk = apk.finish();
        let m = &apk.dex.class_by_name("LA;").expect("class").methods[0];
        assert_eq!(m.code, vec![Instr::ReturnVoid]);
    }

    #[test]
    #[should_panic(expected = "label used but never bound")]
    fn unbound_label_panics() {
        let mut apk = ApkBuilder::new("t");
        let mut class = apk.class("LA;");
        let mut m = class.method("f", 0, true, false);
        let l = m.new_label();
        m.goto(l);
        m.finish();
    }

    #[test]
    fn manifest_building() {
        use crate::manifest::{ComponentKind, IntentFilterDecl};
        let mut apk = ApkBuilder::new("com.x");
        apk.uses_permission("android.permission.SEND_SMS");
        let mut decl = ComponentDecl::new("Lcom/x/S;", ComponentKind::Service);
        decl.intent_filters
            .push(IntentFilterDecl::for_actions(["com.x.GO"]));
        apk.add_component(decl);
        let apk = apk.finish();
        assert!(apk.manifest.has_permission("android.permission.SEND_SMS"));
        assert!(apk
            .manifest
            .component("Lcom/x/S;")
            .expect("decl")
            .is_effectively_exported());
    }
}
