//! Constant-pool references: strings, types, fields and methods.
//!
//! Like dex, an sdex file stores all names once in pools; code refers to
//! pool entries by dense indices. The pool also gives static analysis cheap
//! interning: two call sites invoking the same API share a `MethodId`.

use std::collections::HashMap;
use std::fmt;

/// Index into the string pool.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StrId(pub(crate) u32);

/// Index into the type pool.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

/// Index into the field pool.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub(crate) u32);

/// Index into the method pool.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(pub(crate) u32);

macro_rules! impl_id {
    ($ty:ident, $tag:literal) => {
        impl $ty {
            /// Dense pool index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs an id from a raw index (for codec use).
            pub fn from_index(i: usize) -> $ty {
                $ty(i as u32)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

impl_id!(StrId, "str");
impl_id!(TypeId, "type");
impl_id!(FieldId, "field");
impl_id!(MethodId, "method");

/// A method reference: declaring class, name and arity.
///
/// Arity counts explicit arguments only; instance methods additionally
/// receive the receiver in the first argument register, as in dex.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MethodRef {
    /// Declaring class (or API class for framework methods).
    pub class: TypeId,
    /// Method name.
    pub name: StrId,
    /// Number of declared parameters (excluding any receiver).
    pub arity: u8,
    /// Whether the method produces a value `move-result` can fetch.
    pub returns_value: bool,
}

/// A field reference: declaring class and name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FieldRef {
    /// Declaring class.
    pub class: TypeId,
    /// Field name.
    pub name: StrId,
}

/// The constant pools of an sdex program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pools {
    strings: Vec<String>,
    string_index: HashMap<String, StrId>,
    types: Vec<String>,
    type_index: HashMap<String, TypeId>,
    fields: Vec<FieldRef>,
    field_index: HashMap<FieldRef, FieldId>,
    methods: Vec<MethodRef>,
    method_index: HashMap<MethodRef, MethodId>,
}

impl Pools {
    /// Creates empty pools.
    pub fn new() -> Pools {
        Pools::default()
    }

    /// Interns a string.
    pub fn str(&mut self, s: impl AsRef<str>) -> StrId {
        let s = s.as_ref();
        if let Some(&id) = self.string_index.get(s) {
            return id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.string_index.insert(s.to_string(), id);
        id
    }

    /// Interns a type descriptor (e.g. `"Lcom/example/Main;"`).
    pub fn ty(&mut self, descriptor: impl AsRef<str>) -> TypeId {
        let s = descriptor.as_ref();
        if let Some(&id) = self.type_index.get(s) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(s.to_string());
        self.type_index.insert(s.to_string(), id);
        id
    }

    /// Interns a field reference.
    pub fn field(&mut self, class: TypeId, name: impl AsRef<str>) -> FieldId {
        let name = self.str(name);
        let fref = FieldRef { class, name };
        if let Some(&id) = self.field_index.get(&fref) {
            return id;
        }
        let id = FieldId(self.fields.len() as u32);
        self.fields.push(fref.clone());
        self.field_index.insert(fref, id);
        id
    }

    /// Interns a method reference.
    pub fn method(
        &mut self,
        class: TypeId,
        name: impl AsRef<str>,
        arity: u8,
        returns_value: bool,
    ) -> MethodId {
        let name = self.str(name);
        let mref = MethodRef {
            class,
            name,
            arity,
            returns_value,
        };
        if let Some(&id) = self.method_index.get(&mref) {
            return id;
        }
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(mref.clone());
        self.method_index.insert(mref, id);
        id
    }

    /// The text of a string-pool entry.
    pub fn str_at(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// The descriptor of a type-pool entry.
    pub fn type_at(&self, id: TypeId) -> &str {
        &self.types[id.index()]
    }

    /// The field reference at an id.
    pub fn field_at(&self, id: FieldId) -> &FieldRef {
        &self.fields[id.index()]
    }

    /// The method reference at an id.
    pub fn method_at(&self, id: MethodId) -> &MethodRef {
        &self.methods[id.index()]
    }

    /// Looks up a type descriptor without interning.
    pub fn find_type(&self, descriptor: &str) -> Option<TypeId> {
        self.type_index.get(descriptor).copied()
    }

    /// Number of strings.
    pub fn num_strings(&self) -> usize {
        self.strings.len()
    }

    /// Number of types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Number of methods.
    pub fn num_methods(&self) -> usize {
        self.methods.len()
    }

    /// Iterates over string-pool entries in index order.
    pub fn strings(&self) -> impl Iterator<Item = &str> + '_ {
        self.strings.iter().map(String::as_str)
    }

    /// Iterates over type-pool entries in index order.
    pub fn types(&self) -> impl Iterator<Item = &str> + '_ {
        self.types.iter().map(String::as_str)
    }

    /// Iterates over field-pool entries in index order.
    pub fn fields(&self) -> impl Iterator<Item = &FieldRef> + '_ {
        self.fields.iter()
    }

    /// Iterates over method-pool entries in index order.
    pub fn methods(&self) -> impl Iterator<Item = &MethodRef> + '_ {
        self.methods.iter()
    }

    /// Reassembles pools from decoded parts, rebuilding the intern indices.
    ///
    /// Returns `None` if entries are duplicated or reference out-of-range
    /// pool indices.
    pub(crate) fn from_parts(
        strings: Vec<String>,
        types: Vec<String>,
        fields: Vec<FieldRef>,
        methods: Vec<MethodRef>,
    ) -> Option<Pools> {
        let mut p = Pools::new();
        for s in strings {
            if p.string_index.contains_key(&s) {
                return None;
            }
            let id = StrId(p.strings.len() as u32);
            p.string_index.insert(s.clone(), id);
            p.strings.push(s);
        }
        for t in types {
            if p.type_index.contains_key(&t) {
                return None;
            }
            let id = TypeId(p.types.len() as u32);
            p.type_index.insert(t.clone(), id);
            p.types.push(t);
        }
        for f in fields {
            if f.class.index() >= p.types.len()
                || f.name.index() >= p.strings.len()
                || p.field_index.contains_key(&f)
            {
                return None;
            }
            let id = FieldId(p.fields.len() as u32);
            p.field_index.insert(f.clone(), id);
            p.fields.push(f);
        }
        for m in methods {
            if m.class.index() >= p.types.len()
                || m.name.index() >= p.strings.len()
                || p.method_index.contains_key(&m)
            {
                return None;
            }
            let id = MethodId(p.methods.len() as u32);
            p.method_index.insert(m.clone(), id);
            p.methods.push(m);
        }
        Some(p)
    }

    /// Human-readable `Class.name/arity` form of a method, for diagnostics.
    pub fn method_display(&self, id: MethodId) -> String {
        let m = self.method_at(id);
        format!(
            "{}->{}({})",
            self.type_at(m.class),
            self.str_at(m.name),
            m.arity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut p = Pools::new();
        let a = p.str("hello");
        let b = p.str("hello");
        assert_eq!(a, b);
        assert_eq!(p.num_strings(), 1);
        let t1 = p.ty("Lcom/App;");
        let t2 = p.ty("Lcom/App;");
        assert_eq!(t1, t2);
    }

    #[test]
    fn method_identity_includes_arity() {
        let mut p = Pools::new();
        let c = p.ty("LFoo;");
        let m1 = p.method(c, "run", 0, false);
        let m2 = p.method(c, "run", 1, false);
        assert_ne!(m1, m2, "overloads by arity are distinct");
        assert_eq!(p.num_methods(), 2);
    }

    #[test]
    fn lookups_round_trip() {
        let mut p = Pools::new();
        let c = p.ty("LFoo;");
        let f = p.field(c, "count");
        let fr = p.field_at(f);
        assert_eq!(fr.class, c);
        assert_eq!(p.str_at(fr.name), "count");
        assert_eq!(p.find_type("LFoo;"), Some(c));
        assert_eq!(p.find_type("LBar;"), None);
    }

    #[test]
    fn method_display_formats() {
        let mut p = Pools::new();
        let c = p.ty("Landroid/telephony/SmsManager;");
        let m = p.method(c, "sendTextMessage", 5, false);
        assert_eq!(
            p.method_display(m),
            "Landroid/telephony/SmsManager;->sendTextMessage(5)"
        );
    }
}
