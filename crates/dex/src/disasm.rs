//! A textual disassembler for sdex programs.
//!
//! Renders packages in a smali-like listing: manifest summary, classes,
//! methods and one instruction per line with pool references resolved to
//! names. Primarily a debugging and corpus-inspection tool; the output is
//! deterministic, so tests can assert on it.

use std::fmt::Write;

use crate::instr::{BinOp, Instr, InvokeKind};
use crate::program::{Apk, Dex, Method};

/// Renders one instruction.
pub fn instruction(dex: &Dex, instr: &Instr) -> String {
    let pools = &dex.pools;
    match instr {
        Instr::Nop => "nop".into(),
        Instr::ConstString { dst, value } => {
            format!("const-string {dst:?}, {:?}", pools.str_at(*value))
        }
        Instr::ConstInt { dst, value } => format!("const-int {dst:?}, {value}"),
        Instr::ConstNull { dst } => format!("const-null {dst:?}"),
        Instr::Move { dst, src } => format!("move {dst:?}, {src:?}"),
        Instr::NewInstance { dst, class } => {
            format!("new-instance {dst:?}, {}", pools.type_at(*class))
        }
        Instr::Invoke { kind, method, args } => {
            let kind = match kind {
                InvokeKind::Virtual => "invoke-virtual",
                InvokeKind::Static => "invoke-static",
                InvokeKind::Direct => "invoke-direct",
            };
            let args: Vec<String> = args.iter().map(|r| format!("{r:?}")).collect();
            format!(
                "{kind} {{{}}}, {}",
                args.join(", "),
                pools.method_display(*method)
            )
        }
        Instr::MoveResult { dst } => format!("move-result {dst:?}"),
        Instr::IGet { dst, object, field } => {
            let f = pools.field_at(*field);
            format!(
                "iget {dst:?}, {object:?}, {}->{}",
                pools.type_at(f.class),
                pools.str_at(f.name)
            )
        }
        Instr::IPut { src, object, field } => {
            let f = pools.field_at(*field);
            format!(
                "iput {src:?}, {object:?}, {}->{}",
                pools.type_at(f.class),
                pools.str_at(f.name)
            )
        }
        Instr::SGet { dst, field } => {
            let f = pools.field_at(*field);
            format!(
                "sget {dst:?}, {}->{}",
                pools.type_at(f.class),
                pools.str_at(f.name)
            )
        }
        Instr::SPut { src, field } => {
            let f = pools.field_at(*field);
            format!(
                "sput {src:?}, {}->{}",
                pools.type_at(f.class),
                pools.str_at(f.name)
            )
        }
        Instr::IfEqz { reg, target } => format!("if-eqz {reg:?}, :{target}"),
        Instr::IfNez { reg, target } => format!("if-nez {reg:?}, :{target}"),
        Instr::Goto { target } => format!("goto :{target}"),
        Instr::BinOp { op, dst, lhs, rhs } => {
            let op = match op {
                BinOp::Add => "add-int",
                BinOp::Sub => "sub-int",
                BinOp::Mul => "mul-int",
                BinOp::CmpEq => "cmp-eq",
            };
            format!("{op} {dst:?}, {lhs:?}, {rhs:?}")
        }
        Instr::ReturnVoid => "return-void".into(),
        Instr::Return { reg } => format!("return {reg:?}"),
        Instr::Throw { reg } => format!("throw {reg:?}"),
    }
}

/// Renders one method body with addresses and branch-target labels.
pub fn method(dex: &Dex, m: &Method) -> String {
    let mut out = String::new();
    let name = dex.pools.str_at(m.name);
    let _ = writeln!(
        out,
        ".method {}{name} (params={}, registers={}){}",
        if m.is_static { "static " } else { "" },
        m.num_params,
        m.num_registers,
        if m.returns_value { " -> value" } else { "" },
    );
    // Collect branch targets so labels are printed inline.
    let targets: std::collections::BTreeSet<u32> =
        m.code.iter().filter_map(Instr::branch_target).collect();
    for (pc, instr) in m.code.iter().enumerate() {
        if targets.contains(&(pc as u32)) {
            let _ = writeln!(out, "  :{pc}");
        }
        let _ = writeln!(out, "  {pc:4}: {}", instruction(dex, instr));
    }
    out.push_str(".end method\n");
    out
}

/// Renders a whole package: manifest summary plus all classes.
pub fn package(apk: &Apk) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# package {}", apk.manifest.package);
    for p in &apk.manifest.uses_permissions {
        let _ = writeln!(out, "# uses-permission {p}");
    }
    for c in &apk.manifest.components {
        let _ = writeln!(
            out,
            "# {} {} exported={}",
            c.kind,
            c.class,
            c.is_effectively_exported()
        );
        for f in &c.intent_filters {
            let _ = writeln!(out, "#   filter actions={:?}", f.actions);
        }
    }
    for class in &apk.dex.classes {
        let _ = writeln!(
            out,
            "\n.class {}{}",
            apk.dex.pools.type_at(class.ty),
            class
                .super_ty
                .map(|s| format!(" extends {}", apk.dex.pools.type_at(s)))
                .unwrap_or_default()
        );
        for f in &class.fields {
            let _ = writeln!(
                out,
                ".field {}{}",
                if f.is_static { "static " } else { "" },
                apk.dex.pools.str_at(f.name)
            );
        }
        for m in &class.methods {
            out.push_str(&method(&apk.dex, m));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ApkBuilder;
    use crate::manifest::{ComponentDecl, ComponentKind};

    fn sample() -> Apk {
        let mut apk = ApkBuilder::new("com.disasm");
        apk.uses_permission("android.permission.SEND_SMS");
        apk.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LMain;", "Landroid/app/Activity;");
        cb.field("count", false);
        let mut m = cb.method("onCreate", 1, false, false);
        let v = m.reg();
        let w = m.reg();
        let skip = m.new_label();
        m.const_string(v, "hello");
        m.const_int(w, 7);
        m.if_eqz(w, skip);
        m.invoke_virtual("Landroid/util/Log;", "d", &[v], false);
        m.bind(skip);
        m.iput(w, m.this(), "LMain;", "count");
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    #[test]
    fn listing_contains_every_section() {
        let text = package(&sample());
        assert!(text.contains("# package com.disasm"));
        assert!(text.contains("# uses-permission android.permission.SEND_SMS"));
        assert!(text.contains("# activity LMain; exported=false"));
        assert!(text.contains(".class LMain; extends Landroid/app/Activity;"));
        assert!(text.contains(".field count"));
        assert!(text.contains(".method onCreate"));
        assert!(text.contains("const-string v0, \"hello\""));
        assert!(text.contains("invoke-virtual {v0}, Landroid/util/Log;->d(1)"));
        assert!(text.contains("iput v1, v2, LMain;->count"));
        assert!(text.contains("return-void"));
    }

    #[test]
    fn branch_targets_get_labels() {
        let text = package(&sample());
        assert!(text.contains("if-eqz v1, :4"));
        assert!(
            text.contains("  :4\n"),
            "label line before the target: {text}"
        );
    }

    #[test]
    fn disassembly_is_deterministic() {
        assert_eq!(package(&sample()), package(&sample()));
    }

    #[test]
    fn every_opcode_renders() {
        use crate::instr::Reg;
        let mut dex = Dex::new();
        let t = dex.pools.ty("LX;");
        let s = dex.pools.str("s");
        let f = dex.pools.field(t, "fld");
        let m = dex.pools.method(t, "m", 1, true);
        let all = vec![
            Instr::Nop,
            Instr::ConstString {
                dst: Reg(0),
                value: s,
            },
            Instr::ConstInt {
                dst: Reg(0),
                value: -3,
            },
            Instr::ConstNull { dst: Reg(0) },
            Instr::Move {
                dst: Reg(0),
                src: Reg(1),
            },
            Instr::NewInstance {
                dst: Reg(0),
                class: t,
            },
            Instr::Invoke {
                kind: InvokeKind::Direct,
                method: m,
                args: vec![Reg(0)],
            },
            Instr::MoveResult { dst: Reg(0) },
            Instr::IGet {
                dst: Reg(0),
                object: Reg(1),
                field: f,
            },
            Instr::IPut {
                src: Reg(0),
                object: Reg(1),
                field: f,
            },
            Instr::SGet {
                dst: Reg(0),
                field: f,
            },
            Instr::SPut {
                src: Reg(0),
                field: f,
            },
            Instr::IfEqz {
                reg: Reg(0),
                target: 0,
            },
            Instr::IfNez {
                reg: Reg(0),
                target: 0,
            },
            Instr::Goto { target: 0 },
            Instr::BinOp {
                op: BinOp::Sub,
                dst: Reg(0),
                lhs: Reg(1),
                rhs: Reg(2),
            },
            Instr::ReturnVoid,
            Instr::Return { reg: Reg(0) },
            Instr::Throw { reg: Reg(0) },
        ];
        for i in &all {
            let text = instruction(&dex, i);
            assert!(!text.is_empty());
        }
    }
}
