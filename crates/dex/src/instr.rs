//! The sdex instruction set.
//!
//! A register-based bytecode modelled on Dalvik: methods declare a register
//! frame, arguments arrive in the highest registers, `invoke` results are
//! fetched with `move-result`, and branches target instruction indices.

use std::fmt;

use crate::refs::{FieldId, MethodId, StrId, TypeId};

/// A virtual register within a method frame.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl Reg {
    /// Dense register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Invocation kind, mirroring dex's `invoke-*` family.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InvokeKind {
    /// Dispatch on the runtime class of the receiver (first argument).
    Virtual,
    /// Static method; no receiver.
    Static,
    /// Direct (constructor / private); receiver in first argument.
    Direct,
}

/// Binary integer operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Comparison: 1 if equal else 0.
    CmpEq,
}

/// One sdex instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Load a string-pool constant.
    ConstString {
        /// Destination register.
        dst: Reg,
        /// String-pool entry.
        value: StrId,
    },
    /// Load an integer constant.
    ConstInt {
        /// Destination register.
        dst: Reg,
        /// The constant.
        value: i64,
    },
    /// Load null.
    ConstNull {
        /// Destination register.
        dst: Reg,
    },
    /// Register-to-register copy.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Allocate an object of a class.
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Class to instantiate.
        class: TypeId,
    },
    /// Invoke a method; arguments are registers (receiver first for
    /// non-static kinds).
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Method-pool entry.
        method: MethodId,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// Fetch the result of the most recent invoke.
    MoveResult {
        /// Destination register.
        dst: Reg,
    },
    /// Read an instance field.
    IGet {
        /// Destination register.
        dst: Reg,
        /// Object register.
        object: Reg,
        /// Field-pool entry.
        field: FieldId,
    },
    /// Write an instance field.
    IPut {
        /// Source register.
        src: Reg,
        /// Object register.
        object: Reg,
        /// Field-pool entry.
        field: FieldId,
    },
    /// Read a static field.
    SGet {
        /// Destination register.
        dst: Reg,
        /// Field-pool entry.
        field: FieldId,
    },
    /// Write a static field.
    SPut {
        /// Source register.
        src: Reg,
        /// Field-pool entry.
        field: FieldId,
    },
    /// Branch if the register is zero / null.
    IfEqz {
        /// Tested register.
        reg: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Branch if the register is non-zero / non-null.
    IfNez {
        /// Tested register.
        reg: Reg,
        /// Target instruction index.
        target: u32,
    },
    /// Unconditional branch.
    Goto {
        /// Target instruction index.
        target: u32,
    },
    /// Integer binary operation.
    BinOp {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// Return without a value.
    ReturnVoid,
    /// Return a value.
    Return {
        /// Returned register.
        reg: Reg,
    },
    /// Throw the object in the register.
    Throw {
        /// Thrown register.
        reg: Reg,
    },
}

impl Instr {
    /// The branch target, if this is a branch instruction.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::IfEqz { target, .. } | Instr::IfNez { target, .. } | Instr::Goto { target } => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// Returns `true` if control never falls through to the next
    /// instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Goto { .. } | Instr::ReturnVoid | Instr::Return { .. } | Instr::Throw { .. }
        )
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::ConstString { dst, .. }
            | Instr::ConstInt { dst, .. }
            | Instr::ConstNull { dst }
            | Instr::Move { dst, .. }
            | Instr::NewInstance { dst, .. }
            | Instr::MoveResult { dst }
            | Instr::IGet { dst, .. }
            | Instr::SGet { dst, .. }
            | Instr::BinOp { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The registers this instruction uses.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Move { src, .. } => vec![*src],
            Instr::Invoke { args, .. } => args.clone(),
            Instr::IGet { object, .. } => vec![*object],
            Instr::IPut { src, object, .. } => vec![*src, *object],
            Instr::SPut { src, .. } => vec![*src],
            Instr::IfEqz { reg, .. } | Instr::IfNez { reg, .. } => vec![*reg],
            Instr::BinOp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Return { reg } | Instr::Throw { reg } => vec![*reg],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_metadata() {
        let g = Instr::Goto { target: 7 };
        assert_eq!(g.branch_target(), Some(7));
        assert!(g.is_terminator());
        let iff = Instr::IfEqz {
            reg: Reg(0),
            target: 3,
        };
        assert_eq!(iff.branch_target(), Some(3));
        assert!(!iff.is_terminator());
        assert!(Instr::ReturnVoid.is_terminator());
        assert_eq!(Instr::Nop.branch_target(), None);
    }

    #[test]
    fn def_use_sets() {
        let mv = Instr::Move {
            dst: Reg(1),
            src: Reg(2),
        };
        assert_eq!(mv.def(), Some(Reg(1)));
        assert_eq!(mv.uses(), vec![Reg(2)]);

        let iput = Instr::IPut {
            src: Reg(3),
            object: Reg(4),
            field: FieldId::from_index(0),
        };
        assert_eq!(iput.def(), None);
        assert_eq!(iput.uses(), vec![Reg(3), Reg(4)]);

        let binop = Instr::BinOp {
            op: BinOp::Add,
            dst: Reg(0),
            lhs: Reg(1),
            rhs: Reg(2),
        };
        assert_eq!(binop.def(), Some(Reg(0)));
        assert_eq!(binop.uses(), vec![Reg(1), Reg(2)]);
    }
}
