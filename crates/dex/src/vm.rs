//! A small interpreter for sdex programs.
//!
//! The enforcement runtime (the paper's APE) executes components' bytecode
//! on this VM: framework calls (`Landroid/...` APIs) are routed to a
//! pluggable [`Syscalls`] implementation, which is exactly where the hook
//! manager intercepts ICC operations, while program-defined methods run
//! natively with virtual dispatch over the class hierarchy.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::VmError;
use crate::instr::{BinOp, Instr, InvokeKind};
use crate::program::{Dex, Method};
use crate::refs::TypeId;

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Null / absent.
    Null,
    /// A 64-bit integer.
    Int(i64),
    /// An immutable string.
    Str(Arc<str>),
    /// A heap object reference.
    Object(ObjRef),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Truthiness used by `if-eqz` / `if-nez`.
    pub fn is_zero(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Int(i) => *i == 0,
            Value::Str(_) | Value::Object(_) => false,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object reference, if this is an object.
    pub fn as_object(&self) -> Option<ObjRef> {
        match self {
            Value::Object(r) => Some(*r),
            _ => None,
        }
    }
}

/// A reference into a [`Heap`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct ObjRef(u32);

/// A heap object: a class name and named fields.
#[derive(Clone, Debug, Default)]
pub struct Object {
    /// Runtime class descriptor.
    pub class: String,
    /// Field values by name.
    pub fields: HashMap<String, Value>,
}

/// The VM heap: objects plus static fields.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
    statics: HashMap<(String, String), Value>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocates an object of the given class.
    pub fn alloc(&mut self, class: impl Into<String>) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(Object {
            class: class.into(),
            fields: HashMap::new(),
        });
        r
    }

    /// Reads an object.
    pub fn get(&self, r: ObjRef) -> &Object {
        &self.objects[r.0 as usize]
    }

    /// Mutably accesses an object.
    pub fn get_mut(&mut self, r: ObjRef) -> &mut Object {
        &mut self.objects[r.0 as usize]
    }

    /// Reads a static field (Null if unset).
    pub fn static_get(&self, class: &str, field: &str) -> Value {
        self.statics
            .get(&(class.to_string(), field.to_string()))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Writes a static field.
    pub fn static_put(&mut self, class: &str, field: &str, value: Value) {
        self.statics
            .insert((class.to_string(), field.to_string()), value);
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if no objects were allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

/// Host interface for methods the program does not define (framework APIs).
pub trait Syscalls {
    /// Handles an external invocation.
    ///
    /// `class` and `name` are descriptor strings (e.g.
    /// `"Landroid/content/Intent;"`, `"setAction"`); `args` include the
    /// receiver for instance calls. Return `Ok(Some(v))` to provide a
    /// result for `move-result`, `Ok(None)` for void.
    ///
    /// # Errors
    ///
    /// Implementations may return [`VmError::UnresolvedMethod`] for APIs
    /// they do not model.
    fn call(
        &mut self,
        heap: &mut Heap,
        class: &str,
        name: &str,
        args: &[Value],
    ) -> Result<Option<Value>, VmError>;
}

/// A [`Syscalls`] that models every unknown API as a no-op returning null.
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSyscalls;

impl Syscalls for NopSyscalls {
    fn call(
        &mut self,
        _heap: &mut Heap,
        _class: &str,
        _name: &str,
        _args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        Ok(Some(Value::Null))
    }
}

/// The interpreter for one loaded program.
#[derive(Debug)]
pub struct Vm<'p> {
    dex: &'p Dex,
    /// Remaining instruction budget (runaway-loop guard).
    budget: u64,
    /// Instructions executed so far.
    executed: u64,
}

/// Default per-[`Vm`] instruction budget.
pub const DEFAULT_BUDGET: u64 = 1_000_000;

impl<'p> Vm<'p> {
    /// Creates a VM over a program with the default budget.
    pub fn new(dex: &'p Dex) -> Vm<'p> {
        Vm::with_budget(dex, DEFAULT_BUDGET)
    }

    /// Creates a VM with an explicit instruction budget.
    pub fn with_budget(dex: &'p Dex, budget: u64) -> Vm<'p> {
        Vm {
            dex,
            budget,
            executed: 0,
        }
    }

    /// Instructions executed so far (across all calls on this VM).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Invokes a program method by class descriptor and name.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnresolvedMethod`] if the class or method is not
    /// defined, or any error raised during execution.
    pub fn invoke(
        &mut self,
        heap: &mut Heap,
        sys: &mut dyn Syscalls,
        class_descriptor: &str,
        method_name: &str,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        let ty = self
            .dex
            .pools
            .find_type(class_descriptor)
            .ok_or_else(|| VmError::UnresolvedMethod(class_descriptor.to_string()))?;
        let (def_ty, method) = self.dex.resolve_method(ty, method_name).ok_or_else(|| {
            VmError::UnresolvedMethod(format!("{class_descriptor}->{method_name}"))
        })?;
        let method = method.clone();
        self.run(heap, sys, def_ty, &method, args)
    }

    fn run(
        &mut self,
        heap: &mut Heap,
        sys: &mut dyn Syscalls,
        _def_ty: TypeId,
        method: &Method,
        args: Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        let mut regs = vec![Value::Null; method.num_registers as usize];
        let first_param = method.num_registers as usize - method.num_params as usize;
        for (i, v) in args
            .into_iter()
            .enumerate()
            .take(method.num_params as usize)
        {
            regs[first_param + i] = v;
        }
        let mut pc = 0usize;
        let mut pending: Option<Value> = None;
        while pc < method.code.len() {
            if self.budget == 0 {
                return Err(VmError::BudgetExhausted);
            }
            self.budget -= 1;
            self.executed += 1;
            let instr = &method.code[pc];
            pc += 1;
            match instr {
                Instr::Nop => {}
                Instr::ConstString { dst, value } => {
                    regs[dst.index()] = Value::str(self.dex.pools.str_at(*value));
                }
                Instr::ConstInt { dst, value } => {
                    regs[dst.index()] = Value::Int(*value);
                }
                Instr::ConstNull { dst } => {
                    regs[dst.index()] = Value::Null;
                }
                Instr::Move { dst, src } => {
                    regs[dst.index()] = regs[src.index()].clone();
                }
                Instr::NewInstance { dst, class } => {
                    let descriptor = self.dex.pools.type_at(*class).to_string();
                    regs[dst.index()] = Value::Object(heap.alloc(descriptor));
                }
                Instr::Invoke {
                    kind,
                    method: m,
                    args,
                } => {
                    let mref = self.dex.pools.method_at(*m).clone();
                    let arg_values: Vec<Value> =
                        args.iter().map(|r| regs[r.index()].clone()).collect();
                    let declared_class = self.dex.pools.type_at(mref.class).to_string();
                    let name = self.dex.pools.str_at(mref.name).to_string();
                    // Virtual dispatch: prefer the runtime class of the
                    // receiver when it names a program class.
                    let dispatch_ty = match kind {
                        InvokeKind::Virtual | InvokeKind::Direct => arg_values
                            .first()
                            .and_then(Value::as_object)
                            .map(|o| heap.get(o).class.clone())
                            .and_then(|c| self.dex.pools.find_type(&c))
                            .or_else(|| self.dex.pools.find_type(&declared_class)),
                        InvokeKind::Static => self.dex.pools.find_type(&declared_class),
                    };
                    let resolved = dispatch_ty.and_then(|t| {
                        self.dex
                            .resolve_method(t, &name)
                            .map(|(dt, m)| (dt, m.clone()))
                    });
                    let result = match resolved {
                        Some((dt, target)) => self.run(heap, sys, dt, &target, arg_values)?,
                        None => sys.call(heap, &declared_class, &name, &arg_values)?,
                    };
                    pending = result;
                }
                Instr::MoveResult { dst } => {
                    regs[dst.index()] = pending.take().ok_or(VmError::NoPendingResult)?;
                }
                Instr::IGet { dst, object, field } => {
                    let obj = regs[object.index()]
                        .as_object()
                        .ok_or(VmError::NotAnObject("iget"))?;
                    let fref = self.dex.pools.field_at(*field);
                    let fname = self.dex.pools.str_at(fref.name);
                    regs[dst.index()] = heap
                        .get(obj)
                        .fields
                        .get(fname)
                        .cloned()
                        .unwrap_or(Value::Null);
                }
                Instr::IPut { src, object, field } => {
                    let obj = regs[object.index()]
                        .as_object()
                        .ok_or(VmError::NotAnObject("iput"))?;
                    let fref = self.dex.pools.field_at(*field);
                    let fname = self.dex.pools.str_at(fref.name).to_string();
                    let v = regs[src.index()].clone();
                    heap.get_mut(obj).fields.insert(fname, v);
                }
                Instr::SGet { dst, field } => {
                    let fref = self.dex.pools.field_at(*field);
                    let class = self.dex.pools.type_at(fref.class);
                    let fname = self.dex.pools.str_at(fref.name);
                    regs[dst.index()] = heap.static_get(class, fname);
                }
                Instr::SPut { src, field } => {
                    let fref = self.dex.pools.field_at(*field);
                    let class = self.dex.pools.type_at(fref.class).to_string();
                    let fname = self.dex.pools.str_at(fref.name).to_string();
                    heap.static_put(&class, &fname, regs[src.index()].clone());
                }
                Instr::IfEqz { reg, target } => {
                    if regs[reg.index()].is_zero() {
                        pc = *target as usize;
                    }
                }
                Instr::IfNez { reg, target } => {
                    if !regs[reg.index()].is_zero() {
                        pc = *target as usize;
                    }
                }
                Instr::Goto { target } => {
                    pc = *target as usize;
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let l = match &regs[lhs.index()] {
                        Value::Int(i) => *i,
                        _ => 0,
                    };
                    let r = match &regs[rhs.index()] {
                        Value::Int(i) => *i,
                        _ => 0,
                    };
                    regs[dst.index()] = Value::Int(match op {
                        BinOp::Add => l.wrapping_add(r),
                        BinOp::Sub => l.wrapping_sub(r),
                        BinOp::Mul => l.wrapping_mul(r),
                        BinOp::CmpEq => i64::from(l == r),
                    });
                }
                Instr::ReturnVoid => return Ok(None),
                Instr::Return { reg } => return Ok(Some(regs[reg.index()].clone())),
                Instr::Throw { .. } => return Err(VmError::UncaughtThrow),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ApkBuilder;
    use crate::instr::BinOp;

    /// Syscalls that record every external call.
    #[derive(Default)]
    struct Recorder {
        calls: Vec<(String, String, usize)>,
    }

    impl Syscalls for Recorder {
        fn call(
            &mut self,
            _heap: &mut Heap,
            class: &str,
            name: &str,
            args: &[Value],
        ) -> Result<Option<Value>, VmError> {
            self.calls
                .push((class.to_string(), name.to_string(), args.len()));
            Ok(Some(Value::str("syscall-result")))
        }
    }

    #[test]
    fn arithmetic_and_branches() {
        let mut apk = ApkBuilder::new("t");
        {
            let mut class = apk.class("LMath;");
            // fn triple(x) { r = x + x; r = r + x; return r }
            let mut m = class.method("triple", 1, true, true);
            let r = m.reg();
            let x = m.param(0);
            m.binop(BinOp::Add, r, x, x);
            m.binop(BinOp::Add, r, r, x);
            m.ret(r);
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let mut vm = Vm::new(&apk.dex);
        let mut heap = Heap::new();
        let result = vm
            .invoke(
                &mut heap,
                &mut NopSyscalls,
                "LMath;",
                "triple",
                vec![Value::Int(7)],
            )
            .expect("runs");
        assert_eq!(result, Some(Value::Int(21)));
    }

    #[test]
    fn loop_with_budget_guard() {
        let mut apk = ApkBuilder::new("t");
        {
            let mut class = apk.class("LLoop;");
            let mut m = class.method("spin", 0, true, false);
            let top = m.new_label();
            m.bind(top);
            m.goto(top);
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let mut vm = Vm::with_budget(&apk.dex, 1000);
        let mut heap = Heap::new();
        let err = vm
            .invoke(&mut heap, &mut NopSyscalls, "LLoop;", "spin", vec![])
            .expect_err("must exhaust");
        assert_eq!(err, VmError::BudgetExhausted);
    }

    #[test]
    fn syscalls_receive_framework_calls() {
        let mut apk = ApkBuilder::new("t");
        {
            let mut class = apk.class("LApp;");
            let mut m = class.method("go", 0, true, false);
            let v0 = m.reg();
            let v1 = m.reg();
            m.new_instance(v0, "Landroid/content/Intent;");
            m.const_string(v1, "showLoc");
            m.invoke_virtual("Landroid/content/Intent;", "setAction", &[v0, v1], false);
            m.invoke_virtual("Landroid/content/Intent;", "getAction", &[v0], true);
            m.move_result(v1);
            m.ret_void();
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let mut vm = Vm::new(&apk.dex);
        let mut heap = Heap::new();
        let mut sys = Recorder::default();
        vm.invoke(&mut heap, &mut sys, "LApp;", "go", vec![])
            .expect("runs");
        assert_eq!(sys.calls.len(), 2);
        assert_eq!(sys.calls[0].1, "setAction");
        assert_eq!(sys.calls[0].2, 2);
        assert_eq!(sys.calls[1].1, "getAction");
    }

    #[test]
    fn fields_and_statics() {
        let mut apk = ApkBuilder::new("t");
        {
            let mut class = apk.class("LBox;");
            class.field("content", false);
            // store(box, v) { box.content = v }
            let mut m = class.method("store", 2, true, false);
            m.iput(m.param(1), m.param(0), "LBox;", "content");
            m.ret_void();
            m.finish();
            // load(box) -> box.content
            let mut m = class.method("load", 1, true, true);
            let r = m.reg();
            m.iget(r, m.param(0), "LBox;", "content");
            m.ret(r);
            m.finish();
            // stash(v) { LBox;.global = v } ; unstash() -> global
            let mut m = class.method("stash", 1, true, false);
            m.sput(m.param(0), "LBox;", "global");
            m.ret_void();
            m.finish();
            let mut m = class.method("unstash", 0, true, true);
            let r = m.reg();
            m.sget(r, "LBox;", "global");
            m.ret(r);
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let mut vm = Vm::new(&apk.dex);
        let mut heap = Heap::new();
        let obj = Value::Object(heap.alloc("LBox;"));
        vm.invoke(
            &mut heap,
            &mut NopSyscalls,
            "LBox;",
            "store",
            vec![obj.clone(), Value::Int(5)],
        )
        .expect("store");
        let loaded = vm
            .invoke(&mut heap, &mut NopSyscalls, "LBox;", "load", vec![obj])
            .expect("load");
        assert_eq!(loaded, Some(Value::Int(5)));
        vm.invoke(
            &mut heap,
            &mut NopSyscalls,
            "LBox;",
            "stash",
            vec![Value::str("x")],
        )
        .expect("stash");
        let un = vm
            .invoke(&mut heap, &mut NopSyscalls, "LBox;", "unstash", vec![])
            .expect("unstash");
        assert_eq!(un, Some(Value::str("x")));
    }

    #[test]
    fn virtual_dispatch_uses_runtime_class() {
        let mut apk = ApkBuilder::new("t");
        {
            let mut class = apk.class("LBase;");
            let mut m = class.method("tag", 1, false, true);
            let r = m.reg();
            m.const_int(r, 1);
            m.ret(r);
            m.finish();
            class.finish();
        }
        {
            let mut class = apk.class_extends("LDerived;", "LBase;");
            let mut m = class.method("tag", 1, false, true);
            let r = m.reg();
            m.const_int(r, 2);
            m.ret(r);
            m.finish();
            class.finish();
        }
        {
            // calls tag() through the Base-typed method ref on a Derived obj
            let mut class = apk.class("LMain;");
            let mut m = class.method("go", 0, true, true);
            let v = m.reg();
            m.new_instance(v, "LDerived;");
            m.invoke_virtual("LBase;", "tag", &[v], true);
            m.move_result(v);
            m.ret(v);
            m.finish();
            class.finish();
        }
        let apk = apk.finish();
        let mut vm = Vm::new(&apk.dex);
        let mut heap = Heap::new();
        let r = vm
            .invoke(&mut heap, &mut NopSyscalls, "LMain;", "go", vec![])
            .expect("runs");
        assert_eq!(r, Some(Value::Int(2)), "override must win");
    }

    #[test]
    fn unresolved_program_method_errors() {
        let apk = ApkBuilder::new("t").finish();
        let mut vm = Vm::new(&apk.dex);
        let mut heap = Heap::new();
        let err = vm
            .invoke(&mut heap, &mut NopSyscalls, "LNope;", "x", vec![])
            .expect_err("missing");
        assert!(matches!(err, VmError::UnresolvedMethod(_)));
    }
}
