//! Error types for decoding and executing sdex binaries.

use std::fmt;

/// Errors raised while decoding an sdex binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexError {
    /// The input ended before the expected structure was complete.
    Truncated,
    /// The magic bytes did not match `SDEX`.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The payload checksum did not match.
    ChecksumMismatch,
    /// An unknown instruction opcode was encountered.
    BadOpcode(u8),
    /// An index referenced a pool entry that does not exist.
    BadIndex {
        /// Which pool was indexed (e.g. `"string"`).
        pool: &'static str,
        /// The offending index.
        index: u32,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Structural invariants were violated (duplicate pool entries,
    /// branch target out of range, etc.).
    Malformed(&'static str),
}

impl fmt::Display for DexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexError::Truncated => write!(f, "input truncated"),
            DexError::BadMagic => write!(f, "bad magic bytes"),
            DexError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DexError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            DexError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DexError::BadIndex { pool, index } => {
                write!(f, "index {index} out of range for {pool} pool")
            }
            DexError::BadUtf8 => write!(f, "invalid utf-8 in string entry"),
            DexError::Malformed(what) => write!(f, "malformed binary: {what}"),
        }
    }
}

impl std::error::Error for DexError {}

/// Errors raised by the sdex interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// A method was invoked that neither the program nor the syscall layer
    /// could resolve.
    UnresolvedMethod(String),
    /// `move-result` with no preceding value-producing invoke.
    NoPendingResult,
    /// A field access on a non-object value.
    NotAnObject(&'static str),
    /// The step budget was exhausted (runaway loop guard).
    BudgetExhausted,
    /// An explicit `throw` was not caught (sdex has no catch blocks).
    UncaughtThrow,
    /// Register index out of frame bounds.
    BadRegister(u16),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::UnresolvedMethod(m) => write!(f, "unresolved method {m}"),
            VmError::NoPendingResult => write!(f, "move-result without pending result"),
            VmError::NotAnObject(ctx) => write!(f, "non-object value in {ctx}"),
            VmError::BudgetExhausted => write!(f, "execution budget exhausted"),
            VmError::UncaughtThrow => write!(f, "uncaught throw"),
            VmError::BadRegister(r) => write!(f, "register v{r} out of bounds"),
        }
    }
}

impl std::error::Error for VmError {}
