//! Live operational metrics for long-running services: gauges,
//! rolling-window latency histograms, and counter delta snapshots.
//!
//! The end-of-run [`Trace`](crate::export::Trace) snapshot answers
//! "where did the time go" for a batch pipeline; a daemon serving
//! decisions for days needs the *windowed* version of the same
//! question — p50/p99 over the last ten seconds, not since boot. The
//! primitives here are deliberately tiny and lock-light so they can sit
//! on a hot request path:
//!
//! * [`Gauge`] — a last-value-wins instantaneous metric (queue depth,
//!   subscriber count), one relaxed atomic;
//! * [`RollingHistogram`] — a ring of fixed-width time slices, each a
//!   decade-bucket [`Histogram`]; recording touches exactly one slice
//!   mutex (uncontended in the common case) and snapshotting merges the
//!   slices covering the requested window without ever stopping
//!   recorders;
//! * [`CounterDeltas`] — turns the collector's monotonic counters into
//!   per-scrape deltas ("what advanced since the last `metrics` call").

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::metrics::{Histogram, HistogramSnapshot, LATENCY_BOUNDS_NS};

/// A last-value-wins instantaneous metric.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge reading 0.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the current value by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The standard rolling windows: label and width in seconds.
pub const ROLLING_WINDOWS: [(&str, u64); 3] = [("10s", 10), ("1m", 60), ("5m", 300)];

/// One time slice of a [`RollingHistogram`]: which period it currently
/// holds, and the samples recorded in that period.
struct Slice {
    /// `u64::MAX` marks a slice that has never been written.
    period: u64,
    hist: Histogram,
}

/// A rolling-window histogram: a ring of fixed-width time slices over
/// the decade-bucket [`Histogram`].
///
/// Recording stamps the sample into the slice owning the current
/// period, lazily resetting slices whose period lapped the ring.
/// [`RollingHistogram::window`] merges every slice inside the last
/// `window` of time into one [`HistogramSnapshot`], so p50/p90/p99 over
/// the last 10s/1m/5m are a [`Histogram::quantile`] call away — all
/// while other threads keep recording (readers and writers only ever
/// hold one slice mutex at a time).
///
/// Time is measured from the construction epoch; the `*_at` variants
/// take an explicit nanosecond offset so tests (and trace replays) can
/// drive the clock deterministically.
pub struct RollingHistogram {
    epoch: Instant,
    slice_ns: u64,
    slices: Vec<Mutex<Slice>>,
    bounds: Vec<u64>,
}

impl RollingHistogram {
    /// A ring of `slices` slices, each `slice_ms` wide, with the default
    /// latency decade buckets. The covered horizon is
    /// `slices * slice_ms` milliseconds.
    pub fn new(slice_ms: u64, slices: usize) -> RollingHistogram {
        RollingHistogram::with_bounds(slice_ms, slices, &LATENCY_BOUNDS_NS)
    }

    /// A ring with custom bucket bounds (ascending).
    pub fn with_bounds(slice_ms: u64, slices: usize, bounds: &[u64]) -> RollingHistogram {
        let slices = slices.max(1);
        RollingHistogram {
            epoch: Instant::now(),
            slice_ns: slice_ms.max(1) * 1_000_000,
            slices: (0..slices)
                .map(|_| {
                    Mutex::new(Slice {
                        period: u64::MAX,
                        hist: Histogram::new(bounds),
                    })
                })
                .collect(),
            bounds: bounds.to_vec(),
        }
    }

    /// The standard service configuration: one-second slices covering
    /// the largest [`ROLLING_WINDOWS`] span (5 minutes).
    pub fn standard() -> RollingHistogram {
        RollingHistogram::new(1_000, 300)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one sample at the current time.
    pub fn record(&self, value: u64) {
        self.record_at(self.now_ns(), value);
    }

    /// Records one sample as of `now_ns` nanoseconds after the epoch.
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let period = now_ns / self.slice_ns;
        let slot = (period % self.slices.len() as u64) as usize;
        let mut slice = self.slices[slot].lock().expect("slice lock");
        if slice.period != period {
            slice.hist.clear();
            slice.period = period;
        }
        slice.hist.record(value);
    }

    /// Merges every slice within the trailing `window` into one
    /// snapshot (as of now).
    pub fn window(&self, window: Duration) -> HistogramSnapshot {
        self.window_at(self.now_ns(), window.as_nanos() as u64)
    }

    /// Merges every slice whose period lies within the trailing
    /// `window_ns` of `now_ns`.
    pub fn window_at(&self, now_ns: u64, window_ns: u64) -> HistogramSnapshot {
        let now_p = now_ns / self.slice_ns;
        let periods = (window_ns.div_ceil(self.slice_ns)).clamp(1, self.slices.len() as u64);
        let from_p = now_p.saturating_sub(periods - 1);
        let mut merged = Histogram::new(&self.bounds);
        for slot in &self.slices {
            let slice = slot.lock().expect("slice lock");
            if slice.period != u64::MAX && slice.period >= from_p && slice.period <= now_p {
                merged.merge(&slice.hist);
            }
        }
        merged
    }

    /// Snapshots all three [`ROLLING_WINDOWS`] at once:
    /// `(label, snapshot)` in widening order.
    pub fn windows(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        let now = self.now_ns();
        ROLLING_WINDOWS
            .iter()
            .map(|&(label, secs)| (label, self.window_at(now, secs * 1_000_000_000)))
            .collect()
    }
}

impl std::fmt::Debug for RollingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RollingHistogram")
            .field("slice_ns", &self.slice_ns)
            .field("slices", &self.slices.len())
            .finish()
    }
}

/// A delta-snapshot tracker over monotonic counters: each call to
/// [`CounterDeltas::delta`] reports how far every counter advanced
/// since the previous call (first call: since zero).
#[derive(Debug, Default)]
pub struct CounterDeltas {
    last: BTreeMap<String, u64>,
}

impl CounterDeltas {
    /// A tracker with an all-zero baseline.
    pub fn new() -> CounterDeltas {
        CounterDeltas::default()
    }

    /// Advances the baseline to `current` and returns the per-counter
    /// deltas. Counters that did not move are reported as 0; a counter
    /// that went backwards (collector reset) is reported from zero.
    pub fn delta(&mut self, current: &BTreeMap<&'static str, u64>) -> BTreeMap<String, u64> {
        current
            .iter()
            .map(|(&k, &v)| {
                let prev = self.last.insert(k.to_string(), v).unwrap_or(0);
                (k.to_string(), if v >= prev { v - prev } else { v })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn rolling_window_sees_only_recent_slices() {
        let r = RollingHistogram::new(1_000, 300);
        // One sample per second for 20 seconds.
        for s in 0..20u64 {
            r.record_at(s * SEC, 1_000 * (s + 1));
        }
        let now = 19 * SEC;
        assert_eq!(r.window_at(now, 10 * SEC).count(), 10);
        assert_eq!(r.window_at(now, 60 * SEC).count(), 20);
        // The 10s window holds samples from seconds 10..=19 only.
        let w = r.window_at(now, 10 * SEC);
        assert_eq!(w.max(), 20_000);
        assert!(w.quantile(0.0) >= 10_000 || w.quantile(0.5) > 10_000);
    }

    #[test]
    fn lapped_slices_are_reset_not_double_counted() {
        let r = RollingHistogram::new(1_000, 10); // 10s horizon
        r.record_at(0, 100);
        // 15 seconds later the slot for period 0 is lapped by period 10
        // (not in this recording's path) and period 0 is out of every
        // window anyway.
        r.record_at(15 * SEC, 200);
        assert_eq!(r.window_at(15 * SEC, 10 * SEC).count(), 1);
        // Recording into the lapped slot clears the stale samples.
        r.record_at(20 * SEC, 300); // period 20 -> slot 0, laps period 0
        let w = r.window_at(20 * SEC, 10 * SEC);
        assert_eq!(w.count(), 2); // 15s and 20s samples; 0s is gone
        assert_eq!(w.max(), 300);
    }

    #[test]
    fn windows_never_stop_concurrent_recorders() {
        let r = std::sync::Arc::new(RollingHistogram::new(10, 64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        r.record(i % 1_000);
                    }
                });
            }
            for _ in 0..50 {
                let _ = r.window(Duration::from_secs(1));
            }
        });
        // Everything recorded within the horizon is accounted for.
        let total = r.window(Duration::from_secs(600)).count();
        assert!(total <= 40_000);
        assert!(total > 0);
    }

    #[test]
    fn counter_deltas_report_advancement_only() {
        let mut d = CounterDeltas::new();
        let mut c: BTreeMap<&'static str, u64> = BTreeMap::new();
        c.insert("a", 5);
        c.insert("b", 2);
        assert_eq!(d.delta(&c).get("a"), Some(&5));
        c.insert("a", 9);
        let snap = d.delta(&c);
        assert_eq!(snap.get("a"), Some(&4));
        assert_eq!(snap.get("b"), Some(&0));
    }
}
