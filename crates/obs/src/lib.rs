//! **separ-obs** — workspace-wide structured tracing, metrics and trace
//! export for the SEPAR reproduction.
//!
//! The paper's headline claims are throughput claims (per-phase costs for
//! extraction, synthesis and enforcement across thousands of apps), so
//! every layer of the pipeline needs one shared answer to "where did the
//! time go". This crate provides it:
//!
//! * a thread-safe [`Collector`] with hierarchical **spans** (RAII
//!   guards, monotonic timestamps, thread ids), structured **events**
//!   (key/value payloads attached to the active span) and **metrics**
//!   (monotonic counters plus fixed-bucket latency [`Histogram`]s);
//! * four exporters in [`export`]: Chrome trace-event JSON (loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), a JSONL
//!   event log, a human-readable text summary with per-span self/total
//!   time, and Prometheus text exposition ([`Trace::prometheus`] over
//!   the [`prometheus`] writer);
//! * live-metrics primitives in [`live`] for long-running services:
//!   [`Gauge`]s, rolling-window [`RollingHistogram`]s (windowed
//!   p50/p90/p99 without stopping the collector) and per-scrape
//!   [`CounterDeltas`] — `separ serve` builds its `metrics` endpoint
//!   from these;
//! * the shared [`json`] string-escaping helpers used by every
//!   hand-rolled JSON writer in the workspace (policy I/O, lint output,
//!   the exporters here).
//!
//! A process-global collector ([`global`]) backs the free-function API
//! ([`span`], [`event`], [`counter_add`], [`timer`]/[`observe`]). It
//! starts **disabled**: every instrumentation call first checks one
//! atomic flag and returns immediately, so the probes are cheap enough
//! to stay compiled into release binaries (the bench crate pins the
//! disabled overhead at well under 2% of the 50-app pipeline workload).
//!
//! Spans compose across the scoped-thread fan-out of the pipeline
//! executor: the spawning thread captures [`current_span`] and each
//! worker adopts it with [`adopt_span`], so worker-side spans parent
//! under the stage span that forked them.
//!
//! Export is deterministic: exporters renumber span ids and order
//! siblings canonically (by name, args and subtree content), so two runs
//! of the same workload — at any thread count — produce byte-identical
//! output once timestamps and thread ids are stripped
//! ([`export::strip_timing`]).
#![warn(missing_docs)]

mod collector;
pub mod export;
pub mod json;
pub mod live;
mod metrics;
pub mod prometheus;

use std::sync::OnceLock;

pub use collector::{AdoptGuard, Collector, EventRecord, ObsTimer, SpanGuard, SpanId, SpanRecord};
pub use export::Trace;
pub use live::{CounterDeltas, Gauge, RollingHistogram, ROLLING_WINDOWS};
pub use metrics::{Histogram, HistogramSnapshot, LATENCY_BOUNDS_NS};

/// The process-global collector backing the free-function API.
///
/// Starts disabled; enable it with [`Collector::enable`] (the `separ`
/// CLI does so for `analyze`, `enforce` and `demo`).
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new_disabled)
}

/// Whether the global collector is recording. Check this before building
/// an expensive payload for [`event`].
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Opens a span on the global collector (no-op while disabled). The span
/// closes — and is recorded — when the returned guard drops, including
/// during panic unwinding.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// The innermost open span on this thread (global collector), or the
/// adopted parent for worker threads. [`SpanId::NONE`] when disabled or
/// outside any span.
pub fn current_span() -> SpanId {
    global().current_span()
}

/// Adopts `parent` as this thread's base span (global collector) until
/// the returned guard drops. Worker threads call this with the span the
/// spawning thread captured via [`current_span`], so fanned-out work
/// parents under the stage that forked it.
pub fn adopt_span(parent: SpanId) -> AdoptGuard<'static> {
    global().adopt(parent)
}

/// Records a structured event on the innermost open span of this thread
/// (global collector). No-op while disabled — guard expensive payload
/// construction with [`enabled`].
pub fn event(name: &'static str, args: Vec<(&'static str, String)>) {
    global().event(name, args);
}

/// Adds to a monotonic counter on the global collector (no-op while
/// disabled).
pub fn counter_add(name: &'static str, n: u64) {
    global().counter_add(name, n);
}

/// Starts a latency timer against the global collector. Returns an inert
/// timer while disabled (no clock read).
pub fn timer() -> ObsTimer {
    global().timer()
}

/// Records the elapsed time of `t` into the named latency histogram of
/// the global collector (no-op for inert timers).
pub fn observe(name: &'static str, t: ObsTimer) {
    global().observe(name, t);
}

/// Records a raw sample into the named histogram of the global collector
/// (no-op while disabled). The value need not be a latency — `separ
/// serve` records queue depths and batch sizes this way.
pub fn observe_ns(name: &'static str, ns: u64) {
    global().observe_ns(name, ns);
}
