//! Trace snapshots and the three exporters (Chrome trace JSON, JSONL
//! events, text summary).
//!
//! A [`Trace`] is an owned, **canonicalized** snapshot of a collector:
//! span ids are renumbered in a content-determined order so that two
//! runs of the same workload — at any thread count — produce the same
//! ids and the same sibling/event ordering. Canonicalization sorts
//! siblings by `(name, args, subtree fingerprint)`, where the
//! fingerprint hashes the span's name, args, attached events, and the
//! sorted fingerprints of its children; ids are then assigned by
//! depth-first traversal. Thread ids are remapped densely by first
//! appearance in canonical order. After [`strip_timing`] removes
//! timestamps and durations, exporter output is byte-identical across
//! runs.

use std::collections::BTreeMap;

use crate::collector::{EventRecord, SpanId, SpanRecord};
use crate::json;
use crate::metrics::Histogram;

/// An owned, canonicalized snapshot of a collector (see module docs).
#[derive(Debug, Clone)]
pub struct Trace {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_args(mut h: u64, args: &[(&'static str, String)]) -> u64 {
    for (k, v) in args {
        h = fnv_bytes(h, k.as_bytes());
        h = fnv_bytes(h, &[0x1f]);
        h = fnv_bytes(h, v.as_bytes());
        h = fnv_bytes(h, &[0x1e]);
    }
    h
}

impl Trace {
    /// Builds a canonicalized trace from raw collector records.
    pub(crate) fn build(
        spans: Vec<SpanRecord>,
        events: Vec<EventRecord>,
        counters: BTreeMap<&'static str, u64>,
        histograms: BTreeMap<&'static str, Histogram>,
    ) -> Trace {
        // Index spans and group events by their original span id
        // (within-span event order is the thread's recording order and
        // is deterministic).
        let idx_of: BTreeMap<SpanId, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut span_events: BTreeMap<SpanId, Vec<&EventRecord>> = BTreeMap::new();
        for e in &events {
            span_events.entry(e.span).or_default().push(e);
        }

        // Children lists; a span whose parent is outside the snapshot
        // (NONE, or pruned by snapshot_subtree) is a root.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in spans.iter().enumerate() {
            match idx_of.get(&s.parent) {
                Some(&p) if s.parent != s.id => children[p].push(i),
                _ => roots.push(i),
            }
        }

        // Bottom-up subtree fingerprints: hash name, args, attached
        // events (so identical-looking siblings that differ only in
        // their events cannot swap), then sorted child fingerprints.
        let mut fp = vec![0u64; spans.len()];
        let mut order: Vec<usize> = Vec::with_capacity(spans.len());
        let mut stack: Vec<(usize, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((i, expanded)) = stack.pop() {
            if expanded {
                order.push(i);
                continue;
            }
            stack.push((i, true));
            for &c in &children[i] {
                stack.push((c, false));
            }
        }
        for &i in &order {
            let s = &spans[i];
            let mut h = fnv_bytes(FNV_OFFSET, s.name.as_bytes());
            h = fnv_args(h, &s.args);
            for e in span_events.get(&s.id).map(|v| v.as_slice()).unwrap_or(&[]) {
                h = fnv_bytes(h, e.name.as_bytes());
                h = fnv_args(h, &e.args);
            }
            let mut child_fps: Vec<u64> = children[i].iter().map(|&c| fp[c]).collect();
            child_fps.sort_unstable();
            for c in child_fps {
                h = fnv_bytes(h, &c.to_le_bytes());
            }
            fp[i] = h;
        }

        // Sort sibling lists (and roots) by (name, args, fingerprint),
        // then assign canonical ids by depth-first traversal.
        let sort_key = |&i: &usize| (spans[i].name, spans[i].args.clone(), fp[i]);
        roots.sort_by_key(sort_key);
        for list in &mut children {
            list.sort_by_key(sort_key);
        }
        let mut new_id = vec![SpanId::NONE; spans.len()];
        let mut next = 1u64;
        let mut dfs: Vec<usize> = roots.iter().rev().copied().collect();
        let mut canonical_order: Vec<usize> = Vec::with_capacity(spans.len());
        while let Some(i) = dfs.pop() {
            new_id[i] = SpanId(next);
            next += 1;
            canonical_order.push(i);
            for &c in children[i].iter().rev() {
                dfs.push(c);
            }
        }

        // Dense thread-id remap by first appearance in canonical order.
        let mut tid_map: BTreeMap<u64, u64> = BTreeMap::new();
        let remap_tid = |tid: u64, map: &mut BTreeMap<u64, u64>| {
            let n = map.len() as u64 + 1;
            *map.entry(tid).or_insert(n)
        };

        let mut out_spans: Vec<SpanRecord> = Vec::with_capacity(spans.len());
        for &i in &canonical_order {
            let s = &spans[i];
            let parent = idx_of
                .get(&s.parent)
                .filter(|_| s.parent != s.id)
                .map(|&p| new_id[p])
                .unwrap_or(SpanId::NONE);
            out_spans.push(SpanRecord {
                id: new_id[i],
                parent,
                name: s.name,
                args: s.args.clone(),
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                tid: remap_tid(s.tid, &mut tid_map),
            });
        }

        // Events: unattached events first (sorted by name then args),
        // then per canonical span in id order, preserving each span's
        // recording order.
        let mut out_events: Vec<EventRecord> = Vec::with_capacity(events.len());
        if let Some(orphans) = span_events.get(&SpanId::NONE) {
            let mut orphans: Vec<&EventRecord> = orphans.clone();
            orphans.sort_by(|a, b| (a.name, &a.args).cmp(&(b.name, &b.args)));
            for e in orphans {
                let mut e = e.clone();
                e.tid = remap_tid(e.tid, &mut tid_map);
                out_events.push(e);
            }
        }
        for &i in &canonical_order {
            if let Some(list) = span_events.get(&spans[i].id) {
                for e in list {
                    let mut e = (*e).clone();
                    e.span = new_id[i];
                    e.tid = remap_tid(e.tid, &mut tid_map);
                    out_events.push(e);
                }
            }
        }

        Trace {
            spans: out_spans,
            events: out_events,
            counters,
            histograms,
        }
    }

    /// The canonicalized spans, ordered by canonical id (a depth-first
    /// traversal: every span appears after its parent).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The canonicalized events (unattached first, then grouped by
    /// span in canonical order).
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// The monotonic counters at snapshot time.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// The latency histograms at snapshot time.
    pub fn histograms(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.histograms
    }

    /// Sum of durations of all spans named `name`.
    pub fn sum_named(&self, name: &str) -> std::time::Duration {
        std::time::Duration::from_nanos(
            self.spans
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur_ns)
                .sum(),
        )
    }

    /// Number of spans named `name`.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Renders the trace in Chrome trace-event JSON (complete events
    /// `ph:"X"`, instant events `ph:"i"`), loadable in `chrome://tracing`
    /// or Perfetto. Timestamps are microseconds from the collector
    /// epoch.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if *first {
                *first = false;
            } else {
                out.push(',');
            }
            out.push_str("\n ");
        };
        for s in &self.spans {
            sep(&mut out, &mut first);
            out.push_str("{\"name\":");
            json::write_str(s.name, &mut out);
            out.push_str(",\"cat\":\"separ\",\"ph\":\"X\",\"ts\":");
            push_us(&mut out, s.start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, s.dur_ns);
            out.push_str(&format!(",\"pid\":1,\"tid\":{}", s.tid));
            out.push_str(",\"args\":{\"span\":");
            out.push_str(&s.id.0.to_string());
            out.push_str(",\"parent\":");
            out.push_str(&s.parent.0.to_string());
            for (k, v) in &s.args {
                out.push(',');
                json::write_str(k, &mut out);
                out.push(':');
                json::write_str(v, &mut out);
            }
            out.push_str("}}");
        }
        for e in &self.events {
            sep(&mut out, &mut first);
            out.push_str("{\"name\":");
            json::write_str(e.name, &mut out);
            out.push_str(",\"cat\":\"separ\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
            push_us(&mut out, e.ts_ns);
            out.push_str(&format!(",\"pid\":1,\"tid\":{}", e.tid));
            out.push_str(",\"args\":{\"span\":");
            out.push_str(&e.span.0.to_string());
            for (k, v) in &e.args {
                out.push(',');
                json::write_str(k, &mut out);
                out.push(':');
                json::write_str(v, &mut out);
            }
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Renders the events as one JSON object per line.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str("{\"name\":");
            json::write_str(e.name, &mut out);
            out.push_str(",\"span\":");
            out.push_str(&e.span.0.to_string());
            out.push_str(&format!(",\"tid\":{},\"ts_us\":", e.tid));
            push_us(&mut out, e.ts_ns);
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_str(k, &mut out);
                out.push(':');
                json::write_str(v, &mut out);
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Renders a human-readable summary: per-span-name rollup (count,
    /// total and self time), counters, and histograms.
    pub fn text_summary(&self) -> String {
        let mut out = String::new();
        let rollup = self.span_rollup();
        if !rollup.is_empty() {
            out.push_str("spans (by total time):\n");
            out.push_str(&format!(
                "  {:<28} {:>7} {:>12} {:>12}\n",
                "name", "count", "total", "self"
            ));
            for r in &rollup {
                out.push_str(&format!(
                    "  {:<28} {:>7} {:>12} {:>12}\n",
                    r.name,
                    r.count,
                    format_ns(r.total_ns),
                    format_ns(r.self_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("latency histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {:<28} count={} mean={} p50={} p90={} p99={} max={}\n",
                    k,
                    h.count(),
                    format_ns(h.mean()),
                    format_ns(h.quantile(0.50)),
                    format_ns(h.quantile(0.90)),
                    format_ns(h.quantile(0.99)),
                    format_ns(h.max()),
                ));
                for (i, &c) in h.counts().iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let label = match h.bounds().get(i) {
                        Some(&b) => format!("<= {}", format_ns(b)),
                        None => format!("> {}", format_ns(*h.bounds().last().unwrap_or(&0))),
                    };
                    out.push_str(&format!("    {label:<12} {c}\n"));
                }
            }
        }
        out
    }

    /// Renders the counters and latency histograms in Prometheus text
    /// exposition format (version 0.0.4).
    ///
    /// Counters become `separ_<name>_total` counter families;
    /// histograms become native `separ_<name>_seconds` histogram
    /// families (cumulative `le` buckets, `_sum`, `_count`) with
    /// nanosecond samples scaled to seconds. Families appear in sorted
    /// internal-name order, so two renders of the same state are
    /// byte-identical.
    pub fn prometheus(&self) -> String {
        let mut w = crate::prometheus::PromWriter::new();
        for (name, v) in &self.counters {
            let family = format!("separ_{}_total", crate::prometheus::sanitize(name));
            w.family(&family, "counter", name);
            w.sample(&family, &[], *v as f64);
        }
        for (name, h) in &self.histograms {
            let family = format!("separ_{}_seconds", crate::prometheus::sanitize(name));
            w.family(&family, "histogram", name);
            w.histogram(&family, &[], h, 1e9);
        }
        w.finish()
    }

    /// Aggregates spans by name: count, total time, and self time
    /// (total minus direct children), sorted by descending total.
    pub fn span_rollup(&self) -> Vec<SpanRollup> {
        let mut child_ns: BTreeMap<SpanId, u64> = BTreeMap::new();
        for s in &self.spans {
            if s.parent.is_some() {
                *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
            }
        }
        let mut by_name: BTreeMap<&'static str, SpanRollup> = BTreeMap::new();
        for s in &self.spans {
            let r = by_name.entry(s.name).or_insert(SpanRollup {
                name: s.name,
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            r.count += 1;
            r.total_ns += s.dur_ns;
            r.self_ns += s
                .dur_ns
                .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        }
        let mut rollup: Vec<SpanRollup> = by_name.into_values().collect();
        rollup.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        rollup
    }
}

/// One row of [`Trace::span_rollup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRollup {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed duration in nanoseconds.
    pub total_ns: u64,
    /// Summed self time (duration minus direct children) in
    /// nanoseconds.
    pub self_ns: u64,
}

fn push_us(out: &mut String, ns: u64) {
    // Microseconds with sub-microsecond precision; Chrome accepts
    // fractional `ts`/`dur`.
    out.push_str(&(ns / 1000).to_string());
    let frac = ns % 1000;
    if frac != 0 {
        out.push_str(&format!(".{frac:03}"));
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Replaces the numeric value after every timing-ish key (`"ts"`,
/// `"dur"`, `"ts_us"`, `"tid"`) with `0`, so two exports of the same
/// workload can be compared byte-for-byte. Works on both the Chrome
/// trace JSON and the events JSONL.
pub fn strip_timing(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let keys: [&[u8]; 4] = [b"\"ts\":", b"\"dur\":", b"\"ts_us\":", b"\"tid\":"];
    let mut i = 0;
    'outer: while i < bytes.len() {
        for key in keys {
            if bytes[i..].starts_with(key) {
                out.push_str(std::str::from_utf8(key).unwrap());
                i += key.len();
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                    j += 1;
                }
                out.push('0');
                i = j;
                continue 'outer;
            }
        }
        // Advance one full UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).unwrap());
        i += ch_len;
    }
    out
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}
