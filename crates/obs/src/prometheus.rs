//! Prometheus text exposition (format version 0.0.4).
//!
//! A tiny, dependency-free writer for the one wire format every metrics
//! stack can scrape. [`PromWriter`] guarantees the structural rules a
//! scraper checks: every sample is preceded by its family's `# HELP` /
//! `# TYPE` header, label values are escaped, and output order is
//! exactly insertion order — callers iterate sorted maps, so two
//! renders of the same state are byte-identical.

use std::fmt::Write as _;

use crate::metrics::Histogram;

/// Maps an internal metric name (`pdp.index.hit`) onto the Prometheus
/// grammar (`pdp_index_hit`): every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Formats a sample value the way Prometheus expects: integers without
/// a decimal point, everything else in shortest `f64` form.
fn push_value(v: f64, out: &mut String) {
    if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// An append-only exposition builder.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty exposition.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    /// Writes a family header: `# HELP` then `# TYPE`. Call once per
    /// family, before its samples. `kind` is `counter`, `gauge` or
    /// `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = write!(self.out, "# HELP {name} ");
        for c in help.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        self.out.push('\n');
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                escape_label(v, &mut self.out);
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        push_value(value, &mut self.out);
        self.out.push('\n');
    }

    /// Writes a [`Histogram`] in native Prometheus histogram form:
    /// cumulative `_bucket{le=...}` samples, the `+Inf` bucket, `_sum`
    /// and `_count`. Raw sample values are divided by `scale` (use
    /// `1e9` for nanosecond-valued histograms exposed in seconds).
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram, scale: f64) {
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        let mut le = String::new();
        for (i, &b) in h.bounds().iter().enumerate() {
            cum += h.counts()[i];
            le.clear();
            push_value(b as f64 / scale, &mut le);
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            ls.push(("le", le.as_str()));
            self.sample(&bucket, &ls, cum as f64);
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&bucket, &ls, h.count() as f64);
        self.sample(&format!("{name}_sum"), labels, h.sum() as f64 / scale);
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("pdp.index.hit"), "pdp_index_hit");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }

    #[test]
    fn renders_counter_and_histogram_families() {
        let mut h = Histogram::new(&[1_000, 1_000_000]);
        h.record(500);
        h.record(500_000);
        h.record(5_000_000);
        let mut w = PromWriter::new();
        w.family("separ_requests_total", "counter", "requests served");
        w.sample("separ_requests_total", &[], 42.0);
        w.family("separ_latency_seconds", "histogram", "request latency");
        w.histogram("separ_latency_seconds", &[("type", "decide")], &h, 1e9);
        let text = w.finish();
        assert_eq!(
            text,
            "# HELP separ_requests_total requests served\n\
             # TYPE separ_requests_total counter\n\
             separ_requests_total 42\n\
             # HELP separ_latency_seconds request latency\n\
             # TYPE separ_latency_seconds histogram\n\
             separ_latency_seconds_bucket{type=\"decide\",le=\"0.000001\"} 1\n\
             separ_latency_seconds_bucket{type=\"decide\",le=\"0.001\"} 2\n\
             separ_latency_seconds_bucket{type=\"decide\",le=\"+Inf\"} 3\n\
             separ_latency_seconds_sum{type=\"decide\"} 0.0055005\n\
             separ_latency_seconds_count{type=\"decide\"} 3\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(w.finish(), "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
