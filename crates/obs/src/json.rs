//! Minimal JSON string escaping shared by every hand-rolled JSON writer
//! in the workspace (trace exporters, policy I/O, lint output, CLI
//! stats), plus a small generic [`Value`] tree with a strict parser for
//! readers that must accept arbitrary documents (the `separ serve`
//! wire protocol).
//!
//! The workspace writes JSON by hand (no serde under the offline-shim
//! policy); the subtle parts — string escaping and parsing — live here
//! so every call site agrees on them.

/// Appends the JSON escape of `s` to `out`, **without** surrounding
/// quotes.
///
/// Escapes `"` and `\`, the named control escapes (`\n`, `\r`, `\t`,
/// `\u{8}`, `\u{c}`), and all other control characters as `\u00XX`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted JSON string to `out` (escape plus `"` on both
/// sides).
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    escape_into(s, out);
    out.push('"');
}

/// Returns `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(s, &mut out);
    out
}

// ---------------------------------------------------------------------
// Generic values
// ---------------------------------------------------------------------

/// A parsed JSON document.
///
/// Objects keep their members in document order (a `Vec`, not a map), so
/// re-serializing a parsed document is deterministic; lookups are linear,
/// which is the right trade for the small protocol messages this backs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; see [`Value::as_u64`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = ValueParser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` for other variants or missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integral number
    /// that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
                }
            }
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_into(&mut out);
        f.write_str(&out)
    }
}

/// A JSON parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Hostile-input bound: deeper nesting than any legitimate protocol
/// message fails fast instead of recursing toward a stack overflow.
const MAX_DEPTH: usize = 64;

struct ValueParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> ValueParser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.eat(byte) {
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        if self.depth >= MAX_DEPTH {
            return self.err("nesting too deep");
        }
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        items.push(self.value()?);
                        if !self.eat(b',') {
                            self.expect(b']')?;
                            break;
                        }
                    }
                }
                self.depth -= 1;
                Ok(Value::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut members = Vec::new();
                if !self.eat(b'}') {
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.expect(b':')?;
                        members.push((key, self.value()?));
                        if !self.eat(b',') {
                            self.expect(b'}')?;
                            break;
                        }
                    }
                }
                self.depth -= 1;
                Ok(Value::Obj(members))
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("malformed \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates are replaced, not recombined:
                            // protocol strings are plain BMP text.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x20 => return self.err("raw control character in string"),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the multi-byte scalar from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let Ok(s) = std::str::from_utf8(&self.bytes[start..end]) else {
                        return self.err("invalid utf-8 in string");
                    };
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => self.err("malformed number"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(quote("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(quote("x\ny\t"), r#""x\ny\t""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("\u{8}\u{c}\r"), r#""\b\f\r""#);
        assert_eq!(quote("plain"), r#""plain""#);
    }

    #[test]
    fn value_round_trips_documents() {
        let text = r#"{"cmd":"install","n":42,"neg":-1.5,"flag":true,"none":null,"tags":["a","b"],"nested":{"k":"v"}}"#;
        let v = Value::parse(text).expect("parses");
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("install"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-1.5));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(
            v.get("tags").and_then(Value::as_arr).map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn value_strings_round_trip_escapes_and_unicode() {
        let v = Value::parse(r#""a\"b\\c\ndA é 日""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA é 日"));
        let reparsed = Value::parse(&v.to_string()).expect("reparses");
        assert_eq!(reparsed, v);
    }

    #[test]
    fn value_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nan",
            "--3",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must fail");
        }
        // Nesting bound trips instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn value_as_u64_guards_range_and_integrality() {
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(7.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("7".into()).as_u64(), None);
    }
}
