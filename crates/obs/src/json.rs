//! Minimal JSON string escaping shared by every hand-rolled JSON writer
//! in the workspace (trace exporters, policy I/O, lint output, CLI
//! stats).
//!
//! The workspace writes JSON by hand (no serde under the offline-shim
//! policy); the one subtle part — string escaping — lives here so every
//! call site agrees on it.

/// Appends the JSON escape of `s` to `out`, **without** surrounding
/// quotes.
///
/// Escapes `"` and `\`, the named control escapes (`\n`, `\r`, `\t`,
/// `\u{8}`, `\u{c}`), and all other control characters as `\u00XX`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends `s` as a quoted JSON string to `out` (escape plus `"` on both
/// sides).
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    escape_into(s, out);
    out.push('"');
}

/// Returns `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(quote("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(quote("x\ny\t"), r#""x\ny\t""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("\u{8}\u{c}\r"), r#""\b\f\r""#);
        assert_eq!(quote("plain"), r#""plain""#);
    }
}
