//! The thread-safe span/event/metric collector.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::export::Trace;
use crate::metrics::Histogram;

/// Identifier of a span within one [`Collector`].
///
/// Ids are assigned in creation order starting at 1; [`SpanId::NONE`]
/// (0) marks "no span" — the parent of a root span, or the result of
/// querying a disabled collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (parent of roots; returned while disabled).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is a real span id (not [`SpanId::NONE`]).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One closed span: a named interval with a parent link, structured
/// arguments, and the thread it ran on.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Creation-order id (1-based).
    pub id: SpanId,
    /// Enclosing span, or [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Static span name, e.g. `"logic.solve"`.
    pub name: &'static str,
    /// Key/value arguments attached via [`SpanGuard::set_arg`].
    pub args: Vec<(&'static str, String)>,
    /// Start offset from the collector epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Dense id of the thread the span ran on.
    pub tid: u64,
}

/// One structured event, attached to the span that was open when it
/// fired.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// The innermost open span at the time (or [`SpanId::NONE`]).
    pub span: SpanId,
    /// Static event name, e.g. `"sat.tick"`.
    pub name: &'static str,
    /// Key/value payload.
    pub args: Vec<(&'static str, String)>,
    /// Timestamp offset from the collector epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Dense id of the thread the event fired on.
    pub tid: u64,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

// Per-thread span context, keyed by collector id so tests with local
// collectors don't bleed into the global one. `stack` holds the open
// spans of this thread; `base` holds adopted parents (from the thread
// that forked this one).
thread_local! {
    static STACK: RefCell<Vec<(u64, SpanId)>> = const { RefCell::new(Vec::new()) };
    static BASE: RefCell<Vec<(u64, SpanId)>> = const { RefCell::new(Vec::new()) };
    static TID: RefCell<Option<u64>> = const { RefCell::new(None) };
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_CID: AtomicU64 = AtomicU64::new(1);

fn thread_id() -> u64 {
    TID.with(|t| {
        let mut t = t.borrow_mut();
        *t.get_or_insert_with(|| NEXT_TID.fetch_add(1, Ordering::Relaxed))
    })
}

/// A thread-safe collector of spans, events, counters and latency
/// histograms.
///
/// All instrumentation entry points first load one atomic `enabled`
/// flag; while disabled they return without reading the clock, taking
/// the lock, or allocating, so probes are cheap enough to stay compiled
/// into release binaries.
pub struct Collector {
    cid: u64,
    enabled: AtomicBool,
    epoch: Instant,
    next_span: AtomicU64,
    inner: Mutex<Inner>,
}

impl Collector {
    fn with_enabled(enabled: bool) -> Collector {
        Collector {
            cid: NEXT_CID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(enabled),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A new collector that records immediately (for tests and tools).
    pub fn new() -> Collector {
        Collector::with_enabled(true)
    }

    /// A new collector that starts disabled (every probe is a no-op
    /// until [`Collector::enable`]).
    pub fn new_disabled() -> Collector {
        Collector::with_enabled(false)
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (already-open span guards still close their
    /// spans).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether the collector is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The innermost open span on this thread, falling back to an
    /// adopted parent ([`Collector::adopt`]); [`SpanId::NONE`] while
    /// disabled or outside any span.
    pub fn current_span(&self) -> SpanId {
        if !self.is_enabled() {
            return SpanId::NONE;
        }
        let top = STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|(cid, _)| *cid == self.cid)
                .map(|&(_, id)| id)
        });
        if let Some(id) = top {
            return id;
        }
        BASE.with(|b| {
            b.borrow()
                .iter()
                .rev()
                .find(|(cid, _)| *cid == self.cid)
                .map(|&(_, id)| id)
                .unwrap_or(SpanId::NONE)
        })
    }

    /// Opens a span as a child of [`Collector::current_span`]. The span
    /// is recorded when the guard drops — including during panic
    /// unwinding, so partially-executed stages still show up in traces.
    ///
    /// Returns an inert guard while disabled (no clock read, no
    /// allocation).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                collector: self,
                live: None,
                _not_send: PhantomData,
            };
        }
        let id = SpanId(self.next_span.fetch_add(1, Ordering::Relaxed));
        let parent = self.current_span();
        STACK.with(|s| s.borrow_mut().push((self.cid, id)));
        SpanGuard {
            collector: self,
            live: Some(LiveSpan {
                id,
                parent,
                name,
                args: Vec::new(),
                start_ns: self.now_ns(),
            }),
            _not_send: PhantomData,
        }
    }

    /// Adopts `parent` as this thread's base span until the returned
    /// guard drops. Worker threads call this with the span id the
    /// spawning thread captured via [`Collector::current_span`], so
    /// fanned-out work parents under the stage that forked it.
    pub fn adopt(&self, parent: SpanId) -> AdoptGuard<'_> {
        let adopted = self.is_enabled() && parent.is_some();
        if adopted {
            BASE.with(|b| b.borrow_mut().push((self.cid, parent)));
        }
        AdoptGuard {
            collector: self,
            adopted,
            _not_send: PhantomData,
        }
    }

    /// Records a structured event on the innermost open span of this
    /// thread (no-op while disabled).
    pub fn event(&self, name: &'static str, args: Vec<(&'static str, String)>) {
        if !self.is_enabled() {
            return;
        }
        let rec = EventRecord {
            span: self.current_span(),
            name,
            args,
            ts_ns: self.now_ns(),
            tid: thread_id(),
        };
        self.inner.lock().unwrap().events.push(rec);
    }

    /// Adds `n` to the named monotonic counter (no-op while disabled).
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        *self.inner.lock().unwrap().counters.entry(name).or_insert(0) += n;
    }

    /// Starts a latency timer. Returns an inert timer (no clock read)
    /// while disabled.
    pub fn timer(&self) -> ObsTimer {
        ObsTimer(if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Records the elapsed time of `t` into the named latency histogram
    /// (default decade buckets). Inert timers are ignored.
    pub fn observe(&self, name: &'static str, t: ObsTimer) {
        let Some(start) = t.0 else { return };
        if !self.is_enabled() {
            return;
        }
        let ns = start.elapsed().as_nanos() as u64;
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name)
            .or_insert_with(Histogram::latency)
            .record(ns);
    }

    /// Records `ns` directly into the named latency histogram (no-op
    /// while disabled).
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name)
            .or_insert_with(Histogram::latency)
            .record(ns);
    }

    /// The recorded duration of a closed span, or zero if the id is
    /// unknown (e.g. the collector was disabled when the span opened).
    pub fn duration(&self, id: SpanId) -> Duration {
        if !id.is_some() {
            return Duration::ZERO;
        }
        let inner = self.inner.lock().unwrap();
        inner
            .spans
            .iter()
            .find(|s| s.id == id)
            .map(|s| Duration::from_nanos(s.dur_ns))
            .unwrap_or(Duration::ZERO)
    }

    /// Sum of the durations of all closed spans named `name` in the
    /// subtree rooted at `root` (inclusive). Zero when `root` is
    /// [`SpanId::NONE`] or unknown.
    pub fn subtree_sum(&self, root: SpanId, name: &str) -> Duration {
        let mut total = 0u64;
        self.for_subtree(root, |s| {
            if s.name == name {
                total += s.dur_ns;
            }
        });
        Duration::from_nanos(total)
    }

    /// Number of closed spans named `name` in the subtree rooted at
    /// `root` (inclusive).
    pub fn subtree_count(&self, root: SpanId, name: &str) -> usize {
        let mut n = 0usize;
        self.for_subtree(root, |s| {
            if s.name == name {
                n += 1;
            }
        });
        n
    }

    fn for_subtree(&self, root: SpanId, mut f: impl FnMut(&SpanRecord)) {
        if !root.is_some() {
            return;
        }
        let inner = self.inner.lock().unwrap();
        let mut index: BTreeMap<SpanId, usize> = BTreeMap::new();
        let mut children: BTreeMap<SpanId, Vec<SpanId>> = BTreeMap::new();
        for (i, s) in inner.spans.iter().enumerate() {
            index.insert(s.id, i);
            children.entry(s.parent).or_default().push(s.id);
        }
        // The root itself may still be open (no record yet); descendants
        // that already closed are reachable through the children map
        // regardless.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if let Some(&i) = index.get(&id) {
                f(&inner.spans[i]);
            }
            if let Some(kids) = children.get(&id) {
                stack.extend(kids.iter().copied());
            }
        }
    }

    /// A cheap owned copy of just the monotonic counters — no span or
    /// event clone, so live-metrics endpoints can poll it on every
    /// scrape. Pair with [`crate::live::CounterDeltas`] for per-scrape
    /// deltas.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.inner.lock().unwrap().counters.clone()
    }

    /// A cheap owned copy of just the latency histograms.
    pub fn histograms(&self) -> BTreeMap<&'static str, Histogram> {
        self.inner.lock().unwrap().histograms.clone()
    }

    /// An owned snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let inner = self.inner.lock().unwrap();
        Trace::build(
            inner.spans.clone(),
            inner.events.clone(),
            inner.counters.clone(),
            inner.histograms.clone(),
        )
    }

    /// A snapshot restricted to the subtree rooted at `root`
    /// (inclusive), with metrics included whole. Use this in tests that
    /// share the process-global collector: spans recorded by other
    /// concurrently-running tests fall outside the subtree and are
    /// excluded.
    pub fn snapshot_subtree(&self, root: SpanId) -> Trace {
        let mut spans = Vec::new();
        self.for_subtree(root, |s| spans.push(s.clone()));
        let inner = self.inner.lock().unwrap();
        let keep: std::collections::BTreeSet<SpanId> = spans.iter().map(|s| s.id).collect();
        let events = inner
            .events
            .iter()
            .filter(|e| keep.contains(&e.span))
            .cloned()
            .collect();
        Trace::build(
            spans,
            events,
            inner.counters.clone(),
            inner.histograms.clone(),
        )
    }

    /// Clears all recorded spans, events, counters and histograms
    /// (enabled state is unchanged).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::default();
    }
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

struct LiveSpan {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    args: Vec<(&'static str, String)>,
    start_ns: u64,
}

/// RAII guard for an open span; the span closes and is recorded when
/// the guard drops (also during panic unwinding). Not `Send` — spans
/// belong to the thread that opened them.
pub struct SpanGuard<'c> {
    collector: &'c Collector,
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard<'_> {
    /// The id of this span, or [`SpanId::NONE`] for inert guards
    /// (collector disabled at open time).
    pub fn id(&self) -> SpanId {
        self.live.as_ref().map(|l| l.id).unwrap_or(SpanId::NONE)
    }

    /// Attaches a key/value argument to the span (no-op on inert
    /// guards).
    pub fn set_arg(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(live) = self.live.as_mut() {
            live.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let end_ns = self.collector.now_ns();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop this span; tolerate out-of-order drops defensively.
            if let Some(pos) = s
                .iter()
                .rposition(|&(cid, id)| cid == self.collector.cid && id == live.id)
            {
                s.remove(pos);
            }
        });
        let rec = SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name,
            args: live.args,
            start_ns: live.start_ns,
            dur_ns: end_ns.saturating_sub(live.start_ns),
            tid: thread_id(),
        };
        self.collector.inner.lock().unwrap().spans.push(rec);
    }
}

/// RAII guard for an adopted base span (see [`Collector::adopt`]). Not
/// `Send`.
pub struct AdoptGuard<'c> {
    collector: &'c Collector,
    adopted: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        if !self.adopted {
            return;
        }
        BASE.with(|b| {
            let mut b = b.borrow_mut();
            if let Some(pos) = b.iter().rposition(|&(cid, _)| cid == self.collector.cid) {
                b.remove(pos);
            }
        });
    }
}

/// A latency timer handed out by [`Collector::timer`]; inert (no clock
/// was read) when the collector was disabled.
#[derive(Debug, Clone, Copy)]
pub struct ObsTimer(pub(crate) Option<Instant>);

impl ObsTimer {
    /// Whether this timer is actually running.
    pub fn is_live(self) -> bool {
        self.0.is_some()
    }
}
