//! Monotonic counters and fixed-bucket latency histograms.

/// Default latency bucket upper bounds, in nanoseconds: one decade per
/// bucket from 100 ns to 1 s, plus an implicit overflow bucket.
pub const LATENCY_BOUNDS_NS: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// A fixed-bucket histogram of `u64` samples (latencies in nanoseconds
/// by convention).
///
/// A sample `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; samples above every bound land in the overflow bucket,
/// so `counts().len() == bounds().len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            max: 0,
        }
    }

    /// A histogram with the default latency decades
    /// ([`LATENCY_BOUNDS_NS`]).
    pub fn latency() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_NS)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) with linear interpolation inside
    /// the covering bucket, or 0 when empty.
    ///
    /// The fractional rank `q * (count - 1)` is located in the
    /// cumulative bucket counts; the estimate interpolates between the
    /// bucket's lower and upper bound by the rank's position among the
    /// bucket's samples. The overflow bucket's upper bound is the
    /// recorded [`Histogram::max`], and every estimate is clamped to it,
    /// so quantiles never exceed an actually-observed value.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = q.clamp(0.0, 1.0) * (n - 1) as f64;
        let mut before = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < (before + c) as f64 || before + c == n {
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] };
                let hi = self.bounds.get(i).copied().unwrap_or(self.max);
                let (lo, hi) = (lo.min(self.max), hi.min(self.max));
                // The bucket's samples occupy ranks before..before+c; a
                // single sample sits at the bucket's (max-clamped) upper
                // bound rather than an arbitrary midpoint.
                let frac = if c <= 1 {
                    1.0
                } else {
                    ((rank - before as f64) / (c - 1) as f64).clamp(0.0, 1.0)
                };
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            before += c;
        }
        self.max
    }

    /// Folds `other` into `self`. Both histograms must share the same
    /// bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "merging incompatible histograms");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Resets all counts (bounds are kept), without reallocating.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.sum = 0;
        self.max = 0;
    }
}

/// An owned copy of one histogram, as handed out by trace snapshots.
pub type HistogramSnapshot = Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_first_covering_bucket() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10] {
            h.record(v); // <= 10
        }
        h.record(11); // (10, 100]
        h.record(100); // (10, 100]
        h.record(101); // (100, 1000]
        h.record(1001); // overflow
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1001);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 1001);
    }

    #[test]
    fn mean_is_zero_when_empty() {
        let h = Histogram::latency();
        assert_eq!(h.mean(), 0);
        assert_eq!(h.counts().len(), LATENCY_BOUNDS_NS.len() + 1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::latency();
        assert_eq!(h.quantile(0.5), 0);
        // 100 samples uniformly inside the (1us, 10us] decade.
        for i in 0..100u64 {
            h.record(1_000 + i * 90);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        // Interpolated, not the bucket lower bound (the old behaviour
        // would report 1_000 for all three).
        assert!(p50 > 1_000 && p50 < 10_000, "p50 = {p50}");
        assert!(p50 < p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= h.max());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn quantile_of_single_bucket_is_bounded_by_max() {
        let mut h = Histogram::latency();
        h.record(50); // one sample in the first bucket
                      // max (50) caps the interpolation range, so even p99 cannot
                      // exceed an observed value.
        assert!(h.quantile(0.99) <= 50);
    }

    #[test]
    fn merge_and_clear_round_trip() {
        let mut a = Histogram::new(&[10, 100]);
        let mut b = Histogram::new(&[10, 100]);
        a.record(5);
        b.record(50);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.sum(), 555);
        assert_eq!(a.max(), 500);
        a.clear();
        assert_eq!(a.count(), 0);
        assert_eq!(a.max(), 0);
        assert_eq!(a.bounds(), &[10, 100]);
    }
}
