//! Monotonic counters and fixed-bucket latency histograms.

/// Default latency bucket upper bounds, in nanoseconds: one decade per
/// bucket from 100 ns to 1 s, plus an implicit overflow bucket.
pub const LATENCY_BOUNDS_NS: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// A fixed-bucket histogram of `u64` samples (latencies in nanoseconds
/// by convention).
///
/// A sample `v` lands in the first bucket whose upper bound satisfies
/// `v <= bound`; samples above every bound land in the overflow bucket,
/// so `counts().len() == bounds().len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given ascending bucket upper bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            max: 0,
        }
    }

    /// A histogram with the default latency decades
    /// ([`LATENCY_BOUNDS_NS`]).
    pub fn latency() -> Histogram {
        Histogram::new(&LATENCY_BOUNDS_NS)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket sample counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }
}

/// An owned copy of one histogram, as handed out by trace snapshots.
pub type HistogramSnapshot = Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_first_covering_bucket() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10] {
            h.record(v); // <= 10
        }
        h.record(11); // (10, 100]
        h.record(100); // (10, 100]
        h.record(101); // (100, 1000]
        h.record(1001); // overflow
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1001);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 1001);
    }

    #[test]
    fn mean_is_zero_when_empty() {
        let h = Histogram::latency();
        assert_eq!(h.mean(), 0);
        assert_eq!(h.counts().len(), LATENCY_BOUNDS_NS.len() + 1);
    }
}
