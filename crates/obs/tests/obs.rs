//! Integration tests for the separ-obs collector and exporters:
//! panic-safe span closing, cross-thread parenting, histogram bucket
//! boundaries, Chrome trace-event conformance, and the canonicalization
//! that makes exports deterministic across thread interleavings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use separ_obs::{export, Collector, SpanId, LATENCY_BOUNDS_NS};

#[test]
fn span_guard_records_the_span_during_panic_unwinding() {
    let c = Collector::new();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _outer = c.span("outer");
        let _inner = c.span("inner");
        panic!("stage blew up");
    }));
    assert!(result.is_err());
    let trace = c.snapshot();
    // Both guards dropped during unwinding; both spans are recorded and
    // the nesting survived.
    assert_eq!(trace.count_named("outer"), 1);
    assert_eq!(trace.count_named("inner"), 1);
    let outer = trace.spans().iter().find(|s| s.name == "outer").unwrap();
    let inner = trace.spans().iter().find(|s| s.name == "inner").unwrap();
    assert_eq!(inner.parent, outer.id);
    assert_eq!(outer.parent, SpanId::NONE);
    // The thread's span stack is clean: a new span is again a root.
    let after = c.span("after");
    assert!(after.id().is_some());
    drop(after);
    let trace = c.snapshot();
    let after = trace.spans().iter().find(|s| s.name == "after").unwrap();
    assert_eq!(after.parent, SpanId::NONE);
}

#[test]
fn adopt_parents_cross_thread_spans_under_the_forking_span() {
    let c = &Collector::new();
    let stage = c.span("stage");
    let stage_id = stage.id();
    let parent = c.current_span();
    assert_eq!(parent, stage_id);
    std::thread::scope(|scope| {
        for i in 0..4 {
            scope.spawn(move || {
                let _ctx = c.adopt(parent);
                let mut span = c.span("worker");
                span.set_arg("i", i.to_string());
            });
        }
    });
    drop(stage);
    assert_eq!(c.subtree_count(stage_id, "worker"), 4);
    let trace = c.snapshot();
    for s in trace.spans().iter().filter(|s| s.name == "worker") {
        // Canonical ids renumber spans, so compare against the
        // canonical id of the (unique) stage span.
        let stage = trace.spans().iter().find(|s| s.name == "stage").unwrap();
        assert_eq!(s.parent, stage.id);
    }
}

#[test]
fn adopt_is_scoped_to_the_guard_lifetime() {
    let c = &Collector::new();
    let stage = c.span("stage");
    let parent = c.current_span();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            {
                let _ctx = c.adopt(parent);
                drop(c.span("inside"));
            }
            // Adoption ended: this span is a root again.
            drop(c.span("outside"));
        });
    });
    drop(stage);
    let trace = c.snapshot();
    let stage = trace.spans().iter().find(|s| s.name == "stage").unwrap();
    let inside = trace.spans().iter().find(|s| s.name == "inside").unwrap();
    let outside = trace.spans().iter().find(|s| s.name == "outside").unwrap();
    assert_eq!(inside.parent, stage.id);
    assert_eq!(outside.parent, SpanId::NONE);
}

#[test]
fn latency_histogram_buckets_split_exactly_at_the_bounds() {
    let c = Collector::new();
    // One decade per bucket; a bound value itself lands in its bucket,
    // bound+1 in the next.
    for &b in &LATENCY_BOUNDS_NS {
        c.observe_ns("lat", b);
        c.observe_ns("lat", b + 1);
    }
    let trace = c.snapshot();
    let h = trace.histograms().get("lat").expect("histogram recorded");
    assert_eq!(h.bounds(), &LATENCY_BOUNDS_NS);
    // Bucket 0 gets only its own bound (100); every later bucket gets
    // its bound plus the previous bound + 1; overflow gets 1e9 + 1.
    let mut expected = vec![2u64; LATENCY_BOUNDS_NS.len() + 1];
    expected[0] = 1;
    *expected.last_mut().unwrap() = 1;
    assert_eq!(h.counts(), expected.as_slice());
    assert_eq!(h.count(), 2 * LATENCY_BOUNDS_NS.len() as u64);
    assert_eq!(h.max(), LATENCY_BOUNDS_NS[LATENCY_BOUNDS_NS.len() - 1] + 1);
}

#[test]
fn disabled_collector_records_nothing_and_hands_out_inert_guards() {
    let c = Collector::new_disabled();
    let mut span = c.span("ghost");
    assert_eq!(span.id(), SpanId::NONE);
    span.set_arg("k", "v");
    drop(span);
    c.event("ghost.event", vec![("k", "v".to_string())]);
    c.counter_add("ghost.counter", 1);
    let t = c.timer();
    assert!(!t.is_live());
    c.observe("ghost.lat", t);
    c.observe_ns("ghost.lat", 42);
    assert_eq!(c.current_span(), SpanId::NONE);
    assert_eq!(c.duration(SpanId::NONE), Duration::ZERO);
    let trace = c.snapshot();
    assert!(trace.spans().is_empty());
    assert!(trace.events().is_empty());
    assert!(trace.counters().is_empty());
    assert!(trace.histograms().is_empty());
}

#[test]
fn enable_toggles_recording_mid_stream() {
    let c = Collector::new_disabled();
    drop(c.span("before"));
    c.enable();
    drop(c.span("during"));
    c.disable();
    drop(c.span("after"));
    let trace = c.snapshot();
    assert_eq!(trace.spans().len(), 1);
    assert_eq!(trace.spans()[0].name, "during");
}

#[test]
fn chrome_trace_matches_the_trace_event_format() {
    let c = Collector::new();
    {
        let _a = c.span("a");
        let mut b = c.span("b");
        b.set_arg("k", "v");
        c.event("e", vec![("n", "1".to_string())]);
    }
    let stripped = export::strip_timing(&c.snapshot().chrome_trace());
    // Golden output per the Chrome trace-event spec: complete events
    // carry ph:"X" with ts/dur, instants ph:"i" with a scope, and every
    // record carries pid/tid. Timestamps/tids are zeroed by
    // strip_timing; span ids are canonical (parent before child).
    let expected = concat!(
        "{\"traceEvents\":[\n",
        " {\"name\":\"a\",\"cat\":\"separ\",\"ph\":\"X\",\"ts\":0,\"dur\":0,",
        "\"pid\":1,\"tid\":0,\"args\":{\"span\":1,\"parent\":0}},\n",
        " {\"name\":\"b\",\"cat\":\"separ\",\"ph\":\"X\",\"ts\":0,\"dur\":0,",
        "\"pid\":1,\"tid\":0,\"args\":{\"span\":2,\"parent\":1,\"k\":\"v\"}},\n",
        " {\"name\":\"e\",\"cat\":\"separ\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0,",
        "\"pid\":1,\"tid\":0,\"args\":{\"span\":2,\"n\":\"1\"}}\n",
        "],\"displayTimeUnit\":\"ms\"}\n",
    );
    assert_eq!(stripped, expected);
}

#[test]
fn events_jsonl_emits_one_object_per_event() {
    let c = Collector::new();
    {
        let _s = c.span("stage");
        c.event("tick", vec![("n", "1".to_string())]);
        c.event("tick", vec![("n", "2".to_string())]);
    }
    let stripped = export::strip_timing(&c.snapshot().events_jsonl());
    let lines: Vec<&str> = stripped.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(
        lines[0],
        "{\"name\":\"tick\",\"span\":1,\"tid\":0,\"ts_us\":0,\"args\":{\"n\":\"1\"}}"
    );
    assert_eq!(
        lines[1],
        "{\"name\":\"tick\",\"span\":1,\"tid\":0,\"ts_us\":0,\"args\":{\"n\":\"2\"}}"
    );
}

/// Runs the same fan-out workload and returns the stripped exports.
/// Thread scheduling scrambles recording order differently every run;
/// canonicalization must hide that.
fn scrambled_run() -> (String, String) {
    let c = &Collector::new();
    let root = c.span("root");
    let parent = c.current_span();
    std::thread::scope(|scope| {
        for i in 0..8 {
            scope.spawn(move || {
                let _ctx = c.adopt(parent);
                let mut outer = c.span("chunk");
                outer.set_arg("i", i.to_string());
                c.event("chunk.start", vec![("i", i.to_string())]);
                for j in 0..3 {
                    let mut inner = c.span("item");
                    inner.set_arg("j", j.to_string());
                }
            });
        }
    });
    drop(root);
    let trace = c.snapshot();
    (
        export::strip_timing(&trace.chrome_trace()),
        export::strip_timing(&trace.events_jsonl()),
    )
}

#[test]
fn canonicalized_exports_are_identical_across_interleavings() {
    let (trace_a, events_a) = scrambled_run();
    let (trace_b, events_b) = scrambled_run();
    assert_eq!(trace_a, trace_b, "chrome trace must be run-independent");
    assert_eq!(events_a, events_b, "events JSONL must be run-independent");
    // Sanity: the workload really is in there.
    assert!(trace_a.contains("\"name\":\"chunk\""));
    assert_eq!(events_a.lines().count(), 8);
}

#[test]
fn subtree_queries_see_only_the_rooted_subtree() {
    let c = Collector::new();
    let outer = c.span("outer");
    let outer_id = outer.id();
    {
        let _mid = c.span("mid");
        drop(c.span("leaf"));
        drop(c.span("leaf"));
    }
    drop(outer);
    // A sibling tree that must not leak into the subtree queries.
    {
        let _other = c.span("other");
        drop(c.span("leaf"));
    }
    assert_eq!(c.subtree_count(outer_id, "leaf"), 2);
    assert_eq!(c.subtree_count(outer_id, "mid"), 1);
    let trace = c.snapshot();
    assert_eq!(trace.count_named("leaf"), 3);
    let sub = c.snapshot_subtree(outer_id);
    assert_eq!(sub.count_named("leaf"), 2);
    assert_eq!(sub.count_named("other"), 0);
    assert!(c.subtree_sum(outer_id, "leaf") <= c.duration(outer_id));
}

#[test]
fn text_summary_reports_spans_counters_and_histograms() {
    let c = Collector::new();
    drop(c.span("work"));
    c.counter_add("widgets", 3);
    c.observe_ns("lat", 5_000);
    let summary = c.snapshot().text_summary();
    assert!(summary.contains("work"));
    assert!(summary.contains("widgets"));
    assert!(summary.contains("3"));
    assert!(summary.contains("lat"));
    assert!(summary.contains("count=1"));
}
