//! The simulated Android device runtime.
//!
//! Installed apps' components execute real sdex bytecode on the
//! interpreter; framework calls are served by a syscall layer that models
//! the ICC bus (asynchronous envelopes, Android resolution rules) and the
//! source/sink APIs (with tagged payloads). The policy enforcement points
//! sit exactly where the paper's Xposed hooks sit: on every ICC API call
//! (send side) and on every delivery (receive side). Blocked calls are
//! silently skipped — the app continues in degraded mode, as the paper
//! describes for asynchronous ICC.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use separ_android::api::{self, ApiKind, IccMethod, IntentConfigKind};
use separ_android::resolution::{self, IntentData};
use separ_android::types::Resource;
use separ_core::policy::{Policy, PolicyEvent};
use separ_dex::manifest::ComponentKind;
use separ_dex::program::Apk;
use separ_dex::vm::{Heap, ObjRef, Syscalls, Value, Vm};
use separ_dex::VmError;

use crate::audit::{AuditEvent, AuditLog};
use crate::pdp::{Decision, IccContext, Pdp, PromptHandler};
use crate::tag;

/// An ICC message in flight.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Index of the sending app (`None` for device-external injections).
    pub from_app: Option<usize>,
    /// Sending component class.
    pub from_component: String,
    /// The ICC method used.
    pub via: IccMethod,
    /// The marshalled intent (extras keep their payload tags).
    pub intent: IntentData,
    /// For result-requesting sends: where the reply goes.
    pub reply_to: Option<(usize, String)>,
}

impl Envelope {
    /// Resource tags carried by the envelope's extras.
    pub fn tags(&self) -> BTreeSet<Resource> {
        self.intent
            .extras
            .values()
            .filter_map(|v| tag::extract(v))
            .collect()
    }
}

/// Pre-resolved per-app metadata (cheap to consult during execution).
#[derive(Clone, Debug)]
struct AppMeta {
    package: String,
    permissions: Vec<String>,
}

/// One installed app.
#[derive(Debug)]
struct InstalledApp {
    apk: Arc<Apk>,
    heap: Heap,
}

/// A dynamically registered broadcast receiver (runtime-visible; invisible
/// to static extraction — the paper's documented blind spot).
#[derive(Clone, Debug)]
struct DynamicReceiver {
    app: usize,
    class: String,
    action: String,
}

/// Counters for the enforcement-overhead benchmark (RQ4).
#[derive(Debug, Default, Clone, Copy)]
pub struct HookStats {
    /// ICC calls intercepted.
    pub icc_hooks: u64,
    /// Deliveries intercepted.
    pub delivery_hooks: u64,
}

/// The simulated device.
#[derive(Debug)]
pub struct Device {
    apps: Vec<InstalledApp>,
    meta: Vec<AppMeta>,
    pdp: Pdp,
    queue: VecDeque<Envelope>,
    dynamic_receivers: Vec<DynamicReceiver>,
    /// The audit log (public for assertions).
    pub audit: AuditLog,
    enforcement: bool,
    hook_stats: HookStats,
    vm_budget: u64,
    delivery_limit: usize,
}

impl Device {
    /// Boots a device with the given apps installed and no policies.
    pub fn new(apks: Vec<Apk>) -> Device {
        let meta = apks
            .iter()
            .map(|a| AppMeta {
                package: a.manifest.package.clone(),
                permissions: a.manifest.uses_permissions.clone(),
            })
            .collect();
        Device {
            apps: apks
                .into_iter()
                .map(|apk| InstalledApp {
                    apk: Arc::new(apk),
                    heap: Heap::new(),
                })
                .collect(),
            meta,
            pdp: Pdp::permissive(),
            queue: VecDeque::new(),
            dynamic_receivers: Vec::new(),
            audit: AuditLog::new(),
            enforcement: false,
            hook_stats: HookStats::default(),
            vm_budget: 1_000_000,
            delivery_limit: 10_000,
        }
    }

    /// Installs synthesized policies and enables enforcement.
    pub fn install_policies(
        &mut self,
        policies: Vec<Policy>,
        bundle_packages: Vec<String>,
        prompt: PromptHandler,
    ) {
        self.pdp = Pdp::new(policies, bundle_packages).with_prompt(prompt);
        self.enforcement = true;
    }

    /// Disables enforcement (hooks still counted if `count_hooks`).
    pub fn set_enforcement(&mut self, enabled: bool) {
        self.enforcement = enabled;
    }

    /// Applies an incremental policy change to the running PDP (see
    /// `Pdp::apply_delta`). Enforcement stays in whatever state it is.
    pub fn apply_policy_delta(
        &mut self,
        added: Vec<separ_core::policy::Policy>,
        removed: &[separ_core::policy::Policy],
    ) {
        self.pdp.apply_delta(added, removed);
    }

    /// Hook interception counters.
    pub fn hook_stats(&self) -> HookStats {
        self.hook_stats
    }

    /// The policy decision point (for prompt/evaluation statistics).
    pub fn pdp(&self) -> &Pdp {
        &self.pdp
    }

    /// Index of an installed app by package.
    pub fn app_index(&self, package: &str) -> Option<usize> {
        self.meta.iter().position(|m| m.package == package)
    }

    /// Installs an app onto the running device. Returns `false` (and does
    /// nothing) if the package name is already taken.
    pub fn install_apk(&mut self, apk: Apk) -> bool {
        if self.app_index(&apk.manifest.package).is_some() {
            return false;
        }
        self.meta.push(AppMeta {
            package: apk.manifest.package.clone(),
            permissions: apk.manifest.uses_permissions.clone(),
        });
        self.apps.push(InstalledApp {
            apk: Arc::new(apk),
            heap: Heap::new(),
        });
        true
    }

    /// Uninstalls an app. In-flight envelopes from or to it are dropped
    /// and its dynamic receivers unregistered. Returns `false` if the
    /// package was not installed.
    pub fn uninstall_package(&mut self, package: &str) -> bool {
        let Some(idx) = self.app_index(package) else {
            return false;
        };
        self.apps.remove(idx);
        self.meta.remove(idx);
        self.dynamic_receivers.retain(|d| d.app != idx);
        // Remaining references index into the shrunk vectors: remap.
        for d in &mut self.dynamic_receivers {
            if d.app > idx {
                d.app -= 1;
            }
        }
        self.queue.retain(|e| e.from_app != Some(idx));
        for e in &mut self.queue {
            if let Some(fa) = e.from_app {
                if fa > idx {
                    e.from_app = Some(fa - 1);
                }
            }
            e.reply_to = match e.reply_to.take() {
                Some((ra, c)) if ra > idx => Some((ra - 1, c)),
                Some((ra, _)) if ra == idx => None,
                other => other,
            };
        }
        true
    }

    /// Launches a component's lifecycle entry directly (like the launcher
    /// or the system would), with no incoming intent.
    pub fn launch(&mut self, package: &str, component_class: &str) -> bool {
        let Some(idx) = self.app_index(package) else {
            return false;
        };
        self.execute_component(idx, component_class, None, None)
    }

    /// Runs queued deliveries until the bus is idle. Returns the number of
    /// envelopes processed.
    pub fn run_until_idle(&mut self) -> usize {
        let mut processed = 0;
        while let Some(env) = self.queue.pop_front() {
            processed += 1;
            if processed > self.delivery_limit {
                break;
            }
            self.deliver(env);
        }
        processed
    }

    /// Resolves an envelope to receiving `(app, component)` pairs.
    fn resolve(&self, env: &Envelope) -> Vec<(usize, String)> {
        if env.via == IccMethod::SetResult {
            return env.reply_to.iter().cloned().collect();
        }
        let kind = match env.via {
            IccMethod::StartActivity | IccMethod::StartActivityForResult => ComponentKind::Activity,
            IccMethod::StartService | IccMethod::BindService => ComponentKind::Service,
            IccMethod::SendBroadcast => ComponentKind::Receiver,
            _ => ComponentKind::Provider,
        };
        let mut out = Vec::new();
        if let Some(target) = &env.intent.explicit_target {
            for (ai, app) in self.apps.iter().enumerate() {
                if let Some(decl) = app.apk.manifest.component(target) {
                    let same_app = env.from_app == Some(ai);
                    if decl.kind == kind && (same_app || decl.is_effectively_exported()) {
                        out.push((ai, target.clone()));
                    }
                }
            }
            return out;
        }
        for (ai, app) in self.apps.iter().enumerate() {
            for decl in &app.apk.manifest.components {
                if decl.kind != kind {
                    continue;
                }
                let same_app = env.from_app == Some(ai);
                if !same_app && !decl.is_effectively_exported() {
                    continue;
                }
                if resolution::any_filter_matches(&env.intent, &decl.intent_filters) {
                    out.push((ai, decl.class.clone()));
                }
            }
        }
        // Dynamically registered receivers participate in broadcast
        // delivery (they exist at runtime even though static analysis
        // does not model them).
        if kind == ComponentKind::Receiver {
            for dr in &self.dynamic_receivers {
                if Some(&dr.action) == env.intent.action.as_ref() {
                    out.push((dr.app, dr.class.clone()));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    fn deliver(&mut self, env: Envelope) {
        let receivers = self.resolve(&env);
        if receivers.is_empty() {
            self.audit.record(AuditEvent::IccUndeliverable {
                action: env.intent.action.clone(),
            });
            return;
        }
        for (ai, class) in receivers {
            self.hook_stats.delivery_hooks += 1;
            separ_obs::counter_add("pep.delivery_hooks", 1);
            if self.enforcement {
                let ctx = IccContext {
                    sender_app: env
                        .from_app
                        .map(|i| self.meta[i].package.clone())
                        .unwrap_or_else(|| "<external>".to_string()),
                    sender_component: env.from_component.clone(),
                    receiver_app: Some(self.meta[ai].package.clone()),
                    receiver_component: Some(class.clone()),
                    action: env.intent.action.clone(),
                    tags: env.tags(),
                };
                let timer = separ_obs::timer();
                let decision = self.pdp.evaluate(PolicyEvent::IccReceive, &ctx);
                separ_obs::observe("pdp.decision", timer);
                separ_obs::counter_add(
                    if decision.allows() {
                        "pdp.allowed"
                    } else {
                        "pdp.blocked"
                    },
                    1,
                );
                match &decision {
                    Decision::PromptAllowed { policy_id } => {
                        self.audit.record(AuditEvent::PromptShown {
                            policy_id: *policy_id,
                            allowed: true,
                        });
                    }
                    Decision::PromptDenied { policy_id, .. } => {
                        self.audit.record(AuditEvent::PromptShown {
                            policy_id: *policy_id,
                            allowed: false,
                        });
                    }
                    _ => {}
                }
                if !decision.allows() {
                    let (policy_id, vulnerability) = match decision {
                        Decision::Deny {
                            policy_id,
                            vulnerability,
                        }
                        | Decision::PromptDenied {
                            policy_id,
                            vulnerability,
                        } => (policy_id, vulnerability),
                        _ => unreachable!("non-allowing decision"),
                    };
                    self.audit.record(AuditEvent::IccBlocked {
                        policy_id,
                        vulnerability,
                        to_component: Some(class.clone()),
                    });
                    continue;
                }
            }
            self.audit.record(AuditEvent::IccDelivered {
                to_app: self.meta[ai].package.clone(),
                to_component: class.clone(),
                intent: env.intent.clone(),
            });
            self.execute_component(ai, &class, Some(&env), env.reply_to.clone());
        }
    }

    /// Executes the lifecycle entry point of a component, optionally with
    /// a received envelope.
    fn execute_component(
        &mut self,
        app_idx: usize,
        class: &str,
        env: Option<&Envelope>,
        _reply: Option<(usize, String)>,
    ) -> bool {
        let apk = self.apps[app_idx].apk.clone();
        let Some(decl) = apk.manifest.component(class) else {
            return false;
        };
        let entry = match decl.kind {
            ComponentKind::Activity => {
                if env.map(|e| e.via) == Some(IccMethod::SetResult) {
                    "onActivityResult"
                } else {
                    "onCreate"
                }
            }
            ComponentKind::Service => {
                if env.map(|e| e.via) == Some(IccMethod::BindService) {
                    "onBind"
                } else {
                    "onStartCommand"
                }
            }
            ComponentKind::Receiver => "onReceive",
            ComponentKind::Provider => match env.map(|e| e.via) {
                Some(IccMethod::ProviderInsert) => "insert",
                Some(IccMethod::ProviderUpdate) => "update",
                Some(IccMethod::ProviderDelete) => "delete",
                _ => "query",
            },
        };
        let Some(c) = apk.dex.class_by_name(class) else {
            return false;
        };
        let Some((_, method)) = apk.dex.resolve_method(c.ty, entry) else {
            return false;
        };
        let num_params = method.num_params;
        let mut heap = std::mem::take(&mut self.apps[app_idx].heap);
        let this = Value::Object(heap.alloc(class.to_string()));
        let received = env.map(|e| unmarshal_intent(&mut heap, &e.intent));
        let mut args = vec![this];
        if num_params >= 2 {
            args.push(received.map(Value::Object).unwrap_or(Value::Null));
        }
        while args.len() < num_params as usize {
            args.push(Value::Null);
        }
        let mut sys = DeviceSyscalls {
            app_idx,
            component: class.to_string(),
            package: self.meta[app_idx].package.clone(),
            meta: &self.meta,
            pdp: &mut self.pdp,
            audit: &mut self.audit,
            queue: &mut self.queue,
            dynamic_receivers: &mut self.dynamic_receivers,
            enforcement: self.enforcement,
            hook_stats: &mut self.hook_stats,
            received,
            caller_app: env.and_then(|e| e.from_app),
            reply_to: env.and_then(|e| {
                if e.via.requests_result() {
                    e.from_app.map(|fa| (fa, e.from_component.clone()))
                } else {
                    None
                }
            }),
        };
        let mut vm = Vm::with_budget(&apk.dex, self.vm_budget);
        let result = vm.invoke(&mut heap, &mut sys, class, entry, args);
        self.apps[app_idx].heap = heap;
        match result {
            Ok(_) => true,
            Err(VmError::BudgetExhausted) => false,
            Err(_) => false,
        }
    }
}

/// Marshals an intent heap object into wire form.
fn marshal_intent(heap: &Heap, obj: ObjRef) -> IntentData {
    let o = heap.get(obj);
    let mut intent = IntentData::new();
    for (k, v) in &o.fields {
        let as_string = |v: &Value| match v {
            Value::Str(s) => s.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Null => String::new(),
            Value::Object(_) => "<object>".to_string(),
        };
        if k == "action" {
            let s = as_string(v);
            if !s.is_empty() {
                intent.action = Some(s);
            }
        } else if k == "dataType" {
            intent.data_type = Some(as_string(v));
        } else if k == "dataScheme" {
            intent.data_scheme = Some(as_string(v));
        } else if k == "target" {
            let s = as_string(v);
            if !s.is_empty() {
                intent.explicit_target = Some(s);
            }
        } else if k == "categories" {
            for c in as_string(v).split(';').filter(|c| !c.is_empty()) {
                intent.categories.insert(c.to_string());
            }
        } else if let Some(key) = k.strip_prefix("extra:") {
            intent.extras.insert(key.to_string(), as_string(v));
        }
    }
    intent
}

/// Builds an intent heap object from wire form.
fn unmarshal_intent(heap: &mut Heap, intent: &IntentData) -> ObjRef {
    let obj = heap.alloc(api::class::INTENT.to_string());
    let o = heap.get_mut(obj);
    if let Some(a) = &intent.action {
        o.fields.insert("action".into(), Value::str(a));
    }
    if let Some(t) = &intent.data_type {
        o.fields.insert("dataType".into(), Value::str(t));
    }
    if let Some(s) = &intent.data_scheme {
        o.fields.insert("dataScheme".into(), Value::str(s));
    }
    if let Some(t) = &intent.explicit_target {
        o.fields.insert("target".into(), Value::str(t));
    }
    if !intent.categories.is_empty() {
        let joined: Vec<&str> = intent.categories.iter().map(String::as_str).collect();
        o.fields
            .insert("categories".into(), Value::str(joined.join(";")));
    }
    for (k, v) in &intent.extras {
        o.fields.insert(format!("extra:{k}"), Value::str(v));
    }
    obj
}

/// The syscall layer: Android APIs as seen by running bytecode.
struct DeviceSyscalls<'a> {
    app_idx: usize,
    component: String,
    package: String,
    meta: &'a [AppMeta],
    pdp: &'a mut Pdp,
    audit: &'a mut AuditLog,
    queue: &'a mut VecDeque<Envelope>,
    dynamic_receivers: &'a mut Vec<DynamicReceiver>,
    enforcement: bool,
    hook_stats: &'a mut HookStats,
    received: Option<ObjRef>,
    caller_app: Option<usize>,
    reply_to: Option<(usize, String)>,
}

impl DeviceSyscalls<'_> {
    fn icc_send(&mut self, heap: &Heap, via: IccMethod, args: &[Value]) {
        // Find the intent argument.
        let Some(obj) = args
            .iter()
            .filter_map(Value::as_object)
            .find(|&o| heap.get(o).class == api::class::INTENT)
        else {
            return;
        };
        let intent = marshal_intent(heap, obj);
        self.hook_stats.icc_hooks += 1;
        separ_obs::counter_add("pep.icc_hooks", 1);
        if self.enforcement {
            let tags: BTreeSet<Resource> = intent
                .extras
                .values()
                .filter_map(|v| tag::extract(v))
                .collect();
            let ctx = IccContext {
                sender_app: self.package.clone(),
                sender_component: self.component.clone(),
                receiver_app: None,
                receiver_component: intent.explicit_target.clone(),
                action: intent.action.clone(),
                tags,
            };
            let timer = separ_obs::timer();
            let decision = self.pdp.evaluate(PolicyEvent::IccSend, &ctx);
            separ_obs::observe("pdp.decision", timer);
            separ_obs::counter_add(
                if decision.allows() {
                    "pdp.allowed"
                } else {
                    "pdp.blocked"
                },
                1,
            );
            match &decision {
                Decision::PromptAllowed { policy_id } => {
                    self.audit.record(AuditEvent::PromptShown {
                        policy_id: *policy_id,
                        allowed: true,
                    });
                }
                Decision::PromptDenied { policy_id, .. } => {
                    self.audit.record(AuditEvent::PromptShown {
                        policy_id: *policy_id,
                        allowed: false,
                    });
                }
                _ => {}
            }
            if !decision.allows() {
                let (policy_id, vulnerability) = match decision {
                    Decision::Deny {
                        policy_id,
                        vulnerability,
                    }
                    | Decision::PromptDenied {
                        policy_id,
                        vulnerability,
                    } => (policy_id, vulnerability),
                    _ => unreachable!("non-allowing decision"),
                };
                self.audit.record(AuditEvent::IccBlocked {
                    policy_id,
                    vulnerability,
                    to_component: intent.explicit_target.clone(),
                });
                return; // skipped call: degraded mode, no crash
            }
        }
        self.audit.record(AuditEvent::IccSent {
            from_app: self.package.clone(),
            from_component: self.component.clone(),
            intent: intent.clone(),
        });
        let reply_to = if via == IccMethod::SetResult {
            self.reply_to.clone()
        } else if via.requests_result() {
            Some((self.app_idx, self.component.clone()))
        } else {
            None
        };
        self.queue.push_back(Envelope {
            from_app: Some(self.app_idx),
            from_component: self.component.clone(),
            via,
            intent,
            reply_to,
        });
    }

    fn sink_fired(&mut self, sink: Resource, args: &[Value]) {
        let mut tags = BTreeSet::new();
        let mut detail = String::new();
        for a in args {
            if let Some(s) = a.as_str() {
                if let Some(t) = tag::extract(s) {
                    tags.insert(t);
                }
                if !detail.is_empty() {
                    detail.push(' ');
                }
                detail.push_str(tag::payload(s));
            }
        }
        self.audit.record(AuditEvent::SinkFired {
            sink,
            app: self.package.clone(),
            tags,
            detail,
        });
    }
}

impl Syscalls for DeviceSyscalls<'_> {
    fn call(
        &mut self,
        heap: &mut Heap,
        class: &str,
        name: &str,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        match api::classify(class, name) {
            ApiKind::IntentConfig(kind) => {
                let Some(obj) = args.first().and_then(Value::as_object) else {
                    return Ok(Some(Value::Null));
                };
                let as_string = |v: &Value| -> String {
                    match v {
                        Value::Str(s) => s.to_string(),
                        Value::Int(i) => i.to_string(),
                        _ => String::new(),
                    }
                };
                match kind {
                    IntentConfigKind::Init => {}
                    IntentConfigKind::SetAction => {
                        if let Some(v) = args.get(1) {
                            heap.get_mut(obj)
                                .fields
                                .insert("action".into(), Value::str(as_string(v)));
                        }
                    }
                    IntentConfigKind::AddCategory => {
                        if let Some(v) = args.get(1) {
                            let mut cur = heap
                                .get(obj)
                                .fields
                                .get("categories")
                                .and_then(|c| c.as_str().map(String::from))
                                .unwrap_or_default();
                            if !cur.is_empty() {
                                cur.push(';');
                            }
                            cur.push_str(&as_string(v));
                            heap.get_mut(obj)
                                .fields
                                .insert("categories".into(), Value::str(cur));
                        }
                    }
                    IntentConfigKind::SetType => {
                        if let Some(v) = args.get(1) {
                            heap.get_mut(obj)
                                .fields
                                .insert("dataType".into(), Value::str(as_string(v)));
                        }
                    }
                    IntentConfigKind::SetData => {
                        if let Some(v) = args.get(1) {
                            let s = as_string(v);
                            let scheme = s.split(':').next().unwrap_or(&s).to_string();
                            heap.get_mut(obj)
                                .fields
                                .insert("dataScheme".into(), Value::str(scheme));
                        }
                    }
                    IntentConfigKind::PutExtra => {
                        if let (Some(k), Some(v)) = (args.get(1), args.get(2)) {
                            let key = as_string(k);
                            heap.get_mut(obj)
                                .fields
                                .insert(format!("extra:{key}"), v.clone());
                        }
                    }
                    IntentConfigKind::SetTarget => {
                        // setClassName(intent, class) or (intent, pkg, class):
                        // the last string argument is the class.
                        if let Some(v) = args.iter().skip(1).rev().find_map(Value::as_str) {
                            heap.get_mut(obj)
                                .fields
                                .insert("target".into(), Value::str(v));
                        }
                    }
                }
                Ok(Some(Value::Null))
            }
            ApiKind::IntentRead => match name {
                "getStringExtra" | "getIntExtra" => {
                    let obj = args.first().and_then(Value::as_object);
                    let key = args.get(1).and_then(Value::as_str).unwrap_or("");
                    Ok(Some(
                        obj.and_then(|o| heap.get(o).fields.get(&format!("extra:{key}")).cloned())
                            .unwrap_or(Value::Null),
                    ))
                }
                "getAction" => {
                    let obj = args.first().and_then(Value::as_object);
                    Ok(Some(
                        obj.and_then(|o| heap.get(o).fields.get("action").cloned())
                            .unwrap_or(Value::Null),
                    ))
                }
                "getIntent" => Ok(Some(
                    self.received.map(Value::Object).unwrap_or(Value::Null),
                )),
                _ => Ok(Some(Value::Null)),
            },
            ApiKind::Icc(via) => {
                self.icc_send(heap, via, args);
                Ok(Some(Value::Null))
            }
            ApiKind::PermissionCheck => {
                let perm = args.iter().skip(1).find_map(Value::as_str).unwrap_or("");
                let granted = self
                    .caller_app
                    .map(|c| self.meta[c].permissions.iter().any(|p| p == perm))
                    .unwrap_or(false);
                Ok(Some(Value::Int(i64::from(granted))))
            }
            ApiKind::DynamicRegister => {
                // registerReceiver(this, receiverClass, action)
                let mut strings = args.iter().skip(1).filter_map(Value::as_str);
                let class = strings.next().unwrap_or("").to_string();
                let action = strings.next().unwrap_or("").to_string();
                if !class.is_empty() && !action.is_empty() {
                    self.dynamic_receivers.push(DynamicReceiver {
                        app: self.app_idx,
                        class,
                        action,
                    });
                }
                Ok(Some(Value::Null))
            }
            ApiKind::Source(resource) => {
                let payload = match resource {
                    Resource::Location => "geo:37.4219,-122.0840".to_string(),
                    Resource::DeviceId => "356938035643809".to_string(),
                    _ => format!("{}-data", resource.name().to_lowercase()),
                };
                Ok(Some(Value::str(tag::wrap(resource, &payload))))
            }
            ApiKind::Sink(resource) => {
                self.sink_fired(resource, args);
                Ok(Some(Value::Null))
            }
            ApiKind::Neutral => {
                // Unknown framework API (e.g. SmsManager.getDefault):
                // return an opaque object of the declared class so virtual
                // dispatch on it lands back in the syscall layer.
                if name == "getDefault" || name == "getSystemService" {
                    return Ok(Some(Value::Object(heap.alloc(class.to_string()))));
                }
                Ok(Some(Value::Null))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::api::class;
    use separ_android::types::perm;
    use separ_core::policy::{Condition, PolicyAction};
    use separ_dex::build::ApkBuilder;
    use separ_dex::manifest::{ComponentDecl, IntentFilterDecl};

    /// The messenger app: exported service that texts whatever it is told.
    fn messenger() -> Apk {
        let mut apk = ApkBuilder::new("com.messenger");
        apk.uses_permission(perm::SEND_SMS);
        let mut decl = ComponentDecl::new("LMessageSender;", ComponentKind::Service);
        decl.exported = Some(true);
        apk.add_component(decl);
        let mut cb = apk.class_extends("LMessageSender;", class::SERVICE);
        let mut m = cb.method("onStartCommand", 2, false, false);
        let num = m.reg();
        let msg = m.reg();
        let k = m.reg();
        let mgr = m.reg();
        let intent = m.param(1);
        m.const_string(k, "PHONE_NUM");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
        m.move_result(num);
        m.const_string(k, "TEXT_MSG");
        m.invoke_virtual(class::INTENT, "getStringExtra", &[intent, k], true);
        m.move_result(msg);
        m.invoke_static(class::SMS_MANAGER, "getDefault", &[], true);
        m.move_result(mgr);
        m.invoke_virtual(
            class::SMS_MANAGER,
            "sendTextMessage",
            &[mgr, num, msg],
            false,
        );
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    /// A malicious app that reads GPS and texts it via the messenger.
    fn malware() -> Apk {
        let mut apk = ApkBuilder::new("com.mal");
        let mut decl = ComponentDecl::new("LMal;", ComponentKind::Activity);
        decl.exported = Some(true);
        apk.add_component(decl);
        let mut cb = apk.class_extends("LMal;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let loc = m.reg();
        let i = m.reg();
        let s = m.reg();
        m.invoke_virtual(
            class::LOCATION_MANAGER,
            "getLastKnownLocation",
            &[loc],
            true,
        );
        m.move_result(loc);
        m.new_instance(i, class::INTENT);
        m.const_string(s, "LMessageSender;");
        m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
        m.const_string(s, "PHONE_NUM");
        let n = m.reg();
        m.const_string(n, "+15551234");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, n], false);
        m.const_string(s, "TEXT_MSG");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, s, loc], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        apk.finish()
    }

    #[test]
    fn attack_succeeds_without_enforcement() {
        let mut device = Device::new(vec![messenger(), malware()]);
        assert!(device.launch("com.mal", "LMal;"));
        device.run_until_idle();
        // The SMS containing tagged location data left the device.
        assert!(device.audit.leaked(Resource::Location, Resource::Sms));
        let sms: Vec<_> = device.audit.sinks_fired(Resource::Sms).collect();
        assert_eq!(sms.len(), 1);
        match sms[0] {
            AuditEvent::SinkFired { detail, .. } => {
                assert!(detail.contains("+15551234"), "{detail}");
                assert!(detail.contains("geo:"), "{detail}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn policy_blocks_the_attack() {
        let mut device = Device::new(vec![messenger(), malware()]);
        let policy = Policy {
            id: 0,
            vulnerability: "information-leakage".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![
                Condition::ReceiverIs("LMessageSender;".into()),
                Condition::ExtraTagged("LOCATION".into()),
            ],
            action: PolicyAction::Prompt,
            rationale: "test".into(),
        };
        device.install_policies(
            vec![policy],
            vec!["com.messenger".into()],
            PromptHandler::AlwaysDeny,
        );
        device.launch("com.mal", "LMal;");
        device.run_until_idle();
        assert!(
            !device.audit.leaked(Resource::Location, Resource::Sms),
            "the leak must be blocked"
        );
        assert_eq!(device.audit.blocked_count(), 1);
        assert_eq!(device.pdp().prompts(), 1);
        // Degraded mode: nothing crashed, the malicious app simply got no
        // result.
    }

    #[test]
    fn user_consent_lets_the_icc_through() {
        let mut device = Device::new(vec![messenger(), malware()]);
        let policy = Policy {
            id: 0,
            vulnerability: "information-leakage".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![Condition::ReceiverIs("LMessageSender;".into())],
            action: PolicyAction::Prompt,
            rationale: "test".into(),
        };
        device.install_policies(vec![policy], vec![], PromptHandler::AlwaysAllow);
        device.launch("com.mal", "LMal;");
        device.run_until_idle();
        assert!(device.audit.leaked(Resource::Location, Resource::Sms));
        assert_eq!(device.audit.blocked_count(), 0);
    }

    #[test]
    fn implicit_intents_resolve_via_filters() {
        // A broadcaster and a receiver connected by action string.
        let mut sender = ApkBuilder::new("com.sender");
        sender.add_component(ComponentDecl::new("LSend;", ComponentKind::Activity));
        let mut cb = sender.class_extends("LSend;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let s = m.reg();
        m.new_instance(i, class::INTENT);
        m.const_string(s, "com.example.PING");
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.invoke_virtual(class::CONTEXT, "sendBroadcast", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let sender = sender.finish();

        let mut rec = ApkBuilder::new("com.rec");
        let mut decl = ComponentDecl::new("LRec;", ComponentKind::Receiver);
        decl.intent_filters
            .push(IntentFilterDecl::for_actions(["com.example.PING"]));
        rec.add_component(decl);
        let mut cb = rec.class_extends("LRec;", class::RECEIVER);
        let mut m = cb.method("onReceive", 2, false, false);
        let v = m.reg();
        m.invoke_virtual(class::INTENT, "getAction", &[m.param(1)], true);
        m.move_result(v);
        m.invoke_virtual(class::LOG, "d", &[v], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let rec = rec.finish();

        let mut device = Device::new(vec![sender, rec]);
        device.launch("com.sender", "LSend;");
        device.run_until_idle();
        let logs: Vec<_> = device.audit.sinks_fired(Resource::Log).collect();
        assert_eq!(logs.len(), 1);
        match logs[0] {
            AuditEvent::SinkFired { detail, .. } => assert_eq!(detail, "com.example.PING"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn start_activity_for_result_round_trip() {
        // A asks B for a token; B replies via setResult; A logs it.
        let mut a = ApkBuilder::new("com.a");
        a.add_component(ComponentDecl::new("LA;", ComponentKind::Activity));
        let mut cb = a.class_extends("LA;", class::ACTIVITY);
        {
            let mut m = cb.method("onCreate", 1, false, false);
            let i = m.reg();
            let s = m.reg();
            m.new_instance(i, class::INTENT);
            m.const_string(s, "LB;");
            m.invoke_virtual(class::INTENT, "setClassName", &[i, s], false);
            m.invoke_virtual(
                class::ACTIVITY,
                "startActivityForResult",
                &[m.this(), i],
                false,
            );
            m.ret_void();
            m.finish();
        }
        {
            let mut m = cb.method("onActivityResult", 2, false, false);
            let v = m.reg();
            let k = m.reg();
            m.const_string(k, "token");
            m.invoke_virtual(class::INTENT, "getStringExtra", &[m.param(1), k], true);
            m.move_result(v);
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
        }
        cb.finish();
        let a = a.finish();

        let mut b = ApkBuilder::new("com.b");
        let mut decl = ComponentDecl::new("LB;", ComponentKind::Activity);
        decl.exported = Some(true);
        b.add_component(decl);
        let mut cb = b.class_extends("LB;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let k = m.reg();
        let v = m.reg();
        m.new_instance(i, class::INTENT);
        m.const_string(k, "token");
        m.const_string(v, "secret-42");
        m.invoke_virtual(class::INTENT, "putExtra", &[i, k, v], false);
        m.invoke_virtual(class::ACTIVITY, "setResult", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let b = b.finish();

        let mut device = Device::new(vec![a, b]);
        device.launch("com.a", "LA;");
        device.run_until_idle();
        let logs: Vec<_> = device.audit.sinks_fired(Resource::Log).collect();
        assert_eq!(logs.len(), 1, "events: {:?}", device.audit.events());
        match logs[0] {
            AuditEvent::SinkFired { detail, .. } => assert_eq!(detail, "secret-42"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn dynamic_receivers_get_broadcasts_at_runtime() {
        // An app registers a receiver at runtime; a broadcast reaches it
        // even though no static filter exists.
        let mut apk = ApkBuilder::new("com.dyn");
        apk.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        apk.add_component(ComponentDecl::new("LDynRec;", ComponentKind::Receiver));
        {
            let mut cb = apk.class_extends("LMain;", class::ACTIVITY);
            let mut m = cb.method("onCreate", 1, false, false);
            let c = m.reg();
            let a = m.reg();
            let i = m.reg();
            m.const_string(c, "LDynRec;");
            m.const_string(a, "com.dyn.EVENT");
            m.invoke_virtual(class::CONTEXT, "registerReceiver", &[m.this(), c, a], true);
            // Now broadcast to ourselves.
            m.new_instance(i, class::INTENT);
            m.invoke_virtual(class::INTENT, "setAction", &[i, a], false);
            m.invoke_virtual(class::CONTEXT, "sendBroadcast", &[m.this(), i], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        {
            let mut cb = apk.class_extends("LDynRec;", class::RECEIVER);
            let mut m = cb.method("onReceive", 2, false, false);
            let v = m.reg();
            m.const_string(v, "dynamic-hit");
            m.invoke_virtual(class::LOG, "d", &[v], false);
            m.ret_void();
            m.finish();
            cb.finish();
        }
        let mut device = Device::new(vec![apk.finish()]);
        device.launch("com.dyn", "LMain;");
        device.run_until_idle();
        assert_eq!(device.audit.sinks_fired(Resource::Log).count(), 1);
    }

    #[test]
    fn install_and_uninstall_at_runtime() {
        let mut device = Device::new(vec![messenger()]);
        assert!(device.install_apk(malware()));
        assert!(!device.install_apk(malware()), "duplicate package refused");
        assert!(device.launch("com.mal", "LMal;"));
        device.run_until_idle();
        assert!(device.audit.leaked(Resource::Location, Resource::Sms));
        assert!(device.uninstall_package("com.mal"));
        assert!(!device.uninstall_package("com.mal"));
        assert!(!device.launch("com.mal", "LMal;"), "gone after uninstall");
        // The messenger still works for legitimate traffic.
        assert!(device.app_index("com.messenger").is_some());
    }

    #[test]
    fn uninstall_drops_in_flight_envelopes() {
        let mut device = Device::new(vec![messenger(), malware()]);
        device.launch("com.mal", "LMal;"); // enqueues the forged intent
        assert!(device.uninstall_package("com.mal"));
        let processed = device.run_until_idle();
        assert_eq!(processed, 0, "the dead app's envelope was dropped");
        assert!(!device.audit.leaked(Resource::Location, Resource::Sms));
    }

    #[test]
    fn undeliverable_intents_are_audited() {
        let mut apk = ApkBuilder::new("com.lost");
        apk.add_component(ComponentDecl::new("LMain;", ComponentKind::Activity));
        let mut cb = apk.class_extends("LMain;", class::ACTIVITY);
        let mut m = cb.method("onCreate", 1, false, false);
        let i = m.reg();
        let s = m.reg();
        m.new_instance(i, class::INTENT);
        m.const_string(s, "no.such.ACTION");
        m.invoke_virtual(class::INTENT, "setAction", &[i, s], false);
        m.invoke_virtual(class::CONTEXT, "startService", &[m.this(), i], false);
        m.ret_void();
        m.finish();
        cb.finish();
        let mut device = Device::new(vec![apk.finish()]);
        device.launch("com.lost", "LMain;");
        device.run_until_idle();
        assert!(device
            .audit
            .events()
            .iter()
            .any(|e| matches!(e, AuditEvent::IccUndeliverable { action: Some(a) } if a == "no.such.ACTION")));
    }
}
