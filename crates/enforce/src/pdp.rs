//! The policy decision point (PDP).
//!
//! In the paper the PDP is an independent app storing the synthesized
//! policies; the PEP (an Xposed hook module) calls it on every intercepted
//! ICC method. Here the PDP evaluates ECA rules against an
//! [`IccContext`] and consults a pluggable prompt handler when a rule's
//! action is [`PolicyAction::Prompt`].

use std::collections::BTreeSet;

use separ_android::types::Resource;
use separ_core::policy::{Condition, Policy, PolicyAction, PolicyEvent};

/// Everything a condition can inspect about an intercepted ICC event.
#[derive(Clone, Debug, Default)]
pub struct IccContext {
    /// Sending app package.
    pub sender_app: String,
    /// Sending component class.
    pub sender_component: String,
    /// Receiving app package (known for receive events).
    pub receiver_app: Option<String>,
    /// Receiving component class (known for receive events).
    pub receiver_component: Option<String>,
    /// The intent's action.
    pub action: Option<String>,
    /// Resource tags carried by the intent's extras.
    pub tags: BTreeSet<Resource>,
}

/// The decision for one event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// No policy matched, or a matching policy allowed it.
    Allow,
    /// A policy blocked the event outright.
    Deny {
        /// The deciding policy.
        policy_id: u32,
        /// Its vulnerability category.
        vulnerability: String,
    },
    /// A policy prompted and the user refused.
    PromptDenied {
        /// The deciding policy.
        policy_id: u32,
        /// Its vulnerability category.
        vulnerability: String,
    },
    /// A policy prompted and the user consented.
    PromptAllowed {
        /// The deciding policy.
        policy_id: u32,
    },
}

impl Decision {
    /// Returns `true` if the event may proceed.
    pub fn allows(&self) -> bool {
        matches!(self, Decision::Allow | Decision::PromptAllowed { .. })
    }
}

/// How prompts are answered (the "user" in tests and benchmarks).
///
/// The paper's PDP "prompts the user for consent along with the
/// information that would help the user in making a decision, including
/// the description of the security threat as well as the name and
/// parameters of the intercepted event" — the [`PromptHandler::Callback`]
/// variant receives exactly that: the deciding policy (threat description
/// in its `rationale`) and the intercepted event's [`IccContext`].
pub enum PromptHandler {
    /// Always consent.
    AlwaysAllow,
    /// Always refuse.
    AlwaysDeny,
    /// Scripted decisions, consumed in order; refuses once exhausted.
    Scripted(Vec<bool>),
    /// Ask the embedder, passing the policy and the intercepted event.
    Callback(PromptCallback),
}

/// Embedder-supplied prompt answering function; see [`PromptHandler::Callback`].
pub type PromptCallback = Box<dyn FnMut(&Policy, &IccContext) -> bool + Send>;

impl std::fmt::Debug for PromptHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromptHandler::AlwaysAllow => f.write_str("AlwaysAllow"),
            PromptHandler::AlwaysDeny => f.write_str("AlwaysDeny"),
            PromptHandler::Scripted(v) => write!(f, "Scripted({v:?})"),
            PromptHandler::Callback(_) => f.write_str("Callback(..)"),
        }
    }
}

impl PromptHandler {
    fn answer(&mut self, policy: &Policy, ctx: &IccContext) -> bool {
        match self {
            PromptHandler::AlwaysAllow => true,
            PromptHandler::AlwaysDeny => false,
            PromptHandler::Scripted(answers) => {
                if answers.is_empty() {
                    false
                } else {
                    answers.remove(0)
                }
            }
            PromptHandler::Callback(f) => f(policy, ctx),
        }
    }
}

/// The policy decision point.
#[derive(Debug)]
pub struct Pdp {
    policies: Vec<Policy>,
    /// Packages of the analyzed bundle (for `SenderAppNotIn` defaults).
    bundle_packages: Vec<String>,
    prompt: PromptHandler,
    /// Number of evaluations performed.
    evaluations: u64,
    /// Number of prompts shown.
    prompts: u64,
}

impl Pdp {
    /// Creates a PDP over a policy set.
    pub fn new(policies: Vec<Policy>, bundle_packages: Vec<String>) -> Pdp {
        Pdp {
            policies,
            bundle_packages,
            prompt: PromptHandler::AlwaysDeny,
            evaluations: 0,
            prompts: 0,
        }
    }

    /// An empty PDP (no policies: everything allowed).
    pub fn permissive() -> Pdp {
        Pdp::new(Vec::new(), Vec::new())
    }

    /// Sets the prompt handler.
    pub fn with_prompt(mut self, prompt: PromptHandler) -> Pdp {
        self.prompt = prompt;
        self
    }

    /// The installed policies.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of prompts shown so far.
    pub fn prompts(&self) -> u64 {
        self.prompts
    }

    /// Applies a policy-set change: removes retired policies (matched by
    /// content, ignoring ids) and installs new ones, renumbering densely.
    /// This is how Marshmallow-style incremental re-synthesis reaches a
    /// running device without redeploying the whole set.
    pub fn apply_delta(&mut self, added: Vec<Policy>, removed: &[Policy]) {
        self.policies.retain(|p| {
            !removed.iter().any(|q| {
                p.vulnerability == q.vulnerability
                    && p.event == q.event
                    && p.conditions == q.conditions
                    && p.action == q.action
            })
        });
        self.policies.extend(added);
        for (i, p) in self.policies.iter_mut().enumerate() {
            p.id = i as u32;
        }
    }

    /// Evaluates an event against the policy set: the first matching
    /// policy decides.
    pub fn evaluate(&mut self, event: PolicyEvent, ctx: &IccContext) -> Decision {
        self.evaluations += 1;
        // Two-phase to appease the borrow checker: find the deciding
        // policy, then act on it.
        let hit = self
            .policies
            .iter()
            .position(|p| p.event == event && conditions_hold(p, ctx, &self.bundle_packages));
        let Some(i) = hit else {
            return Decision::Allow;
        };
        let (id, vulnerability, action) = {
            let p = &self.policies[i];
            (p.id, p.vulnerability.clone(), p.action)
        };
        match action {
            PolicyAction::Allow => Decision::Allow,
            PolicyAction::Deny => Decision::Deny {
                policy_id: id,
                vulnerability,
            },
            PolicyAction::Prompt => {
                self.prompts += 1;
                let policy = self.policies[i].clone();
                if self.prompt.answer(&policy, ctx) {
                    Decision::PromptAllowed { policy_id: id }
                } else {
                    Decision::PromptDenied {
                        policy_id: id,
                        vulnerability,
                    }
                }
            }
        }
    }
}

fn conditions_hold(policy: &Policy, ctx: &IccContext, bundle: &[String]) -> bool {
    policy.conditions.iter().all(|c| match c {
        Condition::ReceiverIs(class) => ctx.receiver_component.as_deref() == Some(class),
        Condition::SenderIs(class) => ctx.sender_component == *class,
        Condition::SenderNotIn(classes) => !classes.contains(&ctx.sender_component),
        Condition::ReceiverNotIn(classes) => match &ctx.receiver_component {
            // On send events the receiver is not yet resolved; the
            // condition is conservatively considered met (the delivery
            // could reach a non-intended receiver).
            None => true,
            Some(r) => !classes.contains(r),
        },
        Condition::ActionIs(a) => ctx.action.as_deref() == Some(a),
        Condition::ExtraTagged(name) => Resource::from_name(name)
            .map(|r| ctx.tags.contains(&r))
            .unwrap_or(false),
        Condition::SenderAppNotIn(packages) => {
            let reference: &[String] = if packages.is_empty() {
                bundle
            } else {
                packages
            };
            !reference.contains(&ctx.sender_app)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak_policy() -> Policy {
        Policy {
            id: 7,
            vulnerability: "information-leakage".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![
                Condition::ReceiverIs("LMessageSender;".into()),
                Condition::ExtraTagged("LOCATION".into()),
            ],
            action: PolicyAction::Prompt,
            rationale: "paper running example".into(),
        }
    }

    fn attack_ctx() -> IccContext {
        IccContext {
            sender_app: "com.mal".into(),
            sender_component: "LMal;".into(),
            receiver_app: Some("com.messenger".into()),
            receiver_component: Some("LMessageSender;".into()),
            action: None,
            tags: [Resource::Location].into_iter().collect(),
        }
    }

    #[test]
    fn matching_prompt_policy_denies_by_default() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]);
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert_eq!(
            d,
            Decision::PromptDenied {
                policy_id: 7,
                vulnerability: "information-leakage".into()
            }
        );
        assert!(!d.allows());
        assert_eq!(pdp.prompts(), 1);
    }

    #[test]
    fn user_consent_allows() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]).with_prompt(PromptHandler::AlwaysAllow);
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert_eq!(d, Decision::PromptAllowed { policy_id: 7 });
        assert!(d.allows());
    }

    #[test]
    fn non_matching_traffic_is_allowed() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]);
        let mut ctx = attack_ctx();
        ctx.tags.clear(); // benign payload
        assert_eq!(pdp.evaluate(PolicyEvent::IccReceive, &ctx), Decision::Allow);
        // Wrong event kind:
        assert_eq!(
            pdp.evaluate(PolicyEvent::IccSend, &attack_ctx()),
            Decision::Allow
        );
    }

    #[test]
    fn sender_app_not_in_defaults_to_bundle() {
        let policy = Policy {
            id: 1,
            vulnerability: "component-launch".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![
                Condition::ReceiverIs("LSvc;".into()),
                Condition::SenderAppNotIn(vec![]),
            ],
            action: PolicyAction::Deny,
            rationale: String::new(),
        };
        let mut pdp = Pdp::new(vec![policy], vec!["com.trusted".into()]);
        let mut ctx = IccContext {
            sender_app: "com.mal".into(),
            receiver_component: Some("LSvc;".into()),
            ..IccContext::default()
        };
        assert!(!pdp.evaluate(PolicyEvent::IccReceive, &ctx).allows());
        ctx.sender_app = "com.trusted".into();
        assert!(pdp.evaluate(PolicyEvent::IccReceive, &ctx).allows());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn callback_prompts_see_the_policy_and_the_event() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(String, Option<String>)>>> = Arc::default();
        let seen2 = Arc::clone(&seen);
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]).with_prompt(PromptHandler::Callback(
            Box::new(move |policy, ctx| {
                seen2
                    .lock()
                    .expect("lock")
                    .push((policy.rationale.clone(), ctx.receiver_component.clone()));
                // Allow exactly when the receiver is the known component.
                ctx.receiver_component.as_deref() == Some("LMessageSender;")
            }),
        ));
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert!(d.allows());
        let log = seen.lock().expect("lock");
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, "paper running example");
        assert_eq!(log[0].1.as_deref(), Some("LMessageSender;"));
    }

    #[test]
    fn scripted_prompts_consume_in_order() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![])
            .with_prompt(PromptHandler::Scripted(vec![true, false]));
        assert!(pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
        assert!(!pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
        // Exhausted: refuse.
        assert!(!pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
    }
}
