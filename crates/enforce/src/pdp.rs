//! The policy decision point (PDP).
//!
//! In the paper the PDP is an independent app storing the synthesized
//! policies; the PEP (an Xposed hook module) calls it on every intercepted
//! ICC method. Here the PDP evaluates ECA rules against an
//! [`IccContext`] and consults a pluggable prompt handler when a rule's
//! action is [`PolicyAction::Prompt`].
//!
//! Two implementations share this module's types:
//!
//! * [`Pdp`] — the production engine: a facade over the compiled, indexed
//!   decision structure in [`crate::compiled`] (string-pool ids, receiver
//!   buckets, lock-free shared reads, allocation-free denies);
//! * [`LinearPdp`] — the retained linear-scan reference, kept as the
//!   executable specification. The differential property suite
//!   (`tests/pdp_equivalence.rs`) proves the compiled engine decides
//!   identically, prompt-for-prompt, including across deltas.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use separ_android::types::Resource;
use separ_core::policy::{self, Condition, Policy, PolicyAction, PolicyEvent};

use crate::compiled::{CompiledPolicySet, PdpReader, SharedPdp};

/// Everything a condition can inspect about an intercepted ICC event.
#[derive(Clone, Debug, Default)]
pub struct IccContext {
    /// Sending app package.
    pub sender_app: String,
    /// Sending component class.
    pub sender_component: String,
    /// Receiving app package (known for receive events).
    pub receiver_app: Option<String>,
    /// Receiving component class (known for receive events).
    pub receiver_component: Option<String>,
    /// The intent's action.
    pub action: Option<String>,
    /// Resource tags carried by the intent's extras.
    pub tags: BTreeSet<Resource>,
}

/// The decision for one event.
///
/// Deny decisions carry the vulnerability category as an `Arc<str>`
/// cloned from the compiled set's intern table — building one allocates
/// nothing on the decision path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// No policy matched, or a matching policy allowed it.
    Allow,
    /// A policy blocked the event outright.
    Deny {
        /// The deciding policy.
        policy_id: u32,
        /// Its vulnerability category.
        vulnerability: Arc<str>,
    },
    /// A policy prompted and the user refused.
    PromptDenied {
        /// The deciding policy.
        policy_id: u32,
        /// Its vulnerability category.
        vulnerability: Arc<str>,
    },
    /// A policy prompted and the user consented.
    PromptAllowed {
        /// The deciding policy.
        policy_id: u32,
    },
}

impl Decision {
    /// Returns `true` if the event may proceed.
    pub fn allows(&self) -> bool {
        matches!(self, Decision::Allow | Decision::PromptAllowed { .. })
    }

    /// Stable wire label for this variant (`separ serve` protocol and
    /// report output): `allow`, `deny`, `prompt_denied` or
    /// `prompt_allowed`.
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Allow => "allow",
            Decision::Deny { .. } => "deny",
            Decision::PromptDenied { .. } => "prompt_denied",
            Decision::PromptAllowed { .. } => "prompt_allowed",
        }
    }

    /// The deciding policy's id, if a policy decided (not
    /// [`Decision::Allow`]).
    pub fn policy_id(&self) -> Option<u32> {
        match self {
            Decision::Allow => None,
            Decision::Deny { policy_id, .. }
            | Decision::PromptDenied { policy_id, .. }
            | Decision::PromptAllowed { policy_id } => Some(*policy_id),
        }
    }
}

/// How prompts are answered (the "user" in tests and benchmarks).
///
/// The paper's PDP "prompts the user for consent along with the
/// information that would help the user in making a decision, including
/// the description of the security threat as well as the name and
/// parameters of the intercepted event" — the [`PromptHandler::Callback`]
/// variant receives exactly that: the deciding policy (threat description
/// in its `rationale`) and the intercepted event's [`IccContext`].
pub enum PromptHandler {
    /// Always consent.
    AlwaysAllow,
    /// Always refuse.
    AlwaysDeny,
    /// Scripted decisions, consumed front-to-back in O(1) per prompt;
    /// refuses once exhausted.
    Scripted(VecDeque<bool>),
    /// Ask the embedder, passing the policy and the intercepted event.
    Callback(PromptCallback),
}

/// Embedder-supplied prompt answering function; see [`PromptHandler::Callback`].
pub type PromptCallback = Box<dyn FnMut(&Policy, &IccContext) -> bool + Send>;

impl std::fmt::Debug for PromptHandler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromptHandler::AlwaysAllow => f.write_str("AlwaysAllow"),
            PromptHandler::AlwaysDeny => f.write_str("AlwaysDeny"),
            PromptHandler::Scripted(v) => write!(f, "Scripted({v:?})"),
            PromptHandler::Callback(_) => f.write_str("Callback(..)"),
        }
    }
}

impl PromptHandler {
    /// Scripted decisions from any answer sequence.
    pub fn scripted(answers: impl IntoIterator<Item = bool>) -> PromptHandler {
        PromptHandler::Scripted(answers.into_iter().collect())
    }

    pub(crate) fn answer(&mut self, policy: &Policy, ctx: &IccContext) -> bool {
        match self {
            PromptHandler::AlwaysAllow => true,
            PromptHandler::AlwaysDeny => false,
            PromptHandler::Scripted(answers) => answers.pop_front().unwrap_or(false),
            PromptHandler::Callback(f) => f(policy, ctx),
        }
    }
}

/// The policy decision point: compiled, indexed, shareable.
///
/// `Pdp` owns a [`SharedPdp`] handle plus one reader and the prompt
/// handler, preserving the single-owner API the device runtime uses.
/// [`Pdp::shared`] hands out the underlying handle so any number of
/// concurrent readers (emulated runtimes, benchmark threads) can decide
/// against the same installed set without locks on the read path.
#[derive(Debug)]
pub struct Pdp {
    shared: SharedPdp,
    reader: PdpReader,
    prompt: PromptHandler,
}

impl Pdp {
    /// Creates a PDP over a policy set, compiling it for indexed
    /// evaluation. `bundle_packages` back empty `SenderAppNotIn` lists.
    pub fn new(policies: Vec<Policy>, bundle_packages: Vec<String>) -> Pdp {
        let shared = SharedPdp::new(CompiledPolicySet::compile(policies, bundle_packages));
        let reader = shared.reader();
        Pdp {
            shared,
            reader,
            prompt: PromptHandler::AlwaysDeny,
        }
    }

    /// An empty PDP (no policies: everything allowed).
    pub fn permissive() -> Pdp {
        Pdp::new(Vec::new(), Vec::new())
    }

    /// Sets the prompt handler.
    pub fn with_prompt(mut self, prompt: PromptHandler) -> Pdp {
        self.prompt = prompt;
        self
    }

    /// The installed policies (current snapshot, priority order).
    pub fn policies(&self) -> &[Policy] {
        self.reader.current().policies()
    }

    /// The shared swap handle: clone it to add concurrent readers or to
    /// publish deltas from another thread.
    pub fn shared(&self) -> SharedPdp {
        self.shared.clone()
    }

    /// Number of evaluations performed so far (all readers).
    pub fn evaluations(&self) -> u64 {
        self.shared.evaluations()
    }

    /// Number of prompts shown so far (all readers).
    pub fn prompts(&self) -> u64 {
        self.shared.prompts()
    }

    /// Applies a policy-set change: retired policies are matched by
    /// [content identity](Policy::content_key) (ids are irrelevant),
    /// added ones get fresh ids, and unchanged policies keep their ids —
    /// audit logs stay diffable across deltas. The recompiled set is
    /// published atomically; concurrent readers never stop deciding.
    /// This is how Marshmallow-style incremental re-synthesis reaches a
    /// running device without redeploying the whole set.
    pub fn apply_delta(&mut self, added: Vec<Policy>, removed: &[Policy]) {
        self.shared.apply_delta(added, removed);
        self.reader.refresh();
    }

    /// Evaluates an event against the policy set: the first matching
    /// policy decides.
    pub fn evaluate(&mut self, event: PolicyEvent, ctx: &IccContext) -> Decision {
        self.reader.evaluate(event, ctx, &mut self.prompt)
    }
}

/// The retained linear-scan PDP: the executable specification the
/// compiled engine is differentially tested against, and the baseline
/// leg of the `pdp_throughput` benchmark.
///
/// Semantics are identical to [`Pdp`] by construction of the test suite;
/// performance is O(policies × conditions) string comparison per
/// decision, with an allocation per deny.
#[derive(Debug)]
pub struct LinearPdp {
    policies: Vec<Policy>,
    /// Packages of the analyzed bundle (for `SenderAppNotIn` defaults).
    bundle_packages: Vec<String>,
    prompt: PromptHandler,
    evaluations: u64,
    prompts: u64,
}

impl LinearPdp {
    /// Creates a linear-scan PDP over a policy set.
    pub fn new(policies: Vec<Policy>, bundle_packages: Vec<String>) -> LinearPdp {
        LinearPdp {
            policies,
            bundle_packages,
            prompt: PromptHandler::AlwaysDeny,
            evaluations: 0,
            prompts: 0,
        }
    }

    /// Sets the prompt handler.
    pub fn with_prompt(mut self, prompt: PromptHandler) -> LinearPdp {
        self.prompt = prompt;
        self
    }

    /// The installed policies.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// Number of evaluations performed so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Number of prompts shown so far.
    pub fn prompts(&self) -> u64 {
        self.prompts
    }

    /// Applies a policy-set change with the same stable-id semantics as
    /// [`Pdp::apply_delta`] (shared [`policy::merge_delta`] logic).
    pub fn apply_delta(&mut self, added: Vec<Policy>, removed: &[Policy]) {
        policy::merge_delta(&mut self.policies, added, removed);
    }

    /// Evaluates an event against the policy set: the first matching
    /// policy decides.
    pub fn evaluate(&mut self, event: PolicyEvent, ctx: &IccContext) -> Decision {
        self.evaluations += 1;
        // Two-phase to appease the borrow checker: find the deciding
        // policy, then act on it.
        let hit = self
            .policies
            .iter()
            .position(|p| p.event == event && conditions_hold(p, ctx, &self.bundle_packages));
        let Some(i) = hit else {
            return Decision::Allow;
        };
        let p = &self.policies[i];
        let (id, action) = (p.id, p.action);
        match action {
            PolicyAction::Allow => Decision::Allow,
            PolicyAction::Deny => Decision::Deny {
                policy_id: id,
                vulnerability: p.vulnerability.as_str().into(),
            },
            PolicyAction::Prompt => {
                self.prompts += 1;
                let policy = self.policies[i].clone();
                if self.prompt.answer(&policy, ctx) {
                    Decision::PromptAllowed { policy_id: id }
                } else {
                    Decision::PromptDenied {
                        policy_id: id,
                        vulnerability: policy.vulnerability.as_str().into(),
                    }
                }
            }
        }
    }
}

fn conditions_hold(policy: &Policy, ctx: &IccContext, bundle: &[String]) -> bool {
    policy.conditions.iter().all(|c| match c {
        Condition::ReceiverIs(class) => ctx.receiver_component.as_deref() == Some(class),
        Condition::SenderIs(class) => ctx.sender_component == *class,
        Condition::SenderNotIn(classes) => !classes.contains(&ctx.sender_component),
        Condition::ReceiverNotIn(classes) => match &ctx.receiver_component {
            // On send events the receiver is not yet resolved; the
            // condition is conservatively considered met (the delivery
            // could reach a non-intended receiver).
            None => true,
            Some(r) => !classes.contains(r),
        },
        Condition::ActionIs(a) => ctx.action.as_deref() == Some(a),
        Condition::ExtraTagged(name) => Resource::from_name(name)
            .map(|r| ctx.tags.contains(&r))
            .unwrap_or(false),
        Condition::SenderAppNotIn(packages) => {
            let reference: &[String] = if packages.is_empty() {
                bundle
            } else {
                packages
            };
            !reference.contains(&ctx.sender_app)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak_policy() -> Policy {
        Policy {
            id: 7,
            vulnerability: "information-leakage".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![
                Condition::ReceiverIs("LMessageSender;".into()),
                Condition::ExtraTagged("LOCATION".into()),
            ],
            action: PolicyAction::Prompt,
            rationale: "paper running example".into(),
        }
    }

    fn attack_ctx() -> IccContext {
        IccContext {
            sender_app: "com.mal".into(),
            sender_component: "LMal;".into(),
            receiver_app: Some("com.messenger".into()),
            receiver_component: Some("LMessageSender;".into()),
            action: None,
            tags: [Resource::Location].into_iter().collect(),
        }
    }

    #[test]
    fn matching_prompt_policy_denies_by_default() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]);
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert_eq!(
            d,
            Decision::PromptDenied {
                policy_id: 7,
                vulnerability: "information-leakage".into()
            }
        );
        assert!(!d.allows());
        assert_eq!(pdp.prompts(), 1);
    }

    #[test]
    fn user_consent_allows() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]).with_prompt(PromptHandler::AlwaysAllow);
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert_eq!(d, Decision::PromptAllowed { policy_id: 7 });
        assert!(d.allows());
    }

    #[test]
    fn non_matching_traffic_is_allowed() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]);
        let mut ctx = attack_ctx();
        ctx.tags.clear(); // benign payload
        assert_eq!(pdp.evaluate(PolicyEvent::IccReceive, &ctx), Decision::Allow);
        // Wrong event kind:
        assert_eq!(
            pdp.evaluate(PolicyEvent::IccSend, &attack_ctx()),
            Decision::Allow
        );
    }

    #[test]
    fn sender_app_not_in_defaults_to_bundle() {
        let policy = Policy {
            id: 1,
            vulnerability: "component-launch".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![
                Condition::ReceiverIs("LSvc;".into()),
                Condition::SenderAppNotIn(vec![]),
            ],
            action: PolicyAction::Deny,
            rationale: String::new(),
        };
        let mut pdp = Pdp::new(vec![policy], vec!["com.trusted".into()]);
        let mut ctx = IccContext {
            sender_app: "com.mal".into(),
            receiver_component: Some("LSvc;".into()),
            ..IccContext::default()
        };
        assert!(!pdp.evaluate(PolicyEvent::IccReceive, &ctx).allows());
        ctx.sender_app = "com.trusted".into();
        assert!(pdp.evaluate(PolicyEvent::IccReceive, &ctx).allows());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn callback_prompts_see_the_policy_and_the_event() {
        use std::sync::{Arc, Mutex};
        let seen: Arc<Mutex<Vec<(String, Option<String>)>>> = Arc::default();
        let seen2 = Arc::clone(&seen);
        let mut pdp = Pdp::new(vec![leak_policy()], vec![]).with_prompt(PromptHandler::Callback(
            Box::new(move |policy, ctx| {
                seen2
                    .lock()
                    .expect("lock")
                    .push((policy.rationale.clone(), ctx.receiver_component.clone()));
                // Allow exactly when the receiver is the known component.
                ctx.receiver_component.as_deref() == Some("LMessageSender;")
            }),
        ));
        let d = pdp.evaluate(PolicyEvent::IccReceive, &attack_ctx());
        assert!(d.allows());
        let log = seen.lock().expect("lock");
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].0, "paper running example");
        assert_eq!(log[0].1.as_deref(), Some("LMessageSender;"));
    }

    #[test]
    fn scripted_prompts_consume_in_order() {
        let mut pdp = Pdp::new(vec![leak_policy()], vec![])
            .with_prompt(PromptHandler::scripted([true, false]));
        assert!(pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
        assert!(!pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
        // Exhausted: refuse.
        assert!(!pdp
            .evaluate(PolicyEvent::IccReceive, &attack_ctx())
            .allows());
    }

    #[test]
    fn delta_keeps_ids_of_unchanged_policies() {
        let keep = leak_policy();
        let retire = Policy {
            id: 3,
            vulnerability: "component-launch".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![Condition::ReceiverIs("LSvc;".into())],
            action: PolicyAction::Deny,
            rationale: String::new(),
        };
        let fresh = Policy {
            id: 0, // overwritten on install
            vulnerability: "broadcast-injection".into(),
            event: PolicyEvent::IccReceive,
            conditions: vec![Condition::ActionIs("BOOT".into())],
            action: PolicyAction::Deny,
            rationale: String::new(),
        };
        let mut pdp = Pdp::new(vec![keep.clone(), retire.clone()], vec![]);
        pdp.apply_delta(vec![fresh], &[retire]);
        let ids: Vec<u32> = pdp.policies().iter().map(|p| p.id).collect();
        // The survivor keeps id 7; the new policy gets a fresh id above
        // everything previously seen (8), not a recycled one.
        assert_eq!(ids, vec![7, 8]);
        assert_eq!(pdp.policies()[0], keep);
    }
}
