//! The device audit log.
//!
//! Every ICC event, enforcement decision and sink firing is recorded, so
//! tests and benchmarks can assert end-to-end properties such as "the
//! attack's SMS never left the device".

use std::collections::BTreeSet;
use std::sync::Arc;

use separ_android::resolution::IntentData;
use separ_android::types::Resource;

/// One audit record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AuditEvent {
    /// An intent was sent by a component.
    IccSent {
        /// Sending app package.
        from_app: String,
        /// Sending component class.
        from_component: String,
        /// The intent.
        intent: IntentData,
    },
    /// An intent was delivered to a component.
    IccDelivered {
        /// Receiving app package.
        to_app: String,
        /// Receiving component class.
        to_component: String,
        /// The intent.
        intent: IntentData,
    },
    /// An ICC event was blocked by policy.
    IccBlocked {
        /// The id of the deciding policy.
        policy_id: u32,
        /// The guarded vulnerability category (shared with the deciding
        /// policy set — recording a block allocates no string).
        vulnerability: Arc<str>,
        /// Where the event was heading.
        to_component: Option<String>,
    },
    /// The user was prompted (and answered).
    PromptShown {
        /// The id of the prompting policy.
        policy_id: u32,
        /// What the user decided.
        allowed: bool,
    },
    /// An intent found no eligible receiver and was dropped.
    IccUndeliverable {
        /// The action it carried, if any.
        action: Option<String>,
    },
    /// A sink API actually fired.
    SinkFired {
        /// The sink resource.
        sink: Resource,
        /// App that fired it.
        app: String,
        /// Tags carried by the data that reached the sink.
        tags: BTreeSet<Resource>,
        /// Human-readable payload summary.
        detail: String,
    },
}

/// The append-only audit log.
#[derive(Debug, Default)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Appends an event.
    pub fn record(&mut self, event: AuditEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Sink firings of a given resource.
    pub fn sinks_fired(&self, sink: Resource) -> impl Iterator<Item = &AuditEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| matches!(e, AuditEvent::SinkFired { sink: s, .. } if *s == sink))
    }

    /// Returns `true` if data tagged `tag` ever reached `sink`.
    pub fn leaked(&self, tag: Resource, sink: Resource) -> bool {
        self.events.iter().any(|e| {
            matches!(e, AuditEvent::SinkFired { sink: s, tags, .. }
                if *s == sink && tags.contains(&tag))
        })
    }

    /// Number of blocked ICC events.
    pub fn blocked_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, AuditEvent::IccBlocked { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_query_matches_tagged_sink() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::SinkFired {
            sink: Resource::Sms,
            app: "mal".into(),
            tags: [Resource::Location].into_iter().collect(),
            detail: "sms to +1555".into(),
        });
        assert!(log.leaked(Resource::Location, Resource::Sms));
        assert!(!log.leaked(Resource::Contacts, Resource::Sms));
        assert!(!log.leaked(Resource::Location, Resource::Log));
        assert_eq!(log.sinks_fired(Resource::Sms).count(), 1);
    }

    #[test]
    fn blocked_count_counts_blocks_only() {
        let mut log = AuditLog::new();
        log.record(AuditEvent::IccBlocked {
            policy_id: 0,
            vulnerability: "intent-hijack".into(),
            to_component: None,
        });
        log.record(AuditEvent::IccUndeliverable { action: None });
        assert_eq!(log.blocked_count(), 1);
    }
}
