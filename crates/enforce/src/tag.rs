//! Tagged payload values: lightweight dynamic classification.
//!
//! The runtime needs to know, at an interception point, what kind of
//! sensitive data an intent carries (the paper's `Intent.extra: LOCATION`
//! condition). Values produced by source APIs are wrapped with an in-band
//! tag that survives being copied through registers, fields and extras,
//! and is parsed back out when an envelope is assembled.

use separ_android::types::Resource;

const TAG_START: char = '\u{1}';
const TAG_END: char = '\u{2}';

/// Wraps a payload with a resource tag.
pub fn wrap(resource: Resource, payload: &str) -> String {
    format!("{TAG_START}{}{TAG_END}{payload}", resource.name())
}

/// Extracts the resource tag of a wrapped payload, if any.
pub fn extract(value: &str) -> Option<Resource> {
    let rest = value.strip_prefix(TAG_START)?;
    let (name, _) = rest.split_once(TAG_END)?;
    Resource::from_name(name)
}

/// The payload without its tag (the value itself if untagged).
pub fn payload(value: &str) -> &str {
    match value
        .strip_prefix(TAG_START)
        .and_then(|r| r.split_once(TAG_END))
    {
        Some((_, p)) => p,
        None => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_extract_round_trip() {
        let w = wrap(Resource::Location, "37.42,-122.08");
        assert_eq!(extract(&w), Some(Resource::Location));
        assert_eq!(payload(&w), "37.42,-122.08");
    }

    #[test]
    fn untagged_values_pass_through() {
        assert_eq!(extract("hello"), None);
        assert_eq!(payload("hello"), "hello");
    }

    #[test]
    fn unknown_tag_names_are_ignored() {
        let fake = "\u{1}NOT_A_RESOURCE\u{2}data".to_string();
        assert_eq!(extract(&fake), None);
    }
}
