//! The compiled policy decision engine.
//!
//! [`Pdp::evaluate`](crate::pdp::Pdp::evaluate) must sit on *every*
//! intercepted ICC call, so a linear scan over the installed ECA rules —
//! with a string comparison per condition and a `String` clone per deny —
//! cannot be the hot path. This module compiles an installed policy set
//! once, into an immutable, indexed [`CompiledPolicySet`]:
//!
//! * every string a condition can mention (component classes, actions,
//!   packages) is interned into a policy-local [string pool](StringPool),
//!   so evaluation compares `u32` ids instead of strings;
//! * `ExtraTagged` conditions are pre-resolved to a [`Resource`] bitmask,
//!   so an arbitrary conjunction of tag requirements is a single
//!   mask-AND at decision time;
//! * policies are bucketed by `(event, receiver-component id)` in a
//!   hash index; policies with no `ReceiverIs` condition land in a small
//!   fallback list. First-match semantics are preserved exactly: every
//!   policy keeps its priority (its position in the installed set) and
//!   candidate buckets are merged in priority order;
//! * the deny path is allocation-free — each policy's vulnerability
//!   category is interned once as an `Arc<str>` at compile time and
//!   cloned by refcount into [`Decision`]s.
//!
//! On top of the immutable set sits [`SharedPdp`], the swap handle that
//! makes the read path lock-free and shareable across concurrent
//! emulated runtimes. `apply_delta` rebuilds a new compiled set *off to
//! the side* and publishes it atomically (a slot store plus a version
//! bump); [`PdpReader`]s keep evaluating against the snapshot `Arc` they
//! already hold and pick up the new set at their next version check — a
//! single relaxed-ordering load on the sustained path. Readers always
//! hold a strong reference to the set they are reading, so reclamation
//! of retired sets is plain `Arc` refcounting: no grace periods, no
//! hazard pointers, no reader-side locks. Evaluation and prompt counts
//! live in cache-line-padded relaxed atomics, striped per reader, so
//! sixteen concurrent runtimes never contend on a counter line.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use separ_android::types::Resource;
use separ_core::policy::{self, Condition, Policy, PolicyAction, PolicyEvent};

use crate::pdp::{Decision, IccContext, PromptHandler};

// ---------------------------------------------------------------------
// Hashing & interning
// ---------------------------------------------------------------------

/// FNV-1a. The pool and index keys are short strings and `u32`s; SipHash
/// buys nothing here but latency on the decision path.
#[derive(Clone, Debug)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvBuild = BuildHasherDefault<Fnv>;
type FnvMap<K, V> = HashMap<K, V, FnvBuild>;

/// A policy-local string interner: built once at compile time, read-only
/// afterwards. Context strings that are not in the pool cannot equal any
/// policy string, which is exactly what [`StringPool::lookup`]'s `None`
/// encodes.
#[derive(Default, Debug)]
pub struct StringPool {
    map: FnvMap<Box<str>, u32>,
}

impl StringPool {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.map.len() as u32;
        self.map.insert(s.into(), id);
        id
    }

    /// The id of `s`, or `None` if no installed policy mentions it.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------
// Lowered conditions
// ---------------------------------------------------------------------

/// A pre-lowered condition: ids instead of strings, bitmask instead of a
/// tag-set probe. `ReceiverIs` has no variant — it is compiled away into
/// the receiver index key.
#[derive(Clone, Debug)]
enum CompiledCond {
    /// Sender component id equals.
    SenderIs(u32),
    /// Sender component id not among these (sorted).
    SenderNotIn(Box<[u32]>),
    /// Receiver id (when resolved) not among these (sorted).
    ReceiverNotIn(Box<[u32]>),
    /// Action id equals.
    ActionIs(u32),
    /// The intent carries at least these resource tags (mask-AND).
    Tags(u32),
    /// Sender package id not among these (sorted; the bundle default is
    /// substituted at compile time).
    SenderAppNotIn(Box<[u32]>),
}

/// An [`IccContext`] lowered against one pool: every field is the
/// interned id of the corresponding string, or `None` when the string is
/// absent or unknown to the pool (the two are indistinguishable to every
/// compiled condition, which is why collapsing them is sound).
struct LoweredCtx {
    sender_component: Option<u32>,
    sender_app: Option<u32>,
    receiver: Option<u32>,
    action: Option<u32>,
    tags: u32,
}

fn contains(sorted: &[u32], id: u32) -> bool {
    sorted.binary_search(&id).is_ok()
}

impl CompiledCond {
    #[inline]
    fn holds(&self, ctx: &LoweredCtx) -> bool {
        match self {
            CompiledCond::SenderIs(id) => ctx.sender_component == Some(*id),
            CompiledCond::SenderNotIn(ids) => match ctx.sender_component {
                None => true,
                Some(id) => !contains(ids, id),
            },
            // An unresolved receiver (send events) conservatively meets a
            // NotIn — delivery could still reach a non-intended receiver.
            CompiledCond::ReceiverNotIn(ids) => match ctx.receiver {
                None => true,
                Some(id) => !contains(ids, id),
            },
            CompiledCond::ActionIs(id) => ctx.action == Some(*id),
            CompiledCond::Tags(mask) => ctx.tags & mask == *mask,
            CompiledCond::SenderAppNotIn(ids) => match ctx.sender_app {
                None => true,
                Some(id) => !contains(ids, id),
            },
        }
    }
}

/// The resource-tag bitmask of a context's extras (19 resources < 32).
fn tag_mask(tags: &std::collections::BTreeSet<Resource>) -> u32 {
    tags.iter().fold(0u32, |m, r| m | (1u32 << (*r as u32)))
}

/// One compiled policy: the residual conditions that were not compiled
/// into the index key. The action is read from the source policy on a
/// hit (hits are rare relative to scans; matching stays compact).
#[derive(Debug)]
struct Matcher {
    conds: Box<[CompiledCond]>,
}

impl Matcher {
    #[inline]
    fn matches(&self, ctx: &LoweredCtx) -> bool {
        self.conds.iter().all(|c| c.holds(ctx))
    }
}

/// Per-event index: policies with a `ReceiverIs` condition bucketed by
/// receiver id, the rest in a fallback list. Both store policy indices
/// in ascending priority order.
#[derive(Default, Debug)]
struct EventIndex {
    by_receiver: FnvMap<u32, Vec<u32>>,
    fallback: Vec<u32>,
}

// ---------------------------------------------------------------------
// The compiled set
// ---------------------------------------------------------------------

/// An immutable, indexed compilation of one installed policy set. Build
/// it once per install or delta with [`CompiledPolicySet::compile`];
/// share it freely (`Send + Sync`, no interior mutability on the
/// decision path).
#[derive(Debug)]
pub struct CompiledPolicySet {
    policies: Vec<Policy>,
    /// Interned vulnerability categories, parallel to `policies`
    /// (refcount-cloned into deny decisions — no allocation).
    vulns: Vec<Arc<str>>,
    matchers: Vec<Matcher>,
    pool: StringPool,
    send: EventIndex,
    receive: EventIndex,
    bundle_packages: Vec<String>,
}

impl CompiledPolicySet {
    /// Compiles a policy set. `bundle_packages` are the analyzed bundle's
    /// packages, substituted for empty `SenderAppNotIn` lists exactly as
    /// the linear reference does at evaluation time.
    ///
    /// Policies that can never match (contradictory `ReceiverIs`
    /// conditions, unknown resource names in `ExtraTagged`) and policies
    /// whose [content identity](Policy::content_key) duplicates an
    /// earlier one are left out of the index entirely — first occurrence
    /// wins, as in the linear scan.
    pub fn compile(policies: Vec<Policy>, bundle_packages: Vec<String>) -> CompiledPolicySet {
        let mut pool = StringPool::default();
        let bundle_ids: Box<[u32]> = {
            let mut ids: Vec<u32> = bundle_packages.iter().map(|p| pool.intern(p)).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.into_boxed_slice()
        };
        let mut vulns: Vec<Arc<str>> = Vec::with_capacity(policies.len());
        let mut vuln_intern: FnvMap<Box<str>, Arc<str>> = FnvMap::default();
        let mut matchers: Vec<Matcher> = Vec::with_capacity(policies.len());
        let mut send = EventIndex::default();
        let mut receive = EventIndex::default();
        {
            let mut seen = std::collections::BTreeSet::new();
            for (i, p) in policies.iter().enumerate() {
                vulns.push(
                    vuln_intern
                        .entry(p.vulnerability.as_str().into())
                        .or_insert_with(|| Arc::from(p.vulnerability.as_str()))
                        .clone(),
                );
                // Content duplicates never decide (the first occurrence
                // shadows them under first-match), so they stay out of
                // the index.
                let mut dead = !seen.insert(p.content_key());
                let mut receiver_key: Option<u32> = None;
                let mut tags = 0u32;
                let mut conds: Vec<CompiledCond> = Vec::with_capacity(p.conditions.len());
                let intern_sorted = |pool: &mut StringPool, names: &[String]| -> Box<[u32]> {
                    let mut ids: Vec<u32> = names.iter().map(|n| pool.intern(n)).collect();
                    ids.sort_unstable();
                    ids.dedup();
                    ids.into_boxed_slice()
                };
                for c in &p.conditions {
                    match c {
                        Condition::ReceiverIs(class) => {
                            let id = pool.intern(class);
                            match receiver_key {
                                None => receiver_key = Some(id),
                                Some(prev) if prev == id => {}
                                // Two different required receivers: the
                                // conjunction is unsatisfiable.
                                Some(_) => dead = true,
                            }
                        }
                        Condition::SenderIs(class) => {
                            conds.push(CompiledCond::SenderIs(pool.intern(class)));
                        }
                        Condition::SenderNotIn(classes) => {
                            conds
                                .push(CompiledCond::SenderNotIn(intern_sorted(&mut pool, classes)));
                        }
                        Condition::ReceiverNotIn(classes) => {
                            conds.push(CompiledCond::ReceiverNotIn(intern_sorted(
                                &mut pool, classes,
                            )));
                        }
                        Condition::ActionIs(a) => {
                            conds.push(CompiledCond::ActionIs(pool.intern(a)));
                        }
                        Condition::ExtraTagged(name) => match Resource::from_name(name) {
                            Some(r) => tags |= 1u32 << (r as u32),
                            // Unknown resource names never match in the
                            // linear reference either.
                            None => dead = true,
                        },
                        Condition::SenderAppNotIn(packages) => {
                            let ids = if packages.is_empty() {
                                bundle_ids.clone()
                            } else {
                                intern_sorted(&mut pool, packages)
                            };
                            conds.push(CompiledCond::SenderAppNotIn(ids));
                        }
                    }
                }
                if tags != 0 {
                    conds.push(CompiledCond::Tags(tags));
                }
                matchers.push(Matcher {
                    conds: conds.into_boxed_slice(),
                });
                if dead {
                    continue;
                }
                let index = match p.event {
                    PolicyEvent::IccSend => &mut send,
                    PolicyEvent::IccReceive => &mut receive,
                };
                match receiver_key {
                    Some(id) => index.by_receiver.entry(id).or_default().push(i as u32),
                    None => index.fallback.push(i as u32),
                }
            }
        }
        CompiledPolicySet {
            policies,
            vulns,
            matchers,
            pool,
            send,
            receive,
            bundle_packages,
        }
    }

    /// The installed policies, in priority order, ids untouched.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// The bundle packages this set was compiled against.
    pub fn bundle_packages(&self) -> &[String] {
        &self.bundle_packages
    }

    /// The string pool (exposed for diagnostics).
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    fn lower(&self, ctx: &IccContext) -> LoweredCtx {
        LoweredCtx {
            sender_component: self.pool.lookup(&ctx.sender_component),
            sender_app: self.pool.lookup(&ctx.sender_app),
            receiver: ctx
                .receiver_component
                .as_deref()
                .and_then(|r| self.pool.lookup(r)),
            action: ctx.action.as_deref().and_then(|a| self.pool.lookup(a)),
            tags: tag_mask(&ctx.tags),
        }
    }

    /// The index of the first matching policy for `event`/`ctx`, or
    /// `None` when no policy matches (allow). Pure: prompting and
    /// counters are the caller's business.
    pub fn decide(&self, event: PolicyEvent, ctx: &IccContext) -> Option<usize> {
        let low = self.lower(ctx);
        let index = match event {
            PolicyEvent::IccSend => &self.send,
            PolicyEvent::IccReceive => &self.receive,
        };
        let bucket: &[u32] = match low.receiver.and_then(|r| index.by_receiver.get(&r)) {
            Some(b) => {
                separ_obs::counter_add("pdp.index.hit", 1);
                b
            }
            None => {
                separ_obs::counter_add("pdp.index.fallback_scan", 1);
                &[]
            }
        };
        let fallback: &[u32] = &index.fallback;
        // Merge the two priority-ascending candidate lists; the first
        // candidate whose residual conditions hold decides.
        let (mut bi, mut fi) = (0usize, 0usize);
        loop {
            let next = match (bucket.get(bi), fallback.get(fi)) {
                (Some(&b), Some(&f)) => {
                    if b < f {
                        bi += 1;
                        b
                    } else {
                        fi += 1;
                        f
                    }
                }
                (Some(&b), None) => {
                    bi += 1;
                    b
                }
                (None, Some(&f)) => {
                    fi += 1;
                    f
                }
                (None, None) => return None,
            } as usize;
            if self.matchers[next].matches(&low) {
                return Some(next);
            }
        }
    }

    /// The interned vulnerability category of policy `i`.
    fn vulnerability(&self, i: usize) -> Arc<str> {
        Arc::clone(&self.vulns[i])
    }
}

// ---------------------------------------------------------------------
// The shared, atomically swapped handle
// ---------------------------------------------------------------------

/// Counter stripes: one padded cache line per stripe so concurrent
/// readers never bounce a counter line between cores.
const COUNTER_STRIPES: usize = 16;

#[repr(align(64))]
#[derive(Debug)]
struct PaddedCounter(AtomicU64);

#[derive(Debug)]
struct Stripes([PaddedCounter; COUNTER_STRIPES]);

impl Stripes {
    const fn new() -> Stripes {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: PaddedCounter = PaddedCounter(AtomicU64::new(0));
        Stripes([ZERO; COUNTER_STRIPES])
    }

    #[inline]
    fn add(&self, stripe: usize, n: u64) {
        self.0[stripe].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.0.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Debug)]
struct SharedInner {
    /// Bumped (release) on every publish; readers poll it relaxed-cheap
    /// and only touch `slot` when it moved.
    version: AtomicU64,
    /// The current compiled set. Locked only to publish and to refresh a
    /// stale reader — never on the sustained decision path.
    slot: Mutex<Arc<CompiledPolicySet>>,
    evaluations: Stripes,
    prompts: Stripes,
    denied: Stripes,
    readers: AtomicUsize,
}

/// The lock-free-read swap handle over a [`CompiledPolicySet`].
///
/// Clone it to share one installed policy set between any number of
/// threads; call [`SharedPdp::reader`] per thread for a decision-making
/// endpoint. [`SharedPdp::publish`] / [`SharedPdp::apply_delta`] rebuild
/// off to the side and swap atomically while readers keep deciding.
#[derive(Clone, Debug)]
pub struct SharedPdp {
    inner: Arc<SharedInner>,
}

impl SharedPdp {
    /// Wraps a compiled set in a swap handle.
    pub fn new(set: CompiledPolicySet) -> SharedPdp {
        SharedPdp {
            inner: Arc::new(SharedInner {
                version: AtomicU64::new(1),
                slot: Mutex::new(Arc::new(set)),
                evaluations: Stripes::new(),
                prompts: Stripes::new(),
                denied: Stripes::new(),
                readers: AtomicUsize::new(0),
            }),
        }
    }

    /// A decision endpoint bound to this handle. Each concurrent runtime
    /// (thread) should hold its own reader.
    pub fn reader(&self) -> PdpReader {
        let stripe = self.inner.readers.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
        let snapshot = self.snapshot();
        PdpReader {
            inner: Arc::clone(&self.inner),
            set: snapshot,
            seen_version: self.inner.version.load(Ordering::Acquire),
            stripe,
        }
    }

    /// The current compiled set (strong reference; survives any number
    /// of later publishes).
    pub fn snapshot(&self) -> Arc<CompiledPolicySet> {
        self.inner.slot.lock().expect("pdp slot").clone()
    }

    /// Atomically replaces the installed set. Concurrent readers finish
    /// their in-flight decisions on the old set and observe the new one
    /// at their next evaluation.
    pub fn publish(&self, set: CompiledPolicySet) {
        let arc = Arc::new(set);
        *self.inner.slot.lock().expect("pdp slot") = arc;
        self.inner.version.fetch_add(1, Ordering::Release);
        separ_obs::counter_add("pdp.swap", 1);
    }

    /// Applies a policy-set change: retires `removed` by content
    /// identity, appends `added` under fresh ids (unchanged policies
    /// keep theirs — see [`policy::merge_delta`]) and publishes the
    /// recompiled set atomically.
    pub fn apply_delta(&self, added: Vec<Policy>, removed: &[Policy]) {
        let current = self.snapshot();
        let mut policies = current.policies().to_vec();
        policy::merge_delta(&mut policies, added, removed);
        self.publish(CompiledPolicySet::compile(
            policies,
            current.bundle_packages().to_vec(),
        ));
    }

    /// Total evaluations across all readers (relaxed; exact once the
    /// counted operations have completed).
    pub fn evaluations(&self) -> u64 {
        self.inner.evaluations.sum()
    }

    /// Total prompts shown across all readers.
    pub fn prompts(&self) -> u64 {
        self.inner.prompts.sum()
    }

    /// One coherent-enough reading of all decision counters, for live
    /// telemetry endpoints. Relaxed like the individual accessors — no
    /// decision path is perturbed to take it.
    pub fn totals(&self) -> PdpTotals {
        let evaluations = self.inner.evaluations.sum();
        let denied = self.inner.denied.sum();
        PdpTotals {
            evaluations,
            allowed: evaluations.saturating_sub(denied),
            denied,
            prompts: self.inner.prompts.sum(),
            swaps: self.inner.version.load(Ordering::Relaxed).saturating_sub(1),
            policies: self.snapshot().policies().len(),
        }
    }
}

/// A point-in-time reading of a [`SharedPdp`]'s decision counters (see
/// [`SharedPdp::totals`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdpTotals {
    /// Decisions evaluated across all readers since construction.
    pub evaluations: u64,
    /// Evaluations whose outcome let the event proceed (including
    /// prompt-consented ones).
    pub allowed: u64,
    /// Evaluations whose outcome blocked the event (outright denies and
    /// prompt refusals).
    pub denied: u64,
    /// Prompts shown.
    pub prompts: u64,
    /// Atomic set swaps published since construction.
    pub swaps: u64,
    /// Policies in the currently installed set.
    pub policies: usize,
}

/// A per-thread decision endpoint over a [`SharedPdp`].
///
/// The sustained evaluation path is lock-free: one relaxed version
/// check, then index lookups on the snapshot `Arc` this reader already
/// holds. Only the first evaluation after a publish touches the slot
/// mutex (to clone the new snapshot).
#[derive(Debug)]
pub struct PdpReader {
    inner: Arc<SharedInner>,
    set: Arc<CompiledPolicySet>,
    seen_version: u64,
    stripe: usize,
}

impl PdpReader {
    /// Adopts the latest published set if a swap happened.
    #[inline]
    pub fn refresh(&mut self) {
        let v = self.inner.version.load(Ordering::Acquire);
        if v != self.seen_version {
            self.set = self.inner.slot.lock().expect("pdp slot").clone();
            self.seen_version = v;
        }
    }

    /// The snapshot this reader currently decides against.
    pub fn current(&self) -> &CompiledPolicySet {
        &self.set
    }

    /// Evaluates one event: the first matching policy decides; `Prompt`
    /// actions consult `prompt` with the deciding policy and the event.
    pub fn evaluate(
        &mut self,
        event: PolicyEvent,
        ctx: &IccContext,
        prompt: &mut PromptHandler,
    ) -> Decision {
        self.refresh();
        self.inner.evaluations.add(self.stripe, 1);
        let Some(i) = self.set.decide(event, ctx) else {
            return Decision::Allow;
        };
        let p = &self.set.policies()[i];
        match p.action {
            PolicyAction::Allow => Decision::Allow,
            PolicyAction::Deny => {
                self.inner.denied.add(self.stripe, 1);
                Decision::Deny {
                    policy_id: p.id,
                    vulnerability: self.set.vulnerability(i),
                }
            }
            PolicyAction::Prompt => {
                self.inner.prompts.add(self.stripe, 1);
                if prompt.answer(p, ctx) {
                    Decision::PromptAllowed { policy_id: p.id }
                } else {
                    self.inner.denied.add(self.stripe, 1);
                    Decision::PromptDenied {
                        policy_id: p.id,
                        vulnerability: self.set.vulnerability(i),
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Probe workloads
// ---------------------------------------------------------------------

/// Synthesizes a deterministic decision workload from an installed
/// policy set: for each policy, one context engineered to satisfy it and
/// one near-miss, plus a handful of unmatched contexts. Used by
/// `separ enforce --threads` and the CI throughput smoke to exercise the
/// index with realistic hit/miss traffic.
pub fn probe_contexts(policies: &[Policy]) -> Vec<(PolicyEvent, IccContext)> {
    let mut out = Vec::with_capacity(policies.len() * 2 + 2);
    for p in policies {
        let mut hit = IccContext {
            sender_app: "com.probe.external".into(),
            sender_component: "LProbe;".into(),
            receiver_app: Some("com.probe.receiver".into()),
            receiver_component: None,
            action: None,
            tags: Default::default(),
        };
        for c in &p.conditions {
            match c {
                Condition::ReceiverIs(class) => hit.receiver_component = Some(class.clone()),
                Condition::SenderIs(class) => hit.sender_component = class.clone(),
                Condition::ActionIs(a) => hit.action = Some(a.clone()),
                Condition::ExtraTagged(name) => {
                    if let Some(r) = Resource::from_name(name) {
                        hit.tags.insert(r);
                    }
                }
                // The probe sender/app names are chosen to stay outside
                // any realistic NotIn list; good enough for traffic.
                Condition::SenderNotIn(_)
                | Condition::ReceiverNotIn(_)
                | Condition::SenderAppNotIn(_) => {}
            }
        }
        let mut miss = hit.clone();
        miss.receiver_component = Some("LNoSuchComponent;".into());
        out.push((p.event, hit));
        out.push((p.event, miss));
    }
    // Unmatched background traffic, present even for an empty set.
    for i in 0..2 {
        out.push((
            PolicyEvent::IccReceive,
            IccContext {
                sender_app: format!("com.bg{i}"),
                sender_component: "LBg;".into(),
                receiver_app: Some("com.bg.peer".into()),
                receiver_component: Some("LBgPeer;".into()),
                action: Some("com.bg.PING".into()),
                tags: Default::default(),
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(
        id: u32,
        event: PolicyEvent,
        conditions: Vec<Condition>,
        action: PolicyAction,
    ) -> Policy {
        Policy {
            id,
            vulnerability: "test-vuln".into(),
            event,
            conditions,
            action,
            rationale: String::new(),
        }
    }

    fn recv_ctx(receiver: &str) -> IccContext {
        IccContext {
            sender_app: "com.a".into(),
            sender_component: "LA;".into(),
            receiver_app: Some("com.b".into()),
            receiver_component: Some(receiver.into()),
            action: None,
            tags: Default::default(),
        }
    }

    #[test]
    fn bucketed_and_fallback_policies_merge_in_priority_order() {
        // Priority 0: fallback deny on action; priority 1: bucketed
        // allow on receiver. A context matching both must take #0.
        let set = CompiledPolicySet::compile(
            vec![
                policy(
                    0,
                    PolicyEvent::IccReceive,
                    vec![Condition::ActionIs("ACT".into())],
                    PolicyAction::Deny,
                ),
                policy(
                    1,
                    PolicyEvent::IccReceive,
                    vec![Condition::ReceiverIs("LR;".into())],
                    PolicyAction::Allow,
                ),
            ],
            vec![],
        );
        let mut ctx = recv_ctx("LR;");
        ctx.action = Some("ACT".into());
        assert_eq!(set.decide(PolicyEvent::IccReceive, &ctx), Some(0));
        ctx.action = None;
        assert_eq!(set.decide(PolicyEvent::IccReceive, &ctx), Some(1));
        ctx.receiver_component = Some("LOther;".into());
        assert_eq!(set.decide(PolicyEvent::IccReceive, &ctx), None);
    }

    #[test]
    fn contradictory_receivers_and_unknown_tags_are_dead() {
        let set = CompiledPolicySet::compile(
            vec![
                policy(
                    0,
                    PolicyEvent::IccReceive,
                    vec![
                        Condition::ReceiverIs("LR;".into()),
                        Condition::ReceiverIs("LQ;".into()),
                    ],
                    PolicyAction::Deny,
                ),
                policy(
                    1,
                    PolicyEvent::IccReceive,
                    vec![Condition::ExtraTagged("NO_SUCH_RESOURCE".into())],
                    PolicyAction::Deny,
                ),
            ],
            vec![],
        );
        assert_eq!(set.decide(PolicyEvent::IccReceive, &recv_ctx("LR;")), None);
        assert_eq!(set.decide(PolicyEvent::IccReceive, &recv_ctx("LQ;")), None);
    }

    #[test]
    fn swap_is_visible_to_readers_and_counts() {
        let shared = SharedPdp::new(CompiledPolicySet::compile(vec![], vec![]));
        let mut reader = shared.reader();
        let mut prompt = PromptHandler::AlwaysDeny;
        let ctx = recv_ctx("LR;");
        assert_eq!(
            reader.evaluate(PolicyEvent::IccReceive, &ctx, &mut prompt),
            Decision::Allow
        );
        shared.apply_delta(
            vec![policy(
                9,
                PolicyEvent::IccReceive,
                vec![Condition::ReceiverIs("LR;".into())],
                PolicyAction::Deny,
            )],
            &[],
        );
        let d = reader.evaluate(PolicyEvent::IccReceive, &ctx, &mut prompt);
        assert!(matches!(d, Decision::Deny { policy_id: 0, .. }));
        assert_eq!(shared.evaluations(), 2);
        assert_eq!(shared.prompts(), 0);
    }
}
