//! **separ-enforce** — the Android Policy Enforcer (APE).
//!
//! The paper enforces synthesized policies through Xposed: every ICC API
//! is hooked, the hook asks a policy decision point (PDP) whether the
//! operation may proceed, and refused operations are skipped — the app
//! continues in degraded mode. This crate reproduces that architecture on
//! a simulated device:
//!
//! * [`runtime`] — installed apps execute real sdex bytecode on the
//!   interpreter; the syscall layer models the ICC bus with Android's
//!   resolution rules and plants the enforcement points exactly where the
//!   paper's hooks sit (every ICC call and every delivery);
//! * [`pdp`] — ECA policy evaluation with pluggable user prompts;
//! * [`compiled`] — the indexed, lock-free-readable compiled form of an
//!   installed policy set that the production [`pdp::Pdp`] runs on;
//! * [`tag`] — in-band payload tagging so conditions like
//!   `Intent.extra: LOCATION` are checkable at interception time;
//! * [`audit`] — the device audit log tests and benchmarks assert on.
//!
//! The hook counters in [`runtime::HookStats`] drive the RQ4 overhead
//! experiment.
#![warn(missing_docs)]

pub mod audit;
pub mod compiled;
pub mod pdp;
pub mod runtime;
pub mod tag;

pub use audit::{AuditEvent, AuditLog};
pub use compiled::{probe_contexts, CompiledPolicySet, PdpReader, PdpTotals, SharedPdp};
pub use pdp::{Decision, IccContext, LinearPdp, Pdp, PromptHandler};
pub use runtime::{Device, Envelope, HookStats};
