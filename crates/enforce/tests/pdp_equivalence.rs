//! Differential property suite: the compiled, indexed PDP decides
//! exactly like the retained linear-scan reference.
//!
//! Policy sets, ICC event streams and delta sequences are generated over
//! a small closed universe of component classes, packages, actions and
//! resource tags (so index buckets collide, fallback policies interleave
//! with bucketed ones, and pool misses occur), plus deliberate
//! out-of-universe strings to exercise the "unknown id" lowering and the
//! dead-policy paths. For every generated scenario both engines must
//! produce identical decision sequences, identical prompt sequences
//! (which policy prompted, in what order, with what answer), and — across
//! deltas — identical policy lists with stable ids.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use separ_android::types::Resource;
use separ_core::policy::{Condition, Policy, PolicyAction, PolicyEvent};
use separ_enforce::pdp::{Decision, IccContext, LinearPdp, Pdp, PromptHandler};
use separ_enforce::{probe_contexts, CompiledPolicySet, SharedPdp};

// The closed universe. Small on purpose: decisions must disagree loudly
// if the index drops, reorders or double-counts a policy.
const COMPONENTS: &[&str] = &["LA;", "LB;", "LC;", "LD;", "LE;"];
const APPS: &[&str] = &["com.a", "com.b", "com.c"];
const ACTIONS: &[&str] = &["ACT.X", "ACT.Y"];
const RESOURCES: &[Resource] = &[
    Resource::Location,
    Resource::Sms,
    Resource::Contacts,
    Resource::Camera,
];
const VULNS: &[&str] = &[
    "intent-hijack",
    "information-leakage",
    "broadcast-injection",
];

fn component(i: usize) -> String {
    // Index 5 yields a component no context ever carries (dead-bucket /
    // never-matching conditions); 6 is reserved for contexts only
    // (pool-miss lowering on the context side).
    match i {
        0..=4 => COMPONENTS[i].to_string(),
        5 => "LUnknownPolicyOnly;".to_string(),
        _ => "LUnknownCtxOnly;".to_string(),
    }
}

fn condition_strategy() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (0usize..6).prop_map(|i| Condition::ReceiverIs(component(i))),
        (0usize..6).prop_map(|i| Condition::SenderIs(component(i))),
        prop::collection::vec((0usize..6).prop_map(component), 0..3)
            .prop_map(Condition::SenderNotIn),
        prop::collection::vec((0usize..6).prop_map(component), 0..3)
            .prop_map(Condition::ReceiverNotIn),
        (0usize..3).prop_map(|i| Condition::ActionIs(if i < 2 {
            ACTIONS[i].to_string()
        } else {
            "ACT.UNKNOWN".to_string()
        })),
        (0usize..5).prop_map(|i| Condition::ExtraTagged(if i < 4 {
            RESOURCES[i].name().to_string()
        } else {
            // Unknown resource name: the policy can never match.
            "BOGUS_RESOURCE".to_string()
        })),
        prop::collection::vec((0usize..3).prop_map(|i| APPS[i].to_string()), 0..3)
            .prop_map(Condition::SenderAppNotIn),
    ]
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    (
        0usize..3,
        any::<bool>(),
        prop::collection::vec(condition_strategy(), 0..4),
        0usize..3,
    )
        .prop_map(|(v, recv, conditions, a)| Policy {
            id: 0, // assigned densely at install below
            vulnerability: VULNS[v].to_string(),
            event: if recv {
                PolicyEvent::IccReceive
            } else {
                PolicyEvent::IccSend
            },
            conditions,
            action: [
                PolicyAction::Deny,
                PolicyAction::Prompt,
                PolicyAction::Allow,
            ][a],
            rationale: String::new(),
        })
}

fn numbered(mut policies: Vec<Policy>) -> Vec<Policy> {
    for (i, p) in policies.iter_mut().enumerate() {
        p.id = i as u32;
    }
    policies
}

fn ctx_strategy() -> impl Strategy<Value = (PolicyEvent, IccContext)> {
    (
        any::<bool>(),
        0usize..4,
        0usize..7,
        0usize..8,
        0usize..4,
        prop::collection::vec(0usize..4, 0..3),
    )
        .prop_map(|(recv, app, sender, receiver, action, tags)| {
            let ctx = IccContext {
                sender_app: if app < 3 {
                    APPS[app].to_string()
                } else {
                    "com.outsider".to_string()
                },
                sender_component: component(sender),
                receiver_app: if receiver < 7 {
                    Some("com.some".to_string())
                } else {
                    None
                },
                receiver_component: if receiver < 5 {
                    Some(COMPONENTS[receiver].to_string())
                } else if receiver == 5 {
                    Some("LUnknownCtxOnly;".to_string())
                } else {
                    None
                },
                action: match action {
                    0 | 1 => Some(ACTIONS[action].to_string()),
                    2 => Some("ACT.OTHER".to_string()),
                    _ => None,
                },
                tags: tags
                    .into_iter()
                    .map(|i| RESOURCES[i])
                    .collect::<BTreeSet<_>>(),
            };
            (
                if recv {
                    PolicyEvent::IccReceive
                } else {
                    PolicyEvent::IccSend
                },
                ctx,
            )
        })
}

/// A prompt handler that records (policy id, answer) pairs and answers
/// from a deterministic shared script, so both engines face the same
/// "user" and their prompt traces are directly comparable.
fn recording_prompt(script: Vec<bool>, log: Arc<Mutex<Vec<(u32, bool)>>>) -> PromptHandler {
    let mut cursor = 0usize;
    PromptHandler::Callback(Box::new(move |policy, _ctx| {
        let answer = script.get(cursor).copied().unwrap_or(false);
        cursor += 1;
        log.lock().expect("prompt log").push((policy.id, answer));
        answer
    }))
}

fn bundle() -> Vec<String> {
    vec!["com.a".to_string(), "com.b".to_string()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_decisions_and_prompts_match_linear(
        policies in prop::collection::vec(policy_strategy(), 0..24),
        stream in prop::collection::vec(ctx_strategy(), 0..48),
        script in prop::collection::vec(any::<bool>(), 48),
    ) {
        let policies = numbered(policies);
        let compiled_log = Arc::new(Mutex::new(Vec::new()));
        let linear_log = Arc::new(Mutex::new(Vec::new()));
        let mut compiled = Pdp::new(policies.clone(), bundle())
            .with_prompt(recording_prompt(script.clone(), Arc::clone(&compiled_log)));
        let mut linear = LinearPdp::new(policies, bundle())
            .with_prompt(recording_prompt(script, Arc::clone(&linear_log)));
        for (event, ctx) in &stream {
            let want = linear.evaluate(*event, ctx);
            let got = compiled.evaluate(*event, ctx);
            prop_assert_eq!(got, want, "event {:?} ctx {:?}", event, ctx);
        }
        prop_assert_eq!(compiled.evaluations(), linear.evaluations());
        prop_assert_eq!(compiled.prompts(), linear.prompts());
        prop_assert_eq!(
            &*compiled_log.lock().expect("log"),
            &*linear_log.lock().expect("log"),
            "prompt traces diverge"
        );
    }

    #[test]
    fn deltas_preserve_equivalence_and_stable_ids(
        initial in prop::collection::vec(policy_strategy(), 0..12),
        rounds in prop::collection::vec(
            (
                prop::collection::vec(policy_strategy(), 0..4),
                prop::collection::vec(any::<prop::sample::Index>(), 0..3),
                prop::collection::vec(ctx_strategy(), 0..12),
            ),
            1..5,
        ),
    ) {
        let initial = numbered(initial);
        let mut compiled = Pdp::new(initial.clone(), bundle());
        let mut linear = LinearPdp::new(initial, bundle());
        for (added, removal_draws, stream) in rounds {
            // Retire policies drawn from the *current* set by content, the
            // way re-synthesis deltas arrive.
            let current = linear.policies().to_vec();
            let removed: Vec<Policy> = removal_draws
                .iter()
                .filter(|_| !current.is_empty())
                .map(|d| current[d.index(current.len())].clone())
                .collect();
            let ids_before: Vec<(u32, Policy)> =
                current.iter().map(|p| (p.id, p.clone())).collect();
            compiled.apply_delta(added.clone(), &removed);
            linear.apply_delta(added, &removed);
            prop_assert_eq!(compiled.policies(), linear.policies());
            // Survivors keep their ids. A policy retired this round is
            // not a survivor even if a content-twin was re-added (it gets
            // a fresh id by design), and content-duplicated entries are
            // skipped (content identity can't distinguish them).
            for (id, p) in &ids_before {
                let key = p.content_key();
                if removed.iter().any(|r| r.content_key() == key) {
                    continue;
                }
                if ids_before
                    .iter()
                    .filter(|(_, q)| q.content_key() == key)
                    .count()
                    > 1
                {
                    continue;
                }
                if let Some(q) = linear.policies().iter().find(|q| q.content_key() == key) {
                    prop_assert_eq!(q.id, *id);
                }
            }
            for (event, ctx) in &stream {
                let want = linear.evaluate(*event, ctx);
                let got = compiled.evaluate(*event, ctx);
                prop_assert_eq!(got, want, "post-delta event {:?} ctx {:?}", event, ctx);
            }
        }
    }

    #[test]
    fn probe_contexts_decide_identically(
        policies in prop::collection::vec(policy_strategy(), 1..16),
    ) {
        // The benchmark's engineered workload generator must itself be
        // decision-equivalent between the two engines, otherwise the
        // throughput comparison measures different work.
        let policies = numbered(policies);
        let mut compiled = Pdp::new(policies.clone(), bundle())
            .with_prompt(PromptHandler::AlwaysDeny);
        let mut linear = LinearPdp::new(policies.clone(), bundle())
            .with_prompt(PromptHandler::AlwaysDeny);
        for (event, ctx) in probe_contexts(&policies) {
            prop_assert_eq!(
                compiled.evaluate(event, &ctx),
                linear.evaluate(event, &ctx)
            );
        }
    }
}

/// Readers racing a swap must observe, for every evaluation, either the
/// before-set's decision or the after-set's decision — never a torn mix —
/// and must settle on the after-set once the publish completes.
#[test]
fn concurrent_readers_during_swap_see_before_or_after() {
    let before = numbered(vec![Policy {
        id: 0,
        vulnerability: "intent-hijack".into(),
        event: PolicyEvent::IccReceive,
        conditions: vec![Condition::ReceiverIs("LA;".into())],
        action: PolicyAction::Deny,
        rationale: String::new(),
    }]);
    let after_policy = Policy {
        id: 0,
        vulnerability: "broadcast-injection".into(),
        event: PolicyEvent::IccReceive,
        conditions: vec![Condition::ReceiverIs("LA;".into())],
        action: PolicyAction::Deny,
        rationale: String::new(),
    };
    let shared = SharedPdp::new(CompiledPolicySet::compile(before.clone(), vec![]));
    let ctx = IccContext {
        receiver_component: Some("LA;".into()),
        ..IccContext::default()
    };
    let deny_before = Decision::Deny {
        policy_id: 0,
        vulnerability: "intent-hijack".into(),
    };
    let deny_after = Decision::Deny {
        policy_id: 1, // fresh id above the retired one
        vulnerability: "broadcast-injection".into(),
    };
    let torn = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut reader = shared.reader();
                let mut prompt = PromptHandler::AlwaysDeny;
                // Evaluate until the publish becomes visible (bounded so a
                // broken swap fails the test instead of hanging it). Every
                // observation along the way must be one of the two valid
                // decisions — never a torn mix of old id and new
                // vulnerability or vice versa.
                let mut settled = false;
                for _ in 0..50_000_000u64 {
                    let d = reader.evaluate(PolicyEvent::IccReceive, &ctx, &mut prompt);
                    if d == deny_after {
                        settled = true;
                        break;
                    }
                    if d != deny_before {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                }
                assert!(settled, "reader never observed the published set");
            });
        }
        shared.apply_delta(vec![after_policy], &before);
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0, "torn decisions observed");
    assert!(shared.evaluations() >= 4);
}
