//! The four shipped vulnerability-signature plugins.
//!
//! Each signature follows the same shape (the paper's Listing 5 pattern):
//! free *witness* relations pick the victim entities, facts state the
//! semantics of the exploit, and the Aluminum-style minimal-model
//! enumerator returns one scenario per minimal instance, which is decoded
//! against the extracted app models.

use std::collections::BTreeSet;

use separ_android::resolution::IntentData;
use separ_android::types::Resource;
use separ_logic::{Expr, LogicError, Problem, RelationDecl, RelationId, TupleSet};

use separ_analysis::slicing::SliceDemand;

use crate::exploit::{Exploit, VulnKind};
use crate::footprint::{Footprint, MalReceivers, SignatureFootprint};
use crate::signature::{Synthesis, SynthesisContext, VulnerabilitySignature};

/// Default cap on enumerated minimal scenarios per signature run.
pub const DEFAULT_SCENARIO_LIMIT: usize = 64;

/// Adds a free unary witness relation over the given atoms.
fn witness(
    problem: &mut Problem,
    name: &str,
    atoms: impl IntoIterator<Item = separ_logic::Atom>,
) -> Option<RelationId> {
    let mut ts = TupleSet::new(1);
    for a in atoms {
        ts.insert(separ_logic::Tuple::unary(a));
    }
    if ts.is_empty() {
        return None;
    }
    Some(problem.relation(RelationDecl::free(name, ts)))
}

/// Runs the enumeration loop shared by all signatures. The problem is a
/// clone of the context's bundle problem extended with this signature's
/// witnesses and facts; translation starts from the shared base.
fn enumerate<F>(
    problem: &Problem,
    ctx: &SynthesisContext<'_>,
    mut decode: F,
) -> Result<Synthesis, LogicError>
where
    F: FnMut(&separ_logic::Instance) -> Option<Exploit>,
{
    let mut finder = problem.model_finder_from(ctx.base.base(), ctx.options)?;
    let mut exploits: Vec<Exploit> = Vec::new();
    while exploits.len() < ctx.limit {
        let Some(instance) = finder.next_minimal_model() else {
            break;
        };
        if let Some(e) = decode(&instance) {
            if !exploits.contains(&e) {
                exploits.push(e);
            }
        }
    }
    Ok(Synthesis {
        exploits,
        construction: finder.construction_time(),
        solving: finder.solve_time(),
        primary_vars: finder.num_primary_vars(),
        cnf_clauses: finder.cnf_clauses(),
        shared_base: finder.used_shared_base(),
        solver: finder.solver_stats(),
    })
}

/// Reads the single atom of a witness relation from an instance.
fn witness_atom(instance: &separ_logic::Instance, rel: RelationId) -> Option<separ_logic::Atom> {
    instance.tuples(rel).iter().next().map(|t| t.atoms()[0])
}

// ---------------------------------------------------------------------
// Intent hijack
// ---------------------------------------------------------------------

/// Unauthorized intent receipt: a malicious filter steals a sensitive
/// implicit intent (Chin et al.'s "unauthorized Intent receipt").
#[derive(Debug, Default, Clone, Copy)]
pub struct IntentHijackSignature;

impl SignatureFootprint for IntentHijackSignature {
    fn footprint(&self) -> Footprint {
        // The witness ranges over real hijackable tainted intents; the
        // only malicious rows the facts constrain are the filter's
        // actions (`wi.action in MalFilter.malFilterActions`, `some`).
        Footprint {
            demands: BTreeSet::from([SliceDemand::HijackableTaintedSender]),
            mal_receivers: MalReceivers::None,
            mal_extras: false,
            mal_action: false,
            mal_filter: true,
        }
    }
}

impl VulnerabilitySignature for IntentHijackSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::IntentHijack
    }

    fn sensitivity(&self) -> crate::signature::Sensitivity {
        crate::signature::Sensitivity {
            permissions: false,
            topology: true,
        }
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms, rels) = (ctx.apps, ctx.base.atoms(), ctx.base.rels());
        let mut problem = ctx.base.problem();
        let Some(wi) = witness(
            &mut problem,
            "W_intent",
            atoms.intents.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let wi_e = Expr::relation(wi);
        let extras = Expr::relation(rels.extras);
        let sources = Expr::relation(rels.source_res);
        let mal_actions =
            Expr::atom(atoms.mal_filter).join(&Expr::relation(rels.mal_filter_actions));
        problem.fact(wi_e.one());
        problem.fact(wi_e.in_(&Expr::relation(rels.hijackable)));
        // The stolen payload is sensitive.
        problem.fact(wi_e.join(&extras).intersect(&sources).some());
        // The malicious filter matches the intent's action (an actionless
        // implicit intent is matched by any filter, hence subset).
        problem.fact(
            wi_e.join(&Expr::relation(rels.intent_action))
                .in_(&mal_actions),
        );
        problem.fact(mal_actions.some());
        enumerate(&problem, ctx, |instance| {
            let atom = witness_atom(instance, wi)?;
            let (ai, ci, ii) = atoms.intent_of(atom)?;
            let comp = &apps[ai].components[ci];
            let intent = &comp.sent_intents[ii];
            let leaked: BTreeSet<Resource> = intent
                .extra_taints
                .iter()
                .copied()
                .filter(|r| r.is_source() && *r != Resource::Icc)
                .collect();
            Some(Exploit::IntentHijack {
                victim_app: apps[ai].package.clone(),
                victim_component: comp.class.clone(),
                hijacked_action: intent.action.clone(),
                leaked,
            })
        })
    }
}

// ---------------------------------------------------------------------
// Activity/Service launch
// ---------------------------------------------------------------------

/// Activity/Service launch (the paper's Listing 5): a forged intent
/// launches an exported component whose entry surface flows into a
/// capability.
#[derive(Debug, Default, Clone, Copy)]
pub struct ComponentLaunchSignature;

impl SignatureFootprint for ComponentLaunchSignature {
    fn footprint(&self) -> Footprint {
        // The victim is an exported Activity/Service with an ICC entry
        // path that the malicious intent reaches (`canReceive` rows to
        // matching components) carrying a payload (`some MalIntent.extras`).
        Footprint {
            demands: BTreeSet::from([SliceDemand::LaunchableIccEntry]),
            mal_receivers: MalReceivers::Matching,
            mal_extras: true,
            mal_action: false,
            mal_filter: false,
        }
    }
}

impl VulnerabilitySignature for ComponentLaunchSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::ComponentLaunch
    }

    fn sensitivity(&self) -> crate::signature::Sensitivity {
        crate::signature::Sensitivity {
            permissions: false,
            topology: true,
        }
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms, rels) = (ctx.apps, ctx.base.atoms(), ctx.base.rels());
        let mut problem = ctx.base.problem();
        let Some(w) = witness(
            &mut problem,
            "W_launched",
            atoms.components.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let w_e = Expr::relation(w);
        let mal_intent = Expr::atom(atoms.mal_intent);
        let can_receive = Expr::relation(rels.can_receive);
        let icc = Expr::relation(rels.icc_res);
        problem.fact(w_e.one());
        problem.fact(w_e.in_(&Expr::relation(rels.exported)));
        // Activity or Service launch, per the paper.
        problem
            .fact(w_e.in_(&Expr::relation(rels.activities).union(&Expr::relation(rels.services))));
        // The malicious intent reaches the launched component...
        problem.fact(w_e.in_(&mal_intent.join(&can_receive)));
        // ...which has a path rooted at its exported (ICC) interface.
        problem.fact(
            w_e.join(&Expr::relation(rels.path_source_of))
                .intersect(&icc)
                .some(),
        );
        // The forged intent carries a payload (Listing 5 line 10).
        problem.fact(mal_intent.join(&Expr::relation(rels.extras)).some());
        // The minimal-model enumerator distinguishes instances by the
        // payload resource the forged intent carries; for reporting, one
        // scenario per launched component suffices.
        let mut seen_targets: BTreeSet<(usize, usize)> = BTreeSet::new();
        enumerate(&problem, ctx, |instance| {
            let atom = witness_atom(instance, w)?;
            let (ai, ci) = atoms.component_of(atom)?;
            if !seen_targets.insert((ai, ci)) {
                return None;
            }
            let comp = &apps[ai].components[ci];
            let payload: BTreeSet<Resource> = instance
                .tuples(rels.extras)
                .iter()
                .filter(|t| t.atoms()[0] == atoms.mal_intent)
                .filter_map(|t| atoms.resource_of(t.atoms()[1]))
                .collect();
            Some(Exploit::ComponentLaunch {
                target_app: apps[ai].package.clone(),
                target_component: comp.class.clone(),
                fake_intent: IntentData::explicit(comp.class.clone()),
                payload,
            })
        })
    }
}

// ---------------------------------------------------------------------
// Privilege escalation
// ---------------------------------------------------------------------

/// Permission re-delegation: an exported component exercises a permission
/// for callers that do not hold it, without a manifest or dynamic check
/// (Bugiel et al., Felt et al.).
#[derive(Debug, Default, Clone, Copy)]
pub struct PrivilegeEscalationSignature;

impl SignatureFootprint for PrivilegeEscalationSignature {
    fn footprint(&self) -> Footprint {
        // The victim exports an unguarded granted dangerous capability;
        // the only malicious rows constrained are `canReceive` rows
        // delivering the malicious intent to such components.
        Footprint {
            demands: BTreeSet::from([SliceDemand::EscalationSurface]),
            mal_receivers: MalReceivers::Matching,
            mal_extras: false,
            mal_action: false,
            mal_filter: false,
        }
    }
}

impl VulnerabilitySignature for PrivilegeEscalationSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::PrivilegeEscalation
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms, rels) = (ctx.apps, ctx.base.atoms(), ctx.base.rels());
        let mut problem = ctx.base.problem();
        let Some(w) = witness(
            &mut problem,
            "W_victim",
            atoms.components.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        // Only dangerous-level permissions can be escalated; re-delegating
        // a normal-level permission (e.g. INTERNET) is not a violation.
        let Some(wp) = witness(
            &mut problem,
            "W_perm",
            atoms
                .permissions
                .iter()
                .filter(|(name, _)| separ_android::types::perm::is_dangerous(name))
                .map(|(_, &a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let w_e = Expr::relation(w);
        let wp_e = Expr::relation(wp);
        let mal_intent = Expr::atom(atoms.mal_intent);
        problem.fact(w_e.one());
        problem.fact(wp_e.one());
        problem.fact(w_e.in_(&Expr::relation(rels.exported)));
        // The component exercises the permission...
        problem.fact(wp_e.in_(&w_e.join(&Expr::relation(rels.uses_perm))));
        // ...without enforcing it against callers...
        problem.fact(
            wp_e.intersect(&w_e.join(&Expr::relation(rels.enforces)))
                .no(),
        );
        // ...while its app actually holds the permission (a revoked
        // permission — the Marshmallow scenario — cannot be re-delegated)...
        problem.fact(
            wp_e.in_(
                &w_e.join(&Expr::relation(rels.cmp_app))
                    .join(&Expr::relation(rels.app_perms)),
            ),
        );
        // ...and the adversary can reach it.
        problem.fact(w_e.in_(&mal_intent.join(&Expr::relation(rels.can_receive))));
        enumerate(&problem, ctx, |instance| {
            let watom = witness_atom(instance, w)?;
            let patom = witness_atom(instance, wp)?;
            let (ai, ci) = atoms.component_of(watom)?;
            let comp = &apps[ai].components[ci];
            let permission = atoms.permission_of(patom)?.to_string();
            Some(Exploit::PrivilegeEscalation {
                target_app: apps[ai].package.clone(),
                target_component: comp.class.clone(),
                permission,
                fake_intent: IntentData::explicit(comp.class.clone()),
            })
        })
    }
}

// ---------------------------------------------------------------------
// Information leakage
// ---------------------------------------------------------------------

/// Inter-component sensitive data leakage among the *installed* apps: an
/// intent carrying a sensitive payload is received by a component whose
/// ICC-rooted path reaches a real sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct InformationLeakageSignature;

impl SignatureFootprint for InformationLeakageSignature {
    fn footprint(&self) -> Footprint {
        // Both witnesses bind real entities (a tainted real intent and a
        // real receiver with an ICC-to-sink path); no malicious free row
        // is ever mentioned, so the whole malicious surface drops.
        Footprint {
            demands: BTreeSet::from([SliceDemand::LeakChannel]),
            mal_receivers: MalReceivers::None,
            mal_extras: false,
            mal_action: false,
            mal_filter: false,
        }
    }
}

impl VulnerabilitySignature for InformationLeakageSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::InformationLeakage
    }

    fn sensitivity(&self) -> crate::signature::Sensitivity {
        crate::signature::Sensitivity {
            permissions: false,
            topology: true,
        }
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms, rels) = (ctx.apps, ctx.base.atoms(), ctx.base.rels());
        let mut problem = ctx.base.problem();
        let Some(wi) = witness(
            &mut problem,
            "W_intent",
            atoms.intents.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let Some(wc) = witness(
            &mut problem,
            "W_receiver",
            atoms.components.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let wi_e = Expr::relation(wi);
        let wc_e = Expr::relation(wc);
        let icc = Expr::relation(rels.icc_res);
        problem.fact(wi_e.one());
        problem.fact(wc_e.one());
        // The receiver actually receives the intent (precomputed Android
        // resolution, both implicit and explicit, including passive reply
        // intents resolved by Algorithm 1).
        problem.fact(wc_e.in_(&wi_e.join(&Expr::relation(rels.can_receive))));
        // The payload is sensitive.
        problem.fact(
            wi_e.join(&Expr::relation(rels.extras))
                .intersect(&Expr::relation(rels.source_res))
                .some(),
        );
        // The receiver completes the leak: ICC-source path to a real sink.
        let recv_paths = wc_e.join(&Expr::relation(rels.path_of)); // Source -> Sink
        problem.fact(
            icc.join(&recv_paths)
                .intersect(&Expr::relation(rels.sink_res))
                .some(),
        );
        enumerate(&problem, ctx, |instance| {
            let iatom = witness_atom(instance, wi)?;
            let catom = witness_atom(instance, wc)?;
            let (ai, ci, ii) = atoms.intent_of(iatom)?;
            let (bi, bci) = atoms.component_of(catom)?;
            let src_comp = &apps[ai].components[ci];
            let intent = &src_comp.sent_intents[ii];
            let sink_comp = &apps[bi].components[bci];
            let resources: BTreeSet<Resource> = intent
                .extra_taints
                .iter()
                .copied()
                .filter(|r| r.is_source() && *r != Resource::Icc)
                .collect();
            let sinks: BTreeSet<Resource> = sink_comp
                .paths
                .iter()
                .filter(|p| p.source == Resource::Icc && p.sink != Resource::Icc)
                .map(|p| p.sink)
                .collect();
            Some(Exploit::InformationLeakage {
                source_app: apps[ai].package.clone(),
                source_component: src_comp.class.clone(),
                sink_app: apps[bi].package.clone(),
                sink_component: sink_comp.class.clone(),
                resources,
                sinks,
                via_action: intent.action.clone(),
            })
        })
    }
}

// ---------------------------------------------------------------------
// Broadcast injection (extension plugin)
// ---------------------------------------------------------------------

/// Broadcast injection: a receiver whose filter accepts a *protected
/// system broadcast* and whose entry surface flows into a capability can
/// be driven by a forged broadcast. Not part of the paper's standard set;
/// shipped as the demonstration of the plugin architecture's extension
/// point ("users can provide additional signatures at any time").
#[derive(Debug, Default, Clone, Copy)]
pub struct BroadcastInjectionSignature;

impl SignatureFootprint for BroadcastInjectionSignature {
    fn footprint(&self) -> Footprint {
        // The victim receiver filters a protected action with an ICC
        // entry path; the facts pin the malicious intent's action to the
        // stolen one (`MalIntent.action = wa`), so those rows stay.
        Footprint {
            demands: BTreeSet::from([SliceDemand::InjectableProtectedReceiver]),
            mal_receivers: MalReceivers::None,
            mal_extras: false,
            mal_action: true,
            mal_filter: false,
        }
    }
}

impl VulnerabilitySignature for BroadcastInjectionSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::BroadcastInjection
    }

    fn sensitivity(&self) -> crate::signature::Sensitivity {
        crate::signature::Sensitivity {
            permissions: false,
            topology: true,
        }
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms, rels) = (ctx.apps, ctx.base.atoms(), ctx.base.rels());
        let mut problem = ctx.base.problem();
        let Some(w) = witness(
            &mut problem,
            "W_victim",
            atoms.components.iter().map(|&(_, a)| a),
        ) else {
            return Ok(Synthesis::default());
        };
        let Some(wa) = witness(&mut problem, "W_action", atoms.actions.values().copied()) else {
            return Ok(Synthesis::default());
        };
        let w_e = Expr::relation(w);
        let wa_e = Expr::relation(wa);
        let mal_intent = Expr::atom(atoms.mal_intent);
        problem.fact(w_e.one());
        problem.fact(wa_e.one());
        // The victim is a broadcast receiver...
        problem.fact(w_e.in_(&Expr::relation(rels.receivers)));
        // ...whose filter accepts the spoofed action...
        problem.fact(wa_e.in_(&w_e.join(&Expr::relation(rels.comp_filter_actions))));
        // ...which is a protected system action apps may not send...
        problem.fact(wa_e.in_(&Expr::relation(rels.protected_actions)));
        // ...and the receiver acts on the payload (ICC-source path).
        problem.fact(
            w_e.join(&Expr::relation(rels.path_source_of))
                .intersect(&Expr::relation(rels.icc_res))
                .some(),
        );
        // The malicious intent forges exactly that action.
        problem.fact(
            mal_intent
                .join(&Expr::relation(rels.intent_action))
                .equal(&wa_e),
        );
        enumerate(&problem, ctx, |instance| {
            let watom = witness_atom(instance, w)?;
            let aatom = witness_atom(instance, wa)?;
            let (ai, ci) = atoms.component_of(watom)?;
            let comp = &apps[ai].components[ci];
            let spoofed_action = atoms.action_of(aatom)?.to_string();
            let sinks: BTreeSet<Resource> = comp
                .paths
                .iter()
                .filter(|p| p.source == Resource::Icc && p.sink != Resource::Icc)
                .map(|p| p.sink)
                .collect();
            Some(Exploit::BroadcastInjection {
                target_app: apps[ai].package.clone(),
                target_component: comp.class.clone(),
                spoofed_action,
                sinks,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use separ_analysis::model::AppModel;
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    /// The motivating-example bundle: LocationFinder (leaky implicit
    /// intent) + MessageSender (exported ICC->SMS path, SEND_SMS unused
    /// check).
    fn motivating_bundle() -> Vec<AppModel> {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        let app1 = app("com.nav", vec![lf, rf]);

        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut app2 = app("com.messenger", vec![ms]);
        app2.uses_permissions.insert(perm::SEND_SMS.into());
        vec![app1, app2]
    }

    #[test]
    fn hijack_synthesized_for_motivating_example() {
        let apps = motivating_bundle();
        let syn = IntentHijackSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert!(!syn.exploits.is_empty(), "hijack must be found");
        match &syn.exploits[0] {
            Exploit::IntentHijack {
                victim_component,
                hijacked_action,
                leaked,
                ..
            } => {
                assert_eq!(victim_component, "LLocationFinder;");
                assert_eq!(hijacked_action.as_deref(), Some("showLoc"));
                assert!(leaked.contains(&Resource::Location));
            }
            other => panic!("unexpected exploit {other:?}"),
        }
        assert!(syn.primary_vars > 0);
    }

    #[test]
    fn launch_synthesized_for_message_sender() {
        let apps = motivating_bundle();
        let syn = ComponentLaunchSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        let targets: Vec<&str> = syn.exploits.iter().map(|e| e.guarded_component()).collect();
        assert!(
            targets.contains(&"LMessageSender;"),
            "MessageSender is launchable: {targets:?}"
        );
    }

    #[test]
    fn escalation_synthesized_for_unchecked_sms_permission() {
        let apps = motivating_bundle();
        let syn = PrivilegeEscalationSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert!(syn.exploits.iter().any(|e| matches!(
            e,
            Exploit::PrivilegeEscalation { permission, target_component, .. }
                if permission == perm::SEND_SMS && target_component == "LMessageSender;"
        )));
    }

    #[test]
    fn escalation_suppressed_by_dynamic_check() {
        let mut apps = motivating_bundle();
        apps[1].components[0]
            .dynamic_checks
            .insert(perm::SEND_SMS.into());
        let syn = PrivilegeEscalationSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert!(
            syn.exploits.is_empty(),
            "guarded component must not be flagged: {:?}",
            syn.exploits
        );
    }

    #[test]
    fn leakage_requires_a_receiving_path() {
        // In the motivating bundle the implicit intent resolves to
        // RouteFinder (no sink path), so no *existing* leak among the
        // installed apps.
        let apps = motivating_bundle();
        let syn = InformationLeakageSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert!(syn.exploits.is_empty(), "{:?}", syn.exploits);
    }

    #[test]
    fn leakage_found_when_filter_connects_source_to_sink() {
        // Give MessageSender a matching filter: now the location intent is
        // delivered straight into the ICC->SMS path.
        let mut apps = motivating_bundle();
        apps[1].components[0]
            .filters
            .push(IntentFilterDecl::for_actions(["showLoc"]));
        let syn = InformationLeakageSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert_eq!(syn.exploits.len(), 1, "{:?}", syn.exploits);
        match &syn.exploits[0] {
            Exploit::InformationLeakage {
                source_component,
                sink_component,
                resources,
                sinks,
                ..
            } => {
                assert_eq!(source_component, "LLocationFinder;");
                assert_eq!(sink_component, "LMessageSender;");
                assert!(resources.contains(&Resource::Location));
                assert!(sinks.contains(&Resource::Sms));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_injection_flags_protected_action_receivers() {
        use separ_android::types::action;
        let mut recv = comp("LBootMinion;", ComponentKind::Receiver);
        recv.filters
            .push(IntentFilterDecl::for_actions([action::BOOT_COMPLETED]));
        recv.exported = true;
        recv.paths
            .insert(FlowPath::new(Resource::Icc, Resource::Sms));
        let apps = vec![app("com.minion", vec![recv])];
        let syn = BroadcastInjectionSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert_eq!(syn.exploits.len(), 1, "{:?}", syn.exploits);
        match &syn.exploits[0] {
            Exploit::BroadcastInjection {
                target_component,
                spoofed_action,
                sinks,
                ..
            } => {
                assert_eq!(target_component, "LBootMinion;");
                assert_eq!(spoofed_action, action::BOOT_COMPLETED);
                assert!(sinks.contains(&Resource::Sms));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_injection_ignores_ordinary_actions() {
        let mut recv = comp("LChatty;", ComponentKind::Receiver);
        recv.filters
            .push(IntentFilterDecl::for_actions(["com.app.CUSTOM"]));
        recv.exported = true;
        recv.paths
            .insert(FlowPath::new(Resource::Icc, Resource::Log));
        let apps = vec![app("com.chatty", vec![recv])];
        let syn = BroadcastInjectionSignature
            .synthesize(&apps, 8)
            .expect("well-typed");
        assert!(syn.exploits.is_empty(), "{:?}", syn.exploits);
    }

    #[test]
    fn extended_registry_includes_the_plugin() {
        use crate::signature::SignatureRegistry;
        let r = SignatureRegistry::extended();
        assert_eq!(r.len(), 5);
        assert!(r.iter().any(|s| s.kind() == VulnKind::BroadcastInjection));
    }

    #[test]
    fn empty_ish_bundle_yields_no_exploits() {
        let apps = vec![app(
            "com.empty",
            vec![comp("LMain;", ComponentKind::Activity)],
        )];
        for sig in [
            &IntentHijackSignature as &dyn VulnerabilitySignature,
            &ComponentLaunchSignature,
            &PrivilegeEscalationSignature,
            &InformationLeakageSignature,
        ] {
            let syn = sig.synthesize(&apps, 4).expect("well-typed");
            assert!(
                syn.exploits.is_empty(),
                "{} found {:?}",
                sig.name(),
                syn.exploits
            );
        }
    }
}
