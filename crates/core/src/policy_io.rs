//! Serialization of policy sets to and from JSON text.
//!
//! The paper's PDP is an on-device app that stores the synthesized
//! policies; shipping them means serializing. The workspace dependency
//! policy allows no JSON crates, so this module carries a small,
//! well-tested JSON writer and recursive-descent parser specialized for
//! the policy schema (objects, arrays, strings with escapes, integers).

use std::fmt::Write as _;

use crate::exploit::VulnKind;
use crate::policy::{Condition, Policy, PolicyAction, PolicyEvent};

/// Errors raised while parsing a policy document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "policy parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    // Shared workspace escaper (separ-obs); writes `s` quoted.
    separ_obs::json::write_str(s, out);
}

fn condition_to_json(out: &mut String, c: &Condition) {
    let (kind, value): (&str, String) = match c {
        Condition::ReceiverIs(v) => ("receiver_is", v.clone()),
        Condition::SenderIs(v) => ("sender_is", v.clone()),
        Condition::ActionIs(v) => ("action_is", v.clone()),
        Condition::ExtraTagged(v) => ("extra_tagged", v.clone()),
        Condition::SenderNotIn(list) => {
            out.push_str("{\"kind\":\"sender_not_in\",\"values\":");
            string_list(out, list);
            out.push('}');
            return;
        }
        Condition::ReceiverNotIn(list) => {
            out.push_str("{\"kind\":\"receiver_not_in\",\"values\":");
            string_list(out, list);
            out.push('}');
            return;
        }
        Condition::SenderAppNotIn(list) => {
            out.push_str("{\"kind\":\"sender_app_not_in\",\"values\":");
            string_list(out, list);
            out.push('}');
            return;
        }
    };
    out.push_str("{\"kind\":");
    escape_into(out, kind);
    out.push_str(",\"value\":");
    escape_into(out, &value);
    out.push('}');
}

fn string_list(out: &mut String, list: &[String]) {
    out.push('[');
    for (i, s) in list.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(out, s);
    }
    out.push(']');
}

/// Serializes a policy set to JSON text.
pub fn to_json(policies: &[Policy]) -> String {
    let mut out = String::from("[");
    for (i, p) in policies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":{},\"vulnerability\":", p.id);
        escape_into(&mut out, &p.vulnerability);
        out.push_str(",\"event\":");
        escape_into(
            &mut out,
            match p.event {
                PolicyEvent::IccSend => "icc_send",
                PolicyEvent::IccReceive => "icc_receive",
            },
        );
        out.push_str(",\"conditions\":[");
        for (j, c) in p.conditions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            condition_to_json(&mut out, c);
        }
        out.push_str("],\"action\":");
        escape_into(
            &mut out,
            match p.action {
                PolicyAction::Prompt => "prompt",
                PolicyAction::Deny => "deny",
                PolicyAction::Allow => "allow",
            },
        );
        out.push_str(",\"rationale\":");
        escape_into(&mut out, &p.rationale);
        out.push('}');
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| ParseError {
                                    offset: self.pos,
                                    message: "non-utf8 escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                offset: self.pos,
                                message: "bad \\u escape".into(),
                            })?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x20 => return self.err("control character in string"),
                b => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let len = match b {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.pos - 1;
                    self.pos += len;
                    if self.pos > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected integer");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| ParseError {
                offset: start,
                message: "integer out of range".into(),
            })
    }

    fn string_array(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.string()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        self.expect(b'{')?;
        let mut kind: Option<String> = None;
        let mut value: Option<String> = None;
        let mut values: Option<Vec<String>> = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "kind" => kind = Some(self.string()?),
                "value" => value = Some(self.string()?),
                "values" => values = Some(self.string_array()?),
                other => return self.err(format!("unknown condition key '{other}'")),
            }
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
        let kind = kind.ok_or(ParseError {
            offset: self.pos,
            message: "condition missing 'kind'".into(),
        })?;
        let need_value = |v: Option<String>| {
            v.ok_or(ParseError {
                offset: self.pos,
                message: format!("condition '{kind}' missing 'value'"),
            })
        };
        let need_values = |v: Option<Vec<String>>| {
            v.ok_or(ParseError {
                offset: self.pos,
                message: format!("condition '{kind}' missing 'values'"),
            })
        };
        Ok(match kind.as_str() {
            "receiver_is" => Condition::ReceiverIs(need_value(value)?),
            "sender_is" => Condition::SenderIs(need_value(value)?),
            "action_is" => Condition::ActionIs(need_value(value)?),
            "extra_tagged" => Condition::ExtraTagged(need_value(value)?),
            "sender_not_in" => Condition::SenderNotIn(need_values(values)?),
            "receiver_not_in" => Condition::ReceiverNotIn(need_values(values)?),
            "sender_app_not_in" => Condition::SenderAppNotIn(need_values(values)?),
            other => {
                return Err(ParseError {
                    offset: self.pos,
                    message: format!("unknown condition kind '{other}'"),
                })
            }
        })
    }

    fn policy(&mut self) -> Result<Policy, ParseError> {
        self.expect(b'{')?;
        let mut policy = Policy {
            id: 0,
            vulnerability: String::new(),
            event: PolicyEvent::IccReceive,
            conditions: Vec::new(),
            action: crate::policy::PolicyAction::Prompt,
            rationale: String::new(),
        };
        let mut saw_event = false;
        let mut saw_action = false;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "id" => policy.id = self.integer()?,
                "vulnerability" => policy.vulnerability = self.string()?,
                "rationale" => policy.rationale = self.string()?,
                "event" => {
                    saw_event = true;
                    policy.event = match self.string()?.as_str() {
                        "icc_send" => PolicyEvent::IccSend,
                        "icc_receive" => PolicyEvent::IccReceive,
                        other => return self.err(format!("unknown event '{other}'")),
                    };
                }
                "action" => {
                    saw_action = true;
                    policy.action = match self.string()?.as_str() {
                        "prompt" => PolicyAction::Prompt,
                        "deny" => PolicyAction::Deny,
                        "allow" => PolicyAction::Allow,
                        other => return self.err(format!("unknown action '{other}'")),
                    };
                }
                "conditions" => {
                    self.expect(b'[')?;
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            policy.conditions.push(self.condition()?);
                            match self.peek() {
                                Some(b',') => {
                                    self.pos += 1;
                                }
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => return self.err("expected ',' or ']'"),
                            }
                        }
                    }
                }
                other => return self.err(format!("unknown policy key '{other}'")),
            }
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
        if !saw_event || !saw_action {
            return self.err("policy missing 'event' or 'action'");
        }
        Ok(policy)
    }
}

/// Parses a policy set from JSON text produced by [`to_json`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending byte.
pub fn from_json(text: &str) -> Result<Vec<Policy>, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.expect(b'[')?;
    let mut out = Vec::new();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            out.push(p.policy()?);
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                }
                Some(b']') => {
                    p.pos += 1;
                    break;
                }
                _ => return p.err("expected ',' or ']'"),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after policy array");
    }
    Ok(out)
}

/// Convenience: serialize with the vulnerability names validated.
pub fn validated_to_json(policies: &[Policy]) -> String {
    debug_assert!(policies.iter().all(|p| VulnKind::ALL
        .iter()
        .any(|k| k.name() == p.vulnerability)
        || !p.vulnerability.is_empty()));
    to_json(policies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{policies_for_exploit, PolicyAction};
    use crate::Exploit;
    use separ_android::types::Resource;
    use std::collections::BTreeSet;

    fn sample_policies() -> Vec<Policy> {
        let hijack = Exploit::IntentHijack {
            victim_app: "com.nav".into(),
            victim_component: "LLoc;".into(),
            hijacked_action: Some("show\"Loc\nx".into()), // exercises escaping
            leaked: [Resource::Location].into_iter().collect(),
        };
        let leak = Exploit::InformationLeakage {
            source_app: "a".into(),
            source_component: "LS;".into(),
            sink_app: "b".into(),
            sink_component: "LR;".into(),
            resources: [Resource::DeviceId].into_iter().collect(),
            sinks: [Resource::Sms].into_iter().collect(),
            via_action: None,
        };
        let mut out = policies_for_exploit(&hijack, &["LRoute;".to_string()]);
        out.extend(policies_for_exploit(&leak, &[]));
        out
    }

    #[test]
    fn round_trip_preserves_policies() {
        let policies = sample_policies();
        let json = to_json(&policies);
        let back = from_json(&json).expect("parses");
        assert_eq!(back, policies);
    }

    #[test]
    fn escapes_survive() {
        let mut p = sample_policies();
        p[0].rationale = "tab\there \"quoted\" back\\slash \u{1}ctl".into();
        let back = from_json(&to_json(&p)).expect("parses");
        assert_eq!(back[0].rationale, p[0].rationale);
    }

    #[test]
    fn empty_set_round_trips() {
        assert_eq!(from_json(&to_json(&[])).expect("parses"), vec![]);
        assert_eq!(from_json("  [ ]  ").expect("parses"), vec![]);
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "[",
            "[{}]",
            "[{\"id\":1}]",
            "[{\"event\":\"icc_send\",\"action\":\"prompt\"}] trailing",
            "[{\"event\":\"warp\",\"action\":\"prompt\"}]",
            "[{\"event\":\"icc_send\",\"action\":\"prompt\",\"conditions\":[{\"kind\":\"nope\",\"value\":\"x\"}]}]",
        ] {
            let err = from_json(bad).expect_err(bad);
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn parser_handles_unicode_payloads() {
        let mut p = sample_policies();
        p[0].rationale = "emoji \u{1F512} and ünïcode".into();
        let back = from_json(&to_json(&p)).expect("parses");
        assert_eq!(back[0].rationale, p[0].rationale);
    }

    #[test]
    fn action_variants_round_trip() {
        for action in [
            PolicyAction::Prompt,
            PolicyAction::Deny,
            PolicyAction::Allow,
        ] {
            let mut p = sample_policies();
            p[0].action = action;
            let back = from_json(&to_json(&p)).expect("parses");
            assert_eq!(back[0].action, action);
        }
        let _ = BTreeSet::<u8>::new();
    }
}
