//! The deterministic scoped worker pool behind the parallel pipeline.
//!
//! Both halves of the ASE pipeline are embarrassingly parallel: app
//! extraction is independent per package, and each vulnerability
//! signature solves its own relational problem against the shared bundle.
//! [`Executor::ordered_map`] fans such work out over scoped OS threads
//! (work is claimed by atomic index, so long items don't stall the queue)
//! and merges results back **in input order**, which keeps every
//! [`crate::Report`] byte-identical regardless of thread count — the
//! determinism the regression suite pins down.
//!
//! The executor is shared by [`crate::Separ`], [`crate::IncrementalSession`],
//! the `separ` CLI (`--threads`), and the bench crate's bundle fan-outs,
//! replacing the hand-rolled thread-scope scaffolding those used to carry.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A scoped worker pool with deterministic, input-ordered results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// One worker per available hardware thread.
    fn default() -> Executor {
        Executor::new(0)
    }
}

impl Executor {
    /// An executor with `threads` workers; `0` means one worker per
    /// available hardware thread.
    pub fn new(threads: usize) -> Executor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        Executor { threads }
    }

    /// The resolved worker count (never zero).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// input order. With one worker (or one item) it runs inline on the
    /// calling thread — no spawn overhead for the serial configuration.
    pub fn ordered_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_ordered_map(items, |item| Ok::<R, Unreachable>(f(item))) {
            Ok(results) => results,
            Err(unreachable) => match unreachable {},
        }
    }

    /// Fallible [`Executor::ordered_map`]: on failure, returns the error
    /// of the **lowest-indexed** failing item, so the reported error is
    /// also independent of thread count. (The serial path short-circuits
    /// there; parallel workers finish their queue — signatures fail only
    /// on implementation bugs, so the error path is not worth
    /// short-circuiting at the cost of a nondeterministic report.)
    pub fn try_ordered_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        // Worker-side spans must parent under whatever span is open on
        // the spawning thread, so capture it here and adopt it in each
        // worker (span context is otherwise thread-local).
        let parent_span = separ_obs::current_span();
        let worker = || {
            let _ctx = separ_obs::adopt_span(parent_span);
            let mut out: Vec<(usize, Result<R, E>)> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    return out;
                };
                out.push((i, f(item)));
            }
        };
        let mut slots: Vec<Option<Result<R, E>>> = Vec::new();
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
            for handle in handles {
                for (i, result) in handle.join().expect("executor worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was claimed by exactly one worker"))
            .collect()
    }
}

/// An error type with no values, for the infallible wrapper.
enum Unreachable {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_zero_to_hardware_threads() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 8, 64] {
            let exec = Executor::new(threads);
            let out = exec.ordered_map(&items, |&i| i * i);
            assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_workloads_stay_ordered() {
        // Early items are the slowest: a naive chunk-per-thread split
        // would finish out of order; the merge must still be by index.
        let items: Vec<u64> = (0..48).rev().collect();
        let out = Executor::new(8).ordered_map(&items, |&n| {
            std::thread::sleep(std::time::Duration::from_micros(n * 50));
            n
        });
        assert_eq!(out, items);
    }

    #[test]
    fn error_reported_is_the_lowest_indexed_one() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4, 16] {
            let err = Executor::new(threads)
                .try_ordered_map(&items, |&i| if i % 7 == 3 { Err(i) } else { Ok(i) })
                .expect_err("items 3, 10, ... fail");
            assert_eq!(err, 3, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let exec = Executor::new(8);
        assert_eq!(exec.ordered_map(&[] as &[u8], |&b| b), Vec::<u8>::new());
        assert_eq!(exec.ordered_map(&[5u8], |&b| b + 1), vec![6]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = Executor::new(64).ordered_map(&[1, 2, 3], |&n| n * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn worker_spans_parent_under_the_spawning_span() {
        // The worker closure records through the process-global
        // collector, so scope every assertion to this test's own root
        // span — other tests in this binary may be tracing concurrently.
        let c = separ_obs::global();
        c.enable();
        let root = c.span("exec.test_root");
        let root_id = root.id();
        let items: Vec<usize> = (0..16).collect();
        Executor::new(4).ordered_map(&items, |&i| {
            let mut s = c.span("exec.test_child");
            s.set_arg("i", i.to_string());
        });
        drop(root);
        let trace = c.snapshot_subtree(root_id);
        assert_eq!(trace.count_named("exec.test_child"), 16);
        let root_span = &trace.spans()[0];
        assert_eq!(root_span.name, "exec.test_root");
        for s in trace.spans().iter().skip(1) {
            assert_eq!(
                s.parent, root_span.id,
                "child {} parents under root",
                s.name
            );
        }
    }
}
