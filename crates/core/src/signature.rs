//! The vulnerability-signature plugin interface.
//!
//! SEPAR is plugin-based: each known inter-app vulnerability is distilled
//! into a formally-specified signature. A signature contributes constraints
//! over the encoded bundle (including the postulated malicious app's free
//! relations) and decodes the solver's minimal satisfying instances back
//! into concrete [`Exploit`]s. Users can register additional signatures at
//! any time to enrich the environment, as the paper describes.

use std::time::Duration;

use separ_analysis::model::AppModel;
use separ_logic::{FinderOptions, LogicError, SolverStats};

use crate::encode::BundleBase;
use crate::exploit::{Exploit, VulnKind};
use crate::footprint::SignatureFootprint;

/// The result of one signature's synthesis run.
#[derive(Debug, Default)]
pub struct Synthesis {
    /// Decoded exploit scenarios (one per minimal model, deduplicated).
    pub exploits: Vec<Exploit>,
    /// Time spent translating relational logic to CNF.
    pub construction: Duration,
    /// Time spent in the SAT solver.
    pub solving: Duration,
    /// Number of primary (free) boolean variables.
    pub primary_vars: usize,
    /// Number of CNF clauses asserted into the solver.
    pub cnf_clauses: usize,
    /// Whether the run translated from a shared [`BundleBase`].
    pub shared_base: bool,
    /// SAT-solver counters accumulated across the enumeration.
    pub solver: SolverStats,
}

/// Everything a signature needs for one synthesis run against a bundle:
/// the app models, the shared per-bundle encoding/translation, the
/// scenario cap and the solver options.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisContext<'a> {
    /// The (passive-intent-resolved) bundle models.
    pub apps: &'a [AppModel],
    /// The shared bundle encoding and translation base.
    pub base: &'a BundleBase,
    /// Maximum minimal scenarios to enumerate.
    pub limit: usize,
    /// CNF-encoding and symmetry-breaking options for the model finder.
    pub options: FinderOptions,
}

/// What parts of the bundle model a signature's verdict depends on, used
/// by the incremental engine to decide which signatures a change can
/// affect.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Sensitivity {
    /// Depends on granted/enforced/used permissions.
    pub permissions: bool,
    /// Depends on components, filters, intents or paths.
    pub topology: bool,
}

impl Default for Sensitivity {
    /// Conservatively sensitive to everything.
    fn default() -> Sensitivity {
        Sensitivity {
            permissions: true,
            topology: true,
        }
    }
}

/// A pluggable vulnerability signature.
///
/// The [`SignatureFootprint`] supertrait declares what the signature's
/// relational atoms range over, letting the pipeline slice the bundle
/// universe per signature before translation. Plugins that don't care
/// implement it empty (`impl SignatureFootprint for MySig {}`) and
/// inherit the conservative whole-bundle footprint.
pub trait VulnerabilitySignature: SignatureFootprint + Send + Sync {
    /// The category this signature detects.
    fn kind(&self) -> VulnKind;

    /// Human-readable plugin name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// What model facets this signature reads (conservative default).
    fn sensitivity(&self) -> Sensitivity {
        Sensitivity::default()
    }

    /// Synthesizes exploit scenarios against a prepared bundle context.
    ///
    /// The context carries the shared per-bundle encoding: implementations
    /// clone [`BundleBase::problem`] (instead of re-encoding the bundle)
    /// and translate from [`BundleBase::base`].
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if the generated specification is
    /// ill-typed (a signature implementation bug).
    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError>;

    /// Synthesizes up to `limit` exploit scenarios against the bundle,
    /// building a private [`BundleBase`] with default [`FinderOptions`].
    /// Convenience for one-off runs; the pipeline shares one base across
    /// the registry via [`VulnerabilitySignature::synthesize_with`].
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if the generated specification is
    /// ill-typed (a signature implementation bug).
    fn synthesize(&self, apps: &[AppModel], limit: usize) -> Result<Synthesis, LogicError> {
        let base = BundleBase::new(apps);
        self.synthesize_with(&SynthesisContext {
            apps,
            base: &base,
            limit,
            options: FinderOptions::default(),
        })
    }
}

/// An ordered collection of signatures (the plugin registry).
pub struct SignatureRegistry {
    signatures: Vec<Box<dyn VulnerabilitySignature>>,
}

impl SignatureRegistry {
    /// An empty registry.
    pub fn empty() -> SignatureRegistry {
        SignatureRegistry {
            signatures: Vec::new(),
        }
    }

    /// The registry with the four shipped plugins.
    pub fn standard() -> SignatureRegistry {
        use crate::vulns::{
            ComponentLaunchSignature, InformationLeakageSignature, IntentHijackSignature,
            PrivilegeEscalationSignature,
        };
        let mut r = SignatureRegistry::empty();
        r.register(Box::new(IntentHijackSignature));
        r.register(Box::new(ComponentLaunchSignature));
        r.register(Box::new(PrivilegeEscalationSignature));
        r.register(Box::new(InformationLeakageSignature));
        r
    }

    /// The standard registry plus the shipped extension plugins
    /// (currently broadcast injection).
    pub fn extended() -> SignatureRegistry {
        let mut r = SignatureRegistry::standard();
        r.register(Box::new(crate::vulns::BroadcastInjectionSignature));
        r
    }

    /// Adds a signature plugin.
    pub fn register(&mut self, signature: Box<dyn VulnerabilitySignature>) {
        self.signatures.push(signature);
    }

    /// Iterates over registered signatures.
    pub fn iter(&self) -> impl Iterator<Item = &dyn VulnerabilitySignature> + '_ {
        self.signatures.iter().map(Box::as_ref)
    }

    /// Number of registered signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Returns `true` if no signatures are registered.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }
}

impl std::fmt::Debug for SignatureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.signatures.iter().map(|s| s.name()))
            .finish()
    }
}

impl Default for SignatureRegistry {
    fn default() -> SignatureRegistry {
        SignatureRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_ships_four_plugins() {
        let r = SignatureRegistry::standard();
        assert_eq!(r.len(), 4);
        let kinds: Vec<VulnKind> = r.iter().map(|s| s.kind()).collect();
        assert_eq!(kinds, VulnKind::ALL[..4].to_vec());
    }

    #[test]
    fn registry_is_extensible() {
        struct Custom;
        // The empty impl inherits the conservative whole-bundle footprint.
        impl SignatureFootprint for Custom {}
        impl VulnerabilitySignature for Custom {
            fn kind(&self) -> VulnKind {
                VulnKind::IntentHijack
            }
            fn name(&self) -> &'static str {
                "custom-hijack-variant"
            }
            fn synthesize_with(
                &self,
                _ctx: &SynthesisContext<'_>,
            ) -> Result<Synthesis, LogicError> {
                Ok(Synthesis::default())
            }
        }
        let mut r = SignatureRegistry::standard();
        r.register(Box::new(Custom));
        assert_eq!(r.len(), 5);
        assert!(r.iter().any(|s| s.name() == "custom-hijack-variant"));
    }
}
