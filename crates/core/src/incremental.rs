//! Incremental policy synthesis for evolving systems.
//!
//! The paper's concluding remarks motivate exactly this: under
//! Marshmallow's Permission Manager the user can revoke permissions after
//! install, so "SEPAR's incremental analysis for policy synthesis can
//! then be performed on permission-modified apps at runtime". An
//! [`IncrementalSession`] keeps the bundle models and per-signature
//! results alive; a permission toggle re-runs only the signatures whose
//! declared [`Sensitivity`] covers permissions, while app installs and
//! removals re-run everything (the bundle topology changed). Every change
//! yields a [`PolicyDelta`] the enforcer can apply without re-deploying
//! the whole policy set.

use std::sync::Arc;

use separ_analysis::cache::ModelCache;
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_analysis::slicing::{self, AppSummary};
use separ_logic::LogicError;

use crate::exec::Executor;
use crate::exploit::Exploit;
use crate::pipeline::{derive_policies, synthesize_all, AnalyzeError};
use crate::policy::Policy;
use crate::signature::{Sensitivity, SignatureRegistry};
use crate::SeparConfig;

/// What changed in the policy set after a system change.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PolicyDelta {
    /// Newly required policies.
    pub added: Vec<Policy>,
    /// Policies that are no longer needed.
    pub removed: Vec<Policy>,
    /// How many signatures were re-run to compute this delta.
    pub signatures_rerun: usize,
    /// How many apps had their relevance-slicing capability summary
    /// recomputed (summaries are app-local, so a change to one app never
    /// forces re-summarizing another).
    pub apps_resliced: usize,
    /// How many [`SessionOp`]s were folded into this one delta pass (one
    /// for the single-op entry points; the coalescing measure for
    /// [`IncrementalSession::apply_batch`]).
    pub ops_coalesced: usize,
}

/// One mutation of the evolving device, as accepted by
/// [`IncrementalSession::apply_batch`].
///
/// A batch of ops is folded into a *single* delta re-analysis: all model
/// mutations are applied first, then the affected signatures re-run once.
/// This is what makes a burst of market churn (a `separ serve` request
/// queue draining) cost one synthesis pass instead of one per request.
#[derive(Debug, Clone)]
pub enum SessionOp {
    /// Install `model`, or — when a package of the same name is already
    /// installed — *update* it in place (replace the model, keep the
    /// bundle position).
    Install(AppModel),
    /// Remove the named package (no-op if absent).
    Uninstall(String),
    /// Grant or revoke a permission on the named package.
    SetPermission {
        /// The target package.
        package: String,
        /// The permission to toggle.
        permission: String,
        /// `true` grants, `false` revokes.
        granted: bool,
    },
}

impl PolicyDelta {
    /// Returns `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A long-lived analysis session over an evolving device.
pub struct IncrementalSession {
    registry: SignatureRegistry,
    config: SeparConfig,
    apps: Vec<AppModel>,
    /// Per-app capability summaries (same order as `apps`), kept current
    /// across changes so re-runs slice without re-summarizing the bundle.
    summaries: Vec<AppSummary>,
    /// Cached exploits per registered signature (same order as registry).
    cache: Vec<Vec<Exploit>>,
    /// Content-hash model cache consulted by [`IncrementalSession::install_package`].
    model_cache: Option<Arc<ModelCache>>,
    policies: Vec<Policy>,
    total_syntheses: usize,
}

impl std::fmt::Debug for IncrementalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("apps", &self.apps.len())
            .field("policies", &self.policies.len())
            .field("total_syntheses", &self.total_syntheses)
            .finish()
    }
}

impl IncrementalSession {
    /// Starts a session with a full analysis of the bundle.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn new(
        registry: SignatureRegistry,
        config: SeparConfig,
        mut apps: Vec<AppModel>,
    ) -> Result<IncrementalSession, LogicError> {
        update_passive_intent_targets(&mut apps);
        let summaries = slicing::summarize_bundle(&apps);
        let mut session = IncrementalSession {
            cache: vec![Vec::new(); registry.len()],
            registry,
            config,
            apps,
            summaries,
            model_cache: None,
            policies: Vec::new(),
            total_syntheses: 0,
        };
        session.rerun(|_| true)?;
        Ok(session)
    }

    /// Attaches a content-hash model cache, consulted (and populated) by
    /// [`IncrementalSession::install_package`] so re-installing unchanged
    /// packages skips extraction.
    pub fn with_model_cache(mut self, cache: Arc<ModelCache>) -> IncrementalSession {
        self.model_cache = Some(cache);
        self
    }

    /// The current bundle models.
    pub fn apps(&self) -> &[AppModel] {
        &self.apps
    }

    /// The current policy set.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// All currently known exploits.
    pub fn exploits(&self) -> impl Iterator<Item = &Exploit> + '_ {
        self.cache.iter().flatten()
    }

    /// Total signature syntheses performed over the session's lifetime
    /// (the incrementality measure: full re-analysis would be
    /// `registry.len()` per change).
    pub fn total_syntheses(&self) -> usize {
        self.total_syntheses
    }

    fn rerun(&mut self, select: impl Fn(Sensitivity) -> bool) -> Result<usize, LogicError> {
        let _span = separ_obs::span("pipeline.incremental");
        // Affected signatures re-solve in parallel on the shared executor;
        // results land back in their registry slots, so the merged caches
        // (and thus the policy set) are independent of thread count.
        let syntheses = synthesize_all(
            &Executor::new(self.config.threads),
            &self.registry,
            |sig| select(sig.sensitivity()),
            &self.apps,
            &self.config,
            Some(&self.summaries),
        )?;
        let mut reran = 0;
        for (slot, syn) in self.cache.iter_mut().zip(syntheses) {
            if let Some(run) = syn {
                *slot = run.synthesis.exploits;
                reran += 1;
            }
        }
        self.total_syntheses += reran;
        // Re-derive the policy set from the merged caches.
        self.policies = derive_policies(&self.apps, self.cache.iter().flatten());
        Ok(reran)
    }

    fn delta_from(&mut self, before: Vec<Policy>, reran: usize, resliced: usize) -> PolicyDelta {
        let added = self
            .policies
            .iter()
            .filter(|p| !before.iter().any(|q| same_policy(p, q)))
            .cloned()
            .collect();
        let removed = before
            .into_iter()
            .filter(|q| !self.policies.iter().any(|p| same_policy(p, q)))
            .collect();
        PolicyDelta {
            added,
            removed,
            signatures_rerun: reran,
            apps_resliced: resliced,
            ops_coalesced: 1,
        }
    }

    /// Applies a whole batch of churn in **one** delta pass.
    ///
    /// All model mutations land first (installs replacing same-named
    /// packages in place, uninstalls filtering, permission toggles
    /// editing), touched apps are re-summarized for slicing, passive
    /// intents re-resolve once if the topology changed — and then the
    /// affected signatures re-run a single time. A batch that only
    /// toggles permissions re-runs only permission-sensitive signatures;
    /// any install/update/uninstall re-runs everything. The returned
    /// delta is the net policy change of the whole batch, with
    /// [`PolicyDelta::ops_coalesced`] recording how many ops it folded.
    ///
    /// This is the coalescing primitive `separ serve` drains its request
    /// queue through: a burst of N market-churn requests costs one
    /// re-analysis, not N.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn apply_batch(&mut self, ops: Vec<SessionOp>) -> Result<PolicyDelta, LogicError> {
        let ops_coalesced = ops.len();
        let mut topology = false;
        let mut permissions = false;
        let mut resliced = 0usize;
        for op in ops {
            match op {
                SessionOp::Install(model) => {
                    match self.apps.iter().position(|a| a.package == model.package) {
                        // Reinstalling an installed package is an
                        // *update*: replace the model in its bundle slot
                        // instead of growing the app list.
                        Some(i) => {
                            self.apps[i] = model;
                            self.summaries[i] = slicing::summarize_app(&self.apps[i]);
                        }
                        None => {
                            self.apps.push(model);
                            // Summaries never read the cross-app
                            // passive-resolution results, so only the
                            // new app needs summarizing.
                            self.summaries.push(slicing::summarize_app(
                                self.apps.last().expect("just pushed"),
                            ));
                        }
                    }
                    resliced += 1;
                    topology = true;
                }
                SessionOp::Uninstall(package) => {
                    let before_len = self.apps.len();
                    let (apps, summaries): (Vec<AppModel>, Vec<AppSummary>) =
                        std::mem::take(&mut self.apps)
                            .into_iter()
                            .zip(std::mem::take(&mut self.summaries))
                            .filter(|(a, _)| a.package != package)
                            .unzip();
                    self.apps = apps;
                    self.summaries = summaries;
                    if self.apps.len() != before_len {
                        topology = true;
                    }
                }
                SessionOp::SetPermission {
                    package,
                    permission,
                    granted,
                } => {
                    for (app, summary) in self.apps.iter_mut().zip(self.summaries.iter_mut()) {
                        if app.package == package {
                            let touched = if granted {
                                app.uses_permissions.insert(permission.clone())
                            } else {
                                app.uses_permissions.remove(&permission)
                            };
                            if touched {
                                // Summaries are app-local: only the
                                // toggled app's capability bits changed.
                                *summary = slicing::summarize_app(app);
                                resliced += 1;
                                permissions = true;
                            }
                        }
                    }
                }
            }
        }
        if !topology && !permissions {
            return Ok(PolicyDelta {
                ops_coalesced,
                ..PolicyDelta::default()
            });
        }
        if topology {
            // Passive resolution is a pure function of the bundle
            // (recomputed from scratch), so one pass after all mutations
            // is exactly the from-scratch result.
            update_passive_intent_targets(&mut self.apps);
        }
        let before = self.policies.clone();
        let reran = if self.apps.is_empty() {
            for c in &mut self.cache {
                c.clear();
            }
            self.policies.clear();
            0
        } else if topology {
            self.rerun(|_| true)?
        } else {
            self.rerun(|s| s.permissions)?
        };
        let mut delta = self.delta_from(before, reran, resliced);
        delta.ops_coalesced = ops_coalesced;
        Ok(delta)
    }

    /// Applies a Permission Manager change: grant or revoke `permission`
    /// for `package`, re-running only permission-sensitive signatures.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn set_permission(
        &mut self,
        package: &str,
        permission: &str,
        granted: bool,
    ) -> Result<PolicyDelta, LogicError> {
        self.apply_batch(vec![SessionOp::SetPermission {
            package: package.to_string(),
            permission: permission.to_string(),
            granted,
        }])
    }

    /// Installs an app into the bundle (full re-analysis: the topology
    /// changed). Installing a package that is already present behaves as
    /// an update: the model is replaced in place.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn install(&mut self, app: AppModel) -> Result<PolicyDelta, LogicError> {
        self.apply_batch(vec![SessionOp::Install(app)])
    }

    /// Installs an app from its binary package, extracting its model
    /// first (through the attached [`ModelCache`], when present — an
    /// unchanged package re-installs without re-extraction).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Dex`] if the package fails to decode, or
    /// [`AnalyzeError::Logic`] if a signature is ill-typed.
    pub fn install_package(&mut self, bytes: &[u8]) -> Result<PolicyDelta, AnalyzeError> {
        let model = match &self.model_cache {
            Some(cache) => (*cache.get_or_extract(bytes)?.0).clone(),
            None => separ_analysis::extractor::extract(bytes)?,
        };
        Ok(self.install(model)?)
    }

    /// Uninstalls an app from the bundle (full re-analysis).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn uninstall(&mut self, package: &str) -> Result<PolicyDelta, LogicError> {
        self.apply_batch(vec![SessionOp::Uninstall(package.to_string())])
    }

    /// A clone of the current bundle models, in session order — exactly
    /// the state a from-scratch [`IncrementalSession::new`] (or a
    /// persistent-store restore in `separ serve`) needs to reproduce
    /// this session's policies and exploits.
    pub fn snapshot(&self) -> Vec<AppModel> {
        self.apps.clone()
    }
}

/// Policy identity modulo the (renumbered) id.
fn same_policy(a: &Policy, b: &Policy) -> bool {
    a.content_key() == b.content_key()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use crate::VulnKind;
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    fn messenger_model() -> AppModel {
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut a = app("com.messenger", vec![ms]);
        a.uses_permissions.insert(perm::SEND_SMS.into());
        a
    }

    fn navigator_model() -> AppModel {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        app("com.nav", vec![lf, rf])
    }

    fn session() -> IncrementalSession {
        IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            vec![navigator_model(), messenger_model()],
        )
        .expect("analysis succeeds")
    }

    #[test]
    fn revoking_send_sms_retires_the_escalation_policy() {
        let mut s = session();
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("re-analysis succeeds");
        assert!(
            delta
                .removed
                .iter()
                .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()),
            "revocation must retire the escalation policy: {delta:?}"
        );
        assert!(!s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        // Only the permission-sensitive signature re-ran.
        assert_eq!(delta.signatures_rerun, 1);
    }

    #[test]
    fn regranting_restores_the_policy() {
        let mut s = session();
        s.set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, true)
            .expect("grant");
        assert!(delta
            .added
            .iter()
            .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()));
    }

    #[test]
    fn noop_changes_produce_empty_deltas() {
        let mut s = session();
        let d = s
            .set_permission("com.messenger", perm::CAMERA, false)
            .expect("noop revoke of a permission the app never had");
        assert!(d.is_empty());
        assert_eq!(d.signatures_rerun, 0);
        let d = s.uninstall("com.not.installed").expect("noop uninstall");
        assert!(d.is_empty());
    }

    #[test]
    fn permission_toggles_leave_topology_policies_untouched() {
        let mut s = session();
        let hijack_policies: Vec<Policy> = s
            .policies()
            .iter()
            .filter(|p| p.vulnerability == VulnKind::IntentHijack.name())
            .cloned()
            .collect();
        assert!(!hijack_policies.is_empty());
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        for p in &hijack_policies {
            assert!(
                !delta.removed.iter().any(|q| same_policy(p, q)),
                "hijack policy must survive a permission toggle"
            );
        }
    }

    #[test]
    fn install_and_uninstall_track_the_bundle() {
        let mut s = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            vec![navigator_model()],
        )
        .expect("analysis succeeds");
        let before = s.policies().len();
        let delta = s.install(messenger_model()).expect("install");
        assert!(delta.added.len() + before >= s.policies().len());
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        let delta = s.uninstall("com.messenger").expect("uninstall");
        assert!(delta
            .removed
            .iter()
            .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()));
        assert!(!s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
    }

    #[test]
    fn incremental_is_cheaper_than_full_reanalysis() {
        let mut s = session();
        let after_init = s.total_syntheses();
        assert_eq!(after_init, 4, "initial full run");
        s.set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        s.set_permission("com.messenger", perm::SEND_SMS, true)
            .expect("grant");
        // Two toggles cost two syntheses, not eight.
        assert_eq!(s.total_syntheses(), after_init + 2);
    }

    #[test]
    fn reinstalling_an_installed_package_updates_in_place() {
        let mut s = session();
        assert_eq!(s.apps().len(), 2);
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        // "Reinstall" the messenger with its SMS capability stripped:
        // must replace the model in place, not grow the app list.
        let updated = app(
            "com.messenger",
            vec![comp("LMessageSender;", ComponentKind::Service)],
        );
        let delta = s.install(updated).expect("update re-analysis succeeds");
        assert_eq!(s.apps().len(), 2, "update must not duplicate the app");
        assert_eq!(
            s.apps()[1].package,
            "com.messenger",
            "update keeps the bundle position"
        );
        assert!(
            delta
                .removed
                .iter()
                .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()),
            "stripping the capability retires the escalation policy: {delta:?}"
        );
        assert!(!s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        // The updated session agrees with a from-scratch analysis.
        let scratch = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            s.snapshot(),
        )
        .expect("scratch");
        assert_eq!(s.policies(), scratch.policies());
        // Reinstalling the original capability restores the policy.
        let delta = s.install(messenger_model()).expect("reinstall");
        assert_eq!(s.apps().len(), 2);
        assert!(delta
            .added
            .iter()
            .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()));
    }

    #[test]
    fn apply_batch_coalesces_churn_into_one_pass() {
        let mut s = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            vec![navigator_model()],
        )
        .expect("analysis succeeds");
        let after_init = s.total_syntheses();
        let delta = s
            .apply_batch(vec![
                SessionOp::Install(messenger_model()),
                SessionOp::SetPermission {
                    package: "com.messenger".into(),
                    permission: perm::CAMERA.into(),
                    granted: true,
                },
                SessionOp::Install(app(
                    "com.extra",
                    vec![comp("LExtra;", ComponentKind::Activity)],
                )),
                SessionOp::Uninstall("com.extra".into()),
            ])
            .expect("batch re-analysis succeeds");
        assert_eq!(delta.ops_coalesced, 4);
        // One full pass over the registry, not one per op.
        assert_eq!(s.total_syntheses(), after_init + 4);
        assert_eq!(delta.signatures_rerun, 4);
        assert_eq!(s.apps().len(), 2);
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        // The batched session agrees with a from-scratch analysis.
        let scratch = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            s.snapshot(),
        )
        .expect("scratch");
        assert_eq!(s.policies(), scratch.policies());
        assert_eq!(
            s.exploits().collect::<Vec<_>>(),
            scratch.exploits().collect::<Vec<_>>()
        );
        // A batch of pure no-ops re-runs nothing.
        let delta = s
            .apply_batch(vec![
                SessionOp::Uninstall("com.not.installed".into()),
                SessionOp::SetPermission {
                    package: "com.messenger".into(),
                    permission: perm::CAMERA.into(),
                    granted: true,
                },
            ])
            .expect("noop batch");
        assert!(delta.is_empty());
        assert_eq!(delta.signatures_rerun, 0);
        assert_eq!(delta.ops_coalesced, 2);
    }

    #[test]
    fn changes_reslice_only_the_touched_app() {
        let mut s = session();
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        assert_eq!(delta.apps_resliced, 1, "only the toggled app");
        let delta = s
            .install(app(
                "com.extra",
                vec![comp("LExtra;", ComponentKind::Activity)],
            ))
            .expect("install");
        assert_eq!(delta.apps_resliced, 1, "only the new app");
        let delta = s.uninstall("com.messenger").expect("uninstall");
        assert_eq!(delta.apps_resliced, 0, "removal re-summarizes nothing");
        // Deltas with slicing on still track the bundle: the session and
        // a from-scratch run agree (the differential suite widens this).
        let scratch = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            s.apps().to_vec(),
        )
        .expect("scratch");
        assert_eq!(s.policies(), scratch.policies());
    }
}
