//! Incremental policy synthesis for evolving systems.
//!
//! The paper's concluding remarks motivate exactly this: under
//! Marshmallow's Permission Manager the user can revoke permissions after
//! install, so "SEPAR's incremental analysis for policy synthesis can
//! then be performed on permission-modified apps at runtime". An
//! [`IncrementalSession`] keeps the bundle models and per-signature
//! results alive; a permission toggle re-runs only the signatures whose
//! declared [`Sensitivity`] covers permissions, while app installs and
//! removals re-run everything (the bundle topology changed). Every change
//! yields a [`PolicyDelta`] the enforcer can apply without re-deploying
//! the whole policy set.

use std::sync::Arc;

use separ_analysis::cache::ModelCache;
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_analysis::slicing::{self, AppSummary};
use separ_logic::LogicError;

use crate::exec::Executor;
use crate::exploit::Exploit;
use crate::pipeline::{derive_policies, synthesize_all, AnalyzeError};
use crate::policy::Policy;
use crate::signature::{Sensitivity, SignatureRegistry};
use crate::SeparConfig;

/// What changed in the policy set after a system change.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PolicyDelta {
    /// Newly required policies.
    pub added: Vec<Policy>,
    /// Policies that are no longer needed.
    pub removed: Vec<Policy>,
    /// How many signatures were re-run to compute this delta.
    pub signatures_rerun: usize,
    /// How many apps had their relevance-slicing capability summary
    /// recomputed (summaries are app-local, so a change to one app never
    /// forces re-summarizing another).
    pub apps_resliced: usize,
}

impl PolicyDelta {
    /// Returns `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A long-lived analysis session over an evolving device.
pub struct IncrementalSession {
    registry: SignatureRegistry,
    config: SeparConfig,
    apps: Vec<AppModel>,
    /// Per-app capability summaries (same order as `apps`), kept current
    /// across changes so re-runs slice without re-summarizing the bundle.
    summaries: Vec<AppSummary>,
    /// Cached exploits per registered signature (same order as registry).
    cache: Vec<Vec<Exploit>>,
    /// Content-hash model cache consulted by [`IncrementalSession::install_package`].
    model_cache: Option<Arc<ModelCache>>,
    policies: Vec<Policy>,
    total_syntheses: usize,
}

impl std::fmt::Debug for IncrementalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("apps", &self.apps.len())
            .field("policies", &self.policies.len())
            .field("total_syntheses", &self.total_syntheses)
            .finish()
    }
}

impl IncrementalSession {
    /// Starts a session with a full analysis of the bundle.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn new(
        registry: SignatureRegistry,
        config: SeparConfig,
        mut apps: Vec<AppModel>,
    ) -> Result<IncrementalSession, LogicError> {
        update_passive_intent_targets(&mut apps);
        let summaries = slicing::summarize_bundle(&apps);
        let mut session = IncrementalSession {
            cache: vec![Vec::new(); registry.len()],
            registry,
            config,
            apps,
            summaries,
            model_cache: None,
            policies: Vec::new(),
            total_syntheses: 0,
        };
        session.rerun(|_| true)?;
        Ok(session)
    }

    /// Attaches a content-hash model cache, consulted (and populated) by
    /// [`IncrementalSession::install_package`] so re-installing unchanged
    /// packages skips extraction.
    pub fn with_model_cache(mut self, cache: Arc<ModelCache>) -> IncrementalSession {
        self.model_cache = Some(cache);
        self
    }

    /// The current bundle models.
    pub fn apps(&self) -> &[AppModel] {
        &self.apps
    }

    /// The current policy set.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// All currently known exploits.
    pub fn exploits(&self) -> impl Iterator<Item = &Exploit> + '_ {
        self.cache.iter().flatten()
    }

    /// Total signature syntheses performed over the session's lifetime
    /// (the incrementality measure: full re-analysis would be
    /// `registry.len()` per change).
    pub fn total_syntheses(&self) -> usize {
        self.total_syntheses
    }

    fn rerun(&mut self, select: impl Fn(Sensitivity) -> bool) -> Result<usize, LogicError> {
        let _span = separ_obs::span("pipeline.incremental");
        // Affected signatures re-solve in parallel on the shared executor;
        // results land back in their registry slots, so the merged caches
        // (and thus the policy set) are independent of thread count.
        let syntheses = synthesize_all(
            &Executor::new(self.config.threads),
            &self.registry,
            |sig| select(sig.sensitivity()),
            &self.apps,
            &self.config,
            Some(&self.summaries),
        )?;
        let mut reran = 0;
        for (slot, syn) in self.cache.iter_mut().zip(syntheses) {
            if let Some(run) = syn {
                *slot = run.synthesis.exploits;
                reran += 1;
            }
        }
        self.total_syntheses += reran;
        // Re-derive the policy set from the merged caches.
        self.policies = derive_policies(&self.apps, self.cache.iter().flatten());
        Ok(reran)
    }

    fn delta_from(&mut self, before: Vec<Policy>, reran: usize, resliced: usize) -> PolicyDelta {
        let added = self
            .policies
            .iter()
            .filter(|p| !before.iter().any(|q| same_policy(p, q)))
            .cloned()
            .collect();
        let removed = before
            .into_iter()
            .filter(|q| !self.policies.iter().any(|p| same_policy(p, q)))
            .collect();
        PolicyDelta {
            added,
            removed,
            signatures_rerun: reran,
            apps_resliced: resliced,
        }
    }

    /// Applies a Permission Manager change: grant or revoke `permission`
    /// for `package`, re-running only permission-sensitive signatures.
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn set_permission(
        &mut self,
        package: &str,
        permission: &str,
        granted: bool,
    ) -> Result<PolicyDelta, LogicError> {
        let mut resliced = 0;
        for (app, summary) in self.apps.iter_mut().zip(self.summaries.iter_mut()) {
            if app.package == package {
                let touched = if granted {
                    app.uses_permissions.insert(permission.to_string())
                } else {
                    app.uses_permissions.remove(permission)
                };
                if touched {
                    // Summaries are app-local: only the toggled app's
                    // capability bits can have changed.
                    *summary = slicing::summarize_app(app);
                    resliced += 1;
                }
            }
        }
        if resliced == 0 {
            return Ok(PolicyDelta::default());
        }
        let before = self.policies.clone();
        let reran = self.rerun(|s| s.permissions)?;
        Ok(self.delta_from(before, reran, resliced))
    }

    /// Installs an app into the bundle (full re-analysis: the topology
    /// changed).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn install(&mut self, app: AppModel) -> Result<PolicyDelta, LogicError> {
        self.apps.push(app);
        update_passive_intent_targets(&mut self.apps);
        // Summaries never read the cross-app passive-resolution results,
        // so only the new app needs summarizing.
        self.summaries.push(slicing::summarize_app(
            self.apps.last().expect("just pushed"),
        ));
        let before = self.policies.clone();
        let reran = self.rerun(|_| true)?;
        Ok(self.delta_from(before, reran, 1))
    }

    /// Installs an app from its binary package, extracting its model
    /// first (through the attached [`ModelCache`], when present — an
    /// unchanged package re-installs without re-extraction).
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Dex`] if the package fails to decode, or
    /// [`AnalyzeError::Logic`] if a signature is ill-typed.
    pub fn install_package(&mut self, bytes: &[u8]) -> Result<PolicyDelta, AnalyzeError> {
        let model = match &self.model_cache {
            Some(cache) => (*cache.get_or_extract(bytes)?.0).clone(),
            None => separ_analysis::extractor::extract(bytes)?,
        };
        Ok(self.install(model)?)
    }

    /// Uninstalls an app from the bundle (full re-analysis).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature is ill-typed.
    pub fn uninstall(&mut self, package: &str) -> Result<PolicyDelta, LogicError> {
        let before_len = self.apps.len();
        let (apps, summaries): (Vec<AppModel>, Vec<AppSummary>) = std::mem::take(&mut self.apps)
            .into_iter()
            .zip(std::mem::take(&mut self.summaries))
            .filter(|(a, _)| a.package != package)
            .unzip();
        self.apps = apps;
        self.summaries = summaries;
        if self.apps.len() == before_len {
            return Ok(PolicyDelta::default());
        }
        let before = self.policies.clone();
        let reran = if self.apps.is_empty() {
            for c in &mut self.cache {
                c.clear();
            }
            self.policies.clear();
            0
        } else {
            self.rerun(|_| true)?
        };
        Ok(self.delta_from(before, reran, 0))
    }
}

/// Policy identity modulo the (renumbered) id.
fn same_policy(a: &Policy, b: &Policy) -> bool {
    a.content_key() == b.content_key()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use crate::VulnKind;
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    fn messenger_model() -> AppModel {
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut a = app("com.messenger", vec![ms]);
        a.uses_permissions.insert(perm::SEND_SMS.into());
        a
    }

    fn navigator_model() -> AppModel {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        app("com.nav", vec![lf, rf])
    }

    fn session() -> IncrementalSession {
        IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            vec![navigator_model(), messenger_model()],
        )
        .expect("analysis succeeds")
    }

    #[test]
    fn revoking_send_sms_retires_the_escalation_policy() {
        let mut s = session();
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("re-analysis succeeds");
        assert!(
            delta
                .removed
                .iter()
                .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()),
            "revocation must retire the escalation policy: {delta:?}"
        );
        assert!(!s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        // Only the permission-sensitive signature re-ran.
        assert_eq!(delta.signatures_rerun, 1);
    }

    #[test]
    fn regranting_restores_the_policy() {
        let mut s = session();
        s.set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, true)
            .expect("grant");
        assert!(delta
            .added
            .iter()
            .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()));
    }

    #[test]
    fn noop_changes_produce_empty_deltas() {
        let mut s = session();
        let d = s
            .set_permission("com.messenger", perm::CAMERA, false)
            .expect("noop revoke of a permission the app never had");
        assert!(d.is_empty());
        assert_eq!(d.signatures_rerun, 0);
        let d = s.uninstall("com.not.installed").expect("noop uninstall");
        assert!(d.is_empty());
    }

    #[test]
    fn permission_toggles_leave_topology_policies_untouched() {
        let mut s = session();
        let hijack_policies: Vec<Policy> = s
            .policies()
            .iter()
            .filter(|p| p.vulnerability == VulnKind::IntentHijack.name())
            .cloned()
            .collect();
        assert!(!hijack_policies.is_empty());
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        for p in &hijack_policies {
            assert!(
                !delta.removed.iter().any(|q| same_policy(p, q)),
                "hijack policy must survive a permission toggle"
            );
        }
    }

    #[test]
    fn install_and_uninstall_track_the_bundle() {
        let mut s = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            vec![navigator_model()],
        )
        .expect("analysis succeeds");
        let before = s.policies().len();
        let delta = s.install(messenger_model()).expect("install");
        assert!(delta.added.len() + before >= s.policies().len());
        assert!(s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
        let delta = s.uninstall("com.messenger").expect("uninstall");
        assert!(delta
            .removed
            .iter()
            .any(|p| p.vulnerability == VulnKind::PrivilegeEscalation.name()));
        assert!(!s
            .exploits()
            .any(|e| e.kind() == VulnKind::PrivilegeEscalation));
    }

    #[test]
    fn incremental_is_cheaper_than_full_reanalysis() {
        let mut s = session();
        let after_init = s.total_syntheses();
        assert_eq!(after_init, 4, "initial full run");
        s.set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        s.set_permission("com.messenger", perm::SEND_SMS, true)
            .expect("grant");
        // Two toggles cost two syntheses, not eight.
        assert_eq!(s.total_syntheses(), after_init + 2);
    }

    #[test]
    fn changes_reslice_only_the_touched_app() {
        let mut s = session();
        let delta = s
            .set_permission("com.messenger", perm::SEND_SMS, false)
            .expect("revoke");
        assert_eq!(delta.apps_resliced, 1, "only the toggled app");
        let delta = s
            .install(app(
                "com.extra",
                vec![comp("LExtra;", ComponentKind::Activity)],
            ))
            .expect("install");
        assert_eq!(delta.apps_resliced, 1, "only the new app");
        let delta = s.uninstall("com.messenger").expect("uninstall");
        assert_eq!(delta.apps_resliced, 0, "removal re-summarizes nothing");
        // Deltas with slicing on still track the bundle: the session and
        // a from-scratch run agree (the differential suite widens this).
        let scratch = IncrementalSession::new(
            SignatureRegistry::standard(),
            SeparConfig::default(),
            s.apps().to_vec(),
        )
        .expect("scratch");
        assert_eq!(s.policies(), scratch.policies());
    }
}
