//! Signature footprints — what a signature's relational atoms range over.
//!
//! A [`Footprint`] is a signature's declaration of the capability classes
//! ([`SliceDemand`]s) its witnesses and facts can possibly bind, plus
//! which of the postulated malicious entity's free relation rows its
//! facts actually constrain. The pipeline intersects the footprint with
//! the bundle's capability summaries ([`separ_analysis::slicing`]) to
//! build a *sliced* translation base: only the apps some demand selects
//! are encoded, and malicious rows the footprint marks unconstrained are
//! dropped from the relation upper bounds before CNF construction
//! ([`separ_logic::Problem::tighten_upper`]).
//!
//! # Soundness obligation
//!
//! A footprint is an author-asserted over-approximation: it must be
//! impossible for the signature's facts to have a minimal model binding
//! an app no demand selects, or forcing true a malicious row the
//! footprint drops. The built-in signatures' footprints are proven
//! over-approximate by the differential harness
//! (`tests/slicing_equivalence.rs`); [`Footprint::everything`] — the
//! default every [`SignatureFootprint`] implementation inherits — is
//! trivially sound and disables slicing for that signature.

use std::collections::BTreeSet;

use separ_analysis::slicing::SliceDemand;

/// Which rows of the malicious intent's free `canReceive` upper bound a
/// signature's facts can force true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MalReceivers {
    /// The facts never mention `MalIntent.canReceive`: every malicious
    /// receiver row is unconstrained and can be dropped.
    None,
    /// The facts deliver the malicious intent only to components matching
    /// one of the footprint's demands; rows to other components drop.
    Matching,
    /// Keep every malicious receiver row (the conservative default).
    All,
}

/// A signature's declared relational footprint (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Footprint {
    /// The capability classes the signature's atoms range over. An app
    /// joins the slice when it satisfies at least one demand;
    /// [`SliceDemand::Everything`] keeps the whole bundle.
    pub demands: BTreeSet<SliceDemand>,
    /// Malicious receiver rows the facts can constrain.
    pub mal_receivers: MalReceivers,
    /// Whether the facts constrain the malicious intent's `extras` rows.
    pub mal_extras: bool,
    /// Whether the facts constrain the malicious intent's `action` rows.
    pub mal_action: bool,
    /// Whether the facts constrain the malicious filter's
    /// `malFilterActions` rows.
    pub mal_filter: bool,
}

impl Footprint {
    /// The conservative footprint: range over everything, keep every
    /// malicious row. Slicing is a no-op for signatures declaring this.
    pub fn everything() -> Footprint {
        Footprint {
            demands: BTreeSet::from([SliceDemand::Everything]),
            mal_receivers: MalReceivers::All,
            mal_extras: true,
            mal_action: true,
            mal_filter: true,
        }
    }

    /// A universe-slicing footprint that keeps every malicious row:
    /// sound whenever `demands` over-approximate which apps the facts
    /// can bind, with no claim about the malicious surface. This is what
    /// spec-file `footprint { ... }` annotations produce.
    pub fn for_demands(demands: impl IntoIterator<Item = SliceDemand>) -> Footprint {
        Footprint {
            demands: demands.into_iter().collect(),
            ..Footprint::everything()
        }
    }

    /// Whether this footprint ranges over the whole bundle.
    pub fn is_everything(&self) -> bool {
        self.demands.contains(&SliceDemand::Everything)
    }

    /// Whether the footprint drops any malicious free rows (i.e. bound
    /// tightening has an effect even when every app is kept).
    pub fn tightens_mal(&self) -> bool {
        self.mal_receivers != MalReceivers::All
            || !self.mal_extras
            || !self.mal_action
            || !self.mal_filter
    }
}

/// The slicing half of a signature plugin: every
/// [`crate::VulnerabilitySignature`] declares (or inherits) a footprint.
///
/// The default is [`Footprint::everything`], so existing plugins keep
/// working unchanged — they simply do not benefit from slicing.
pub trait SignatureFootprint {
    /// The signature's relational footprint.
    fn footprint(&self) -> Footprint {
        Footprint::everything()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_everything() {
        let fp = Footprint::everything();
        assert!(fp.is_everything());
        assert!(!fp.tightens_mal());
    }

    #[test]
    fn demand_footprints_keep_the_mal_surface() {
        let fp = Footprint::for_demands([SliceDemand::LeakChannel]);
        assert!(!fp.is_everything());
        assert!(!fp.tightens_mal());
        assert_eq!(fp.mal_receivers, MalReceivers::All);
    }

    #[test]
    fn default_footprint_is_conservative() {
        struct Plain;
        impl SignatureFootprint for Plain {}
        assert!(Plain.footprint().is_everything());
    }
}
