//! Textual vulnerability specifications — user-authored signature plugins.
//!
//! In the real SEPAR, vulnerability signatures *are* Alloy specifications
//! that users can add at any time. This module gives the reproduction the
//! same property: a small Alloy-flavoured language in which a signature is
//! a set of witness declarations plus relational facts over the encoded
//! bundle vocabulary. A parsed [`TextualSignature`] is a fully-fledged
//! [`VulnerabilitySignature`] and can be registered like the built-ins.
//!
//! # Example
//!
//! The paper's Listing 5 (service launch), as a textual signature:
//!
//! ```text
//! vuln GeneratedServiceLaunch {
//!     launched: one Component
//! } {
//!     launched in exported
//!     launched in Activity + Service
//!     launched in MalIntent.canReceive
//!     some launched.pathSource & IccRes
//!     some MalIntent.extras
//! }
//! ```
//!
//! # Vocabulary
//!
//! Identifiers resolve, in order, to: witness declarations; the postulated
//! malicious atoms (`MalIntent`, `MalComp`, `MalFilter`, `MalApp`); and
//! the encoded bundle relations — unary domains `Component`,
//! `Application`, `Intent`, `Action`, `Permission`, `Resource`,
//! `Activity`, `Service`, `Receiver`, `Provider`, `installed`,
//! `exported`, `hijackable`, `SourceRes`, `SinkRes`, `IccRes`,
//! `ProtectedAction`; and the fields `app`, `sender`, `action`, `extras`,
//! `canReceive`, `malFilterActions`, `pathSource`, `pathSink`, `path`,
//! `enforces`, `usesPerm`, `appPerms`, `filterActions`.
//!
//! Operators follow Alloy: unary `~` (transpose) and `^` (closure) bind
//! tightest, then `.` (join), then `&`, then `+` / `-`. Formulas are
//! `e in e`, `e = e`, `some|no|one|lone e`, `not f`, `f and f`, `f or f`.
//!
//! # Footprint annotations
//!
//! A spec may end with a `footprint { capability ... }` clause naming
//! the [`SliceDemand`] capability classes its atoms range over (e.g.
//! `footprint { launchable_icc_entry }`). The clause is the author's
//! over-approximation claim (see [`crate::footprint`]); annotated specs
//! participate in relevance slicing, unannotated specs conservatively
//! range over the whole bundle.

use std::collections::BTreeSet;
use std::fmt;

use separ_analysis::model::AppModel;
use separ_analysis::slicing::SliceDemand;
use separ_logic::{Expr, Formula, LogicError, Problem, RelationDecl, RelationId, TupleSet};

use crate::encode::AtomRegistry;
use crate::exploit::{Exploit, VulnKind};
use crate::footprint::{Footprint, SignatureFootprint};
use crate::signature::{Synthesis, SynthesisContext, VulnerabilitySignature};

/// The relation names a specification may reference.
const VOCABULARY: &[&str] = &[
    "Component",
    "Application",
    "Intent",
    "Action",
    "Permission",
    "Resource",
    "Activity",
    "Service",
    "Receiver",
    "Provider",
    "installed",
    "exported",
    "hijackable",
    "SourceRes",
    "SinkRes",
    "IccRes",
    "ProtectedAction",
    "app",
    "sender",
    "action",
    "extras",
    "canReceive",
    "malFilterActions",
    "pathSource",
    "pathSink",
    "path",
    "enforces",
    "usesPerm",
    "appPerms",
    "filterActions",
];

const MAL_ATOMS: &[&str] = &["MalIntent", "MalComp", "MalFilter", "MalApp"];

/// A parse error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "spec error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Dot,
    Plus,
    Amp,
    Minus,
    Caret,
    Tilde,
    Equals,
}

/// One lexed token with its 1-based (line, column) source position.
type Spanned = (Tok, usize, usize);

fn lex(src: &str) -> Result<Vec<Spanned>, SpecError> {
    let mut out = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.split("//").next().unwrap_or("");
        let mut chars = line.chars().enumerate().peekable();
        while let Some(&(i, c)) = chars.peek() {
            let col = i + 1;
            let tok = match c {
                c if c.is_whitespace() => {
                    chars.next();
                    continue;
                }
                '{' => Some(Tok::LBrace),
                '}' => Some(Tok::RBrace),
                '(' => Some(Tok::LParen),
                ')' => Some(Tok::RParen),
                ':' => Some(Tok::Colon),
                '.' => Some(Tok::Dot),
                '+' => Some(Tok::Plus),
                '&' => Some(Tok::Amp),
                '-' => Some(Tok::Minus),
                '^' => Some(Tok::Caret),
                '~' => Some(Tok::Tilde),
                '=' => Some(Tok::Equals),
                c if c.is_alphanumeric() || c == '_' => None,
                other => {
                    return Err(SpecError {
                        line: lineno + 1,
                        column: col,
                        message: format!("unexpected character '{other}'"),
                    })
                }
            };
            match tok {
                Some(t) => {
                    chars.next();
                    out.push((t, lineno + 1, col));
                }
                None => {
                    let mut ident = String::new();
                    while let Some(&(_, c)) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            ident.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((Tok::Ident(ident), lineno + 1, col));
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// AST & parser
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum EAst {
    Name(String),
    Join(Box<EAst>, Box<EAst>),
    Union(Box<EAst>, Box<EAst>),
    Intersect(Box<EAst>, Box<EAst>),
    Difference(Box<EAst>, Box<EAst>),
    Transpose(Box<EAst>),
    Closure(Box<EAst>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum FAst {
    In(EAst, EAst),
    Eq(EAst, EAst),
    Some(EAst),
    No(EAst),
    One(EAst),
    Lone(EAst),
    And(Box<FAst>, Box<FAst>),
    Or(Box<FAst>, Box<FAst>),
    Not(Box<FAst>),
}

/// Witness multiplicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mult {
    One,
    Some,
    Lone,
    Set,
}

#[derive(Debug, Clone)]
struct SpecAst {
    name: String,
    decls: Vec<(String, Mult, String)>,
    facts: Vec<FAst>,
    /// The optional `footprint { ... }` annotation's capability classes.
    footprint: Option<BTreeSet<SliceDemand>>,
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Witness names declared so far; facts validate identifiers against
    /// these plus the fixed vocabulary, at the offending token's position.
    decl_names: BTreeSet<String>,
}

impl Parser {
    /// The (line, column) of the current token — or of the last token
    /// when the input ended early.
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |t| (t.1, t.2))
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SpecError> {
        let (line, column) = self.here();
        Err(SpecError {
            line,
            column,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), SpecError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SpecError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn spec(&mut self) -> Result<SpecAst, SpecError> {
        let kw = self.ident()?;
        if kw != "vuln" {
            return self.err("specification must start with 'vuln <Name>'");
        }
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let mut decls = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let dname = self.ident()?;
            self.expect(Tok::Colon)?;
            let mut at = self.here();
            let mult_or_domain = self.ident()?;
            let (mult, domain) = match mult_or_domain.as_str() {
                "one" | "some" | "lone" | "set" => {
                    let mult = match mult_or_domain.as_str() {
                        "one" => Mult::One,
                        "some" => Mult::Some,
                        "lone" => Mult::Lone,
                        _ => Mult::Set,
                    };
                    at = self.here();
                    (mult, self.ident()?)
                }
                _ => (Mult::One, mult_or_domain),
            };
            if !VOCABULARY.contains(&domain.as_str()) {
                return Err(SpecError {
                    line: at.0,
                    column: at.1,
                    message: format!("unknown witness domain '{domain}' for '{dname}'"),
                });
            }
            self.decl_names.insert(dname.clone());
            decls.push((dname, mult, domain));
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::LBrace)?;
        let mut facts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            facts.push(self.formula()?);
        }
        self.expect(Tok::RBrace)?;
        let footprint = self.footprint_clause()?;
        if self.pos != self.toks.len() {
            return self.err("trailing tokens after specification");
        }
        Ok(SpecAst {
            name,
            decls,
            facts,
            footprint,
        })
    }

    /// The optional trailing `footprint { capability ... }` clause.
    fn footprint_clause(&mut self) -> Result<Option<BTreeSet<SliceDemand>>, SpecError> {
        if !matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "footprint") {
            return Ok(None);
        }
        self.pos += 1;
        self.expect(Tok::LBrace)?;
        let mut demands = BTreeSet::new();
        while self.peek() != Some(&Tok::RBrace) {
            let (line, column) = self.here();
            let name = self.ident()?;
            match SliceDemand::from_name(&name) {
                Some(d) => {
                    demands.insert(d);
                }
                None => {
                    return Err(SpecError {
                        line,
                        column,
                        message: format!("unknown footprint capability '{name}'"),
                    })
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(Some(demands))
    }

    /// formula := conjunct (('and'|'or') conjunct)*
    fn formula(&mut self) -> Result<FAst, SpecError> {
        let mut lhs = self.conjunct()?;
        while let Some(Tok::Ident(kw)) = self.peek() {
            match kw.as_str() {
                "and" => {
                    self.pos += 1;
                    let rhs = self.conjunct()?;
                    lhs = FAst::And(Box::new(lhs), Box::new(rhs));
                }
                "or" => {
                    self.pos += 1;
                    let rhs = self.conjunct()?;
                    lhs = FAst::Or(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    /// conjunct := 'not' conjunct | 'some|no|one|lone' expr
    ///           | expr ('in' | '=') expr | '(' formula ')'
    fn conjunct(&mut self) -> Result<FAst, SpecError> {
        if let Some(Tok::Ident(kw)) = self.peek() {
            match kw.as_str() {
                "not" => {
                    self.pos += 1;
                    return Ok(FAst::Not(Box::new(self.conjunct()?)));
                }
                "some" | "no" | "one" | "lone" => {
                    let kw = kw.clone();
                    self.pos += 1;
                    let e = self.expr()?;
                    return Ok(match kw.as_str() {
                        "some" => FAst::Some(e),
                        "no" => FAst::No(e),
                        "one" => FAst::One(e),
                        _ => FAst::Lone(e),
                    });
                }
                _ => {}
            }
        }
        // A parenthesized *formula* or a relational comparison.
        let checkpoint = self.pos;
        if self.peek() == Some(&Tok::LParen) {
            // Try formula-in-parens first.
            self.pos += 1;
            if let Ok(f) = self.formula() {
                if self.peek() == Some(&Tok::RParen) {
                    self.pos += 1;
                    return Ok(f);
                }
            }
            self.pos = checkpoint;
        }
        let lhs = self.expr()?;
        match self.next() {
            Some(Tok::Ident(kw)) if kw == "in" => {
                let rhs = self.expr()?;
                Ok(FAst::In(lhs, rhs))
            }
            Some(Tok::Equals) => {
                let rhs = self.expr()?;
                Ok(FAst::Eq(lhs, rhs))
            }
            other => {
                self.pos -= usize::from(other.is_some());
                self.err("expected 'in' or '=' after expression")
            }
        }
    }

    /// expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<EAst, SpecError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = EAst::Union(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = EAst::Difference(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    /// term := joined ('&' joined)*
    fn term(&mut self) -> Result<EAst, SpecError> {
        let mut lhs = self.joined()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            let rhs = self.joined()?;
            lhs = EAst::Intersect(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// joined := atom ('.' atom)*
    fn joined(&mut self) -> Result<EAst, SpecError> {
        let mut lhs = self.atom()?;
        while self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            let rhs = self.atom()?;
            lhs = EAst::Join(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// atom := '~' atom | '^' atom | IDENT | '(' expr ')'
    fn atom(&mut self) -> Result<EAst, SpecError> {
        match self.peek() {
            Some(Tok::Tilde) => {
                self.pos += 1;
                Ok(EAst::Transpose(Box::new(self.atom()?)))
            }
            Some(Tok::Caret) => {
                self.pos += 1;
                Ok(EAst::Closure(Box::new(self.atom()?)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => {
                let (line, column) = self.here();
                let n = self.ident()?;
                if !(self.decl_names.contains(&n)
                    || MAL_ATOMS.contains(&n.as_str())
                    || VOCABULARY.contains(&n.as_str()))
                {
                    return Err(SpecError {
                        line,
                        column,
                        message: format!("unknown identifier '{n}'"),
                    });
                }
                Ok(EAst::Name(n))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// The signature
// ---------------------------------------------------------------------

/// A user-authored signature parsed from the textual language.
#[derive(Debug, Clone)]
pub struct TextualSignature {
    ast: SpecAst,
}

impl TextualSignature {
    /// Parses a specification. The vocabulary is validated during the
    /// parse — unknown witness domains, fact identifiers and footprint
    /// capabilities are rejected with the offending token's exact line
    /// and column — so synthesis can't fail on unknown names.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for syntax errors, unknown identifiers, or
    /// witness declarations over non-unary domains.
    pub fn parse(source: &str) -> Result<TextualSignature, SpecError> {
        let toks = lex(source)?;
        let mut parser = Parser {
            toks,
            pos: 0,
            decl_names: BTreeSet::new(),
        };
        let ast = parser.spec()?;
        Ok(TextualSignature { ast })
    }

    /// The signature's declared name.
    pub fn spec_name(&self) -> &str {
        &self.ast.name
    }
}

struct Resolver<'e> {
    atoms: &'e AtomRegistry,
    problem: &'e Problem,
    witnesses: Vec<(String, RelationId)>,
}

impl Resolver<'_> {
    fn resolve_e(&self, e: &EAst) -> Expr {
        match e {
            EAst::Name(n) => {
                if let Some((_, r)) = self.witnesses.iter().find(|(w, _)| w == n) {
                    return Expr::relation(*r);
                }
                match n.as_str() {
                    "MalIntent" => Expr::atom(self.atoms.mal_intent),
                    "MalComp" => Expr::atom(self.atoms.mal_comp),
                    "MalFilter" => Expr::atom(self.atoms.mal_filter),
                    "MalApp" => Expr::atom(self.atoms.mal_app),
                    other => Expr::relation(
                        self.problem
                            .relation_by_name(other)
                            .expect("vocabulary validated at parse time"),
                    ),
                }
            }
            EAst::Join(a, b) => self.resolve_e(a).join(&self.resolve_e(b)),
            EAst::Union(a, b) => self.resolve_e(a).union(&self.resolve_e(b)),
            EAst::Intersect(a, b) => self.resolve_e(a).intersect(&self.resolve_e(b)),
            EAst::Difference(a, b) => self.resolve_e(a).difference(&self.resolve_e(b)),
            EAst::Transpose(a) => self.resolve_e(a).transpose(),
            EAst::Closure(a) => self.resolve_e(a).closure(),
        }
    }

    fn resolve_f(&self, f: &FAst) -> Formula {
        match f {
            FAst::In(a, b) => self.resolve_e(a).in_(&self.resolve_e(b)),
            FAst::Eq(a, b) => self.resolve_e(a).equal(&self.resolve_e(b)),
            FAst::Some(e) => self.resolve_e(e).some(),
            FAst::No(e) => self.resolve_e(e).no(),
            FAst::One(e) => self.resolve_e(e).one(),
            FAst::Lone(e) => self.resolve_e(e).lone(),
            FAst::And(a, b) => Formula::and([self.resolve_f(a), self.resolve_f(b)]),
            FAst::Or(a, b) => Formula::or([self.resolve_f(a), self.resolve_f(b)]),
            FAst::Not(a) => self.resolve_f(a).not(),
        }
    }
}

/// Human-readable description of a bound atom for exploit bindings.
fn describe_atom(
    atoms: &AtomRegistry,
    apps: &[AppModel],
    atom: separ_logic::Atom,
) -> (String, Option<(String, String)>) {
    if let Some((ai, ci)) = atoms.component_of(atom) {
        let pkg = apps[ai].package.clone();
        let class = apps[ai].components[ci].class.clone();
        return (format!("{pkg}/{class}"), Some((pkg, class)));
    }
    if let Some((ai, ci, ii)) = atoms.intent_of(atom) {
        return (
            format!(
                "{}/{}#intent{}",
                apps[ai].package, apps[ai].components[ci].class, ii
            ),
            None,
        );
    }
    if let Some(a) = atoms.action_of(atom) {
        return (a.to_string(), None);
    }
    if let Some(r) = atoms.resource_of(atom) {
        return (r.name().to_string(), None);
    }
    if let Some(p) = atoms.permission_of(atom) {
        return (p.to_string(), None);
    }
    if let Some(i) = atoms.apps.iter().position(|&a| a == atom) {
        return (apps[i].package.clone(), None);
    }
    ("<unknown>".to_string(), None)
}

impl SignatureFootprint for TextualSignature {
    /// A `footprint { ... }` annotation becomes a demand-only footprint
    /// (the malicious surface is conservatively kept); unannotated specs
    /// range over the whole bundle.
    fn footprint(&self) -> Footprint {
        match &self.ast.footprint {
            Some(demands) => Footprint::for_demands(demands.iter().copied()),
            None => Footprint::everything(),
        }
    }
}

impl VulnerabilitySignature for TextualSignature {
    fn kind(&self) -> VulnKind {
        VulnKind::Custom
    }

    fn name(&self) -> &'static str {
        // Trait wants a static str; the dynamic name is carried by the
        // exploits themselves.
        "textual-signature"
    }

    fn synthesize_with(&self, ctx: &SynthesisContext<'_>) -> Result<Synthesis, LogicError> {
        let (apps, atoms) = (ctx.apps, ctx.base.atoms());
        let mut problem = ctx.base.problem();
        // Install witnesses: upper bound = the domain relation's upper
        // bound, minus the postulated malicious atoms (witnesses pick
        // *real* entities to report).
        let mal = [
            atoms.mal_intent,
            atoms.mal_comp,
            atoms.mal_filter,
            atoms.mal_app,
        ];
        let mut witnesses = Vec::new();
        for (dname, mult, domain) in &self.ast.decls {
            let domain_rel = problem
                .relation_by_name(domain)
                .expect("vocabulary validated at parse time");
            let decl = problem.decl(domain_rel);
            if decl.arity() != 1 {
                // Parse-time vocabulary check admits binary fields as
                // domains; reject here with an empty synthesis rather
                // than a panic.
                return Ok(Synthesis::default());
            }
            let mut upper = TupleSet::new(1);
            for t in decl.upper().iter() {
                if !mal.contains(&t.atoms()[0]) {
                    upper.insert(t.clone());
                }
            }
            if upper.is_empty() {
                return Ok(Synthesis::default());
            }
            let w = problem.relation(RelationDecl::free(format!("W_{dname}"), upper));
            let we = Expr::relation(w);
            match mult {
                Mult::One => problem.fact(we.one()),
                Mult::Some => problem.fact(we.some()),
                Mult::Lone => problem.fact(we.lone()),
                Mult::Set => {}
            }
            witnesses.push((dname.clone(), w));
        }
        // Resolve all facts against the immutable encoding first, then
        // install them.
        let resolved: Vec<Formula> = {
            let resolver = Resolver {
                atoms,
                problem: &problem,
                witnesses: witnesses.clone(),
            };
            self.ast
                .facts
                .iter()
                .map(|f| resolver.resolve_f(f))
                .collect()
        };
        for f in resolved {
            problem.fact(f);
        }
        let mut finder = problem.model_finder_from(ctx.base.base(), ctx.options)?;
        let mut exploits: Vec<Exploit> = Vec::new();
        while exploits.len() < ctx.limit {
            let Some(instance) = finder.next_minimal_model() else {
                break;
            };
            let mut bindings = Vec::new();
            let mut guarded_app = String::new();
            let mut guarded_component = String::new();
            for (dname, w) in &witnesses {
                for t in instance.tuples(*w).iter() {
                    let (desc, comp) = describe_atom(atoms, apps, t.atoms()[0]);
                    if let Some((pkg, class)) = comp {
                        if guarded_component.is_empty() {
                            guarded_app = pkg;
                            guarded_component = class;
                        }
                    }
                    bindings.push((dname.clone(), desc));
                }
            }
            let e = Exploit::Custom {
                name: self.ast.name.clone(),
                bindings,
                guarded_app,
                guarded_component,
            };
            if !exploits.contains(&e) {
                exploits.push(e);
            }
        }
        Ok(Synthesis {
            exploits,
            construction: finder.construction_time(),
            solving: finder.solve_time(),
            primary_vars: finder.num_primary_vars(),
            cnf_clauses: finder.cnf_clauses(),
            shared_base: finder.used_shared_base(),
            solver: finder.solver_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use crate::vulns::ComponentLaunchSignature;
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    /// The paper's Listing 5 as a textual spec.
    const SERVICE_LAUNCH: &str = r"
        vuln GeneratedServiceLaunch {
            launched: one Component
        } {
            launched in exported
            launched in Activity + Service
            launched in MalIntent.canReceive
            some launched.pathSource & IccRes
            some MalIntent.extras
        }
    ";

    fn motivating_bundle() -> Vec<AppModel> {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut app2 = app("com.messenger", vec![ms]);
        app2.uses_permissions.insert(perm::SEND_SMS.into());
        vec![app("com.nav", vec![lf, rf]), app2]
    }

    #[test]
    fn parses_the_listing_5_spec() {
        let sig = TextualSignature::parse(SERVICE_LAUNCH).expect("parses");
        assert_eq!(sig.spec_name(), "GeneratedServiceLaunch");
    }

    #[test]
    fn textual_listing_5_matches_the_builtin_plugin() {
        let apps = motivating_bundle();
        let textual = TextualSignature::parse(SERVICE_LAUNCH)
            .expect("parses")
            .synthesize(&apps, 16)
            .expect("well-typed");
        let builtin = ComponentLaunchSignature
            .synthesize(&apps, 16)
            .expect("well-typed");
        let textual_targets: BTreeSet<&str> = textual
            .exploits
            .iter()
            .map(|e| e.guarded_component())
            .collect();
        let builtin_targets: BTreeSet<&str> = builtin
            .exploits
            .iter()
            .map(|e| e.guarded_component())
            .collect();
        assert_eq!(
            textual_targets, builtin_targets,
            "the textual spec is semantically the built-in Listing 5"
        );
        match &textual.exploits[0] {
            Exploit::Custom { name, bindings, .. } => {
                assert_eq!(name, "GeneratedServiceLaunch");
                assert!(bindings
                    .iter()
                    .any(|(d, v)| d == "launched" && v.contains("LMessageSender;")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_escalation_style_spec_with_two_witnesses() {
        // An unguarded dangerous capability, written from scratch.
        let src = r"
            vuln UnguardedCapability {
                victim: one Component
                cap: one Permission
            } {
                victim in exported
                cap in victim.usesPerm
                no cap & victim.enforces
                victim in MalIntent.canReceive
            }
        ";
        let sig = TextualSignature::parse(src).expect("parses");
        let syn = sig.synthesize(&motivating_bundle(), 8).expect("well-typed");
        assert!(syn.exploits.iter().any(|e| matches!(
            e,
            Exploit::Custom { bindings, .. }
                if bindings.iter().any(|(d, v)| d == "cap" && v == perm::SEND_SMS)
        )));
    }

    #[test]
    fn unsatisfiable_spec_yields_nothing() {
        let src = r"
            vuln Impossible {
                c: one Component
            } {
                c in exported
                no c & exported
            }
        ";
        let sig = TextualSignature::parse(src).expect("parses");
        let syn = sig.synthesize(&motivating_bundle(), 8).expect("well-typed");
        assert!(syn.exploits.is_empty());
    }

    #[test]
    fn syntax_and_vocabulary_errors_are_reported() {
        for (src, needle) in [
            ("vuln {", "identifier"),
            ("oops X {} {}", "must start with 'vuln"),
            ("vuln X { w: one Nonexistent } {}", "unknown witness domain"),
            (
                "vuln X { w: one Component } { w in nonsense }",
                "unknown identifier",
            ),
            (
                "vuln X { w: one Component } { w exported }",
                "expected 'in' or '='",
            ),
            (
                "vuln X { w: one Component } { some w } trailing",
                "trailing",
            ),
        ] {
            let err = TextualSignature::parse(src).expect_err(src);
            assert!(
                err.message.contains(needle),
                "{src}: expected '{needle}' in '{}'",
                err.message
            );
        }
    }

    #[test]
    fn errors_carry_exact_line_and_column() {
        // Unknown fact identifier: `nonsense` starts at line 2, column 8.
        let err = TextualSignature::parse("vuln X { w: one Component }\n{ w in nonsense }")
            .expect_err("unknown identifier");
        assert_eq!((err.line, err.column), (2, 8), "{err}");
        assert!(err.message.contains("unknown identifier"));
        assert_eq!(
            err.to_string(),
            "spec error at line 2, column 8: unknown identifier 'nonsense'"
        );
        // Unknown witness domain: `Nonexistent` starts at line 2, column 10.
        let err = TextualSignature::parse("vuln X {\n  w: one Nonexistent\n} {}")
            .expect_err("unknown domain");
        assert_eq!((err.line, err.column), (2, 10), "{err}");
        // Lexer errors carry the bad character's position too.
        let err = TextualSignature::parse("vuln X { w: one Component } {\n   w in $bad\n}")
            .expect_err("bad character");
        assert_eq!((err.line, err.column), (2, 9), "{err}");
        // Unknown footprint capability: `bogus` at line 2, column 13.
        let err =
            TextualSignature::parse("vuln X { w: one Component } { some w }\nfootprint { bogus }")
                .expect_err("unknown capability");
        assert_eq!((err.line, err.column), (2, 13), "{err}");
        assert!(err.message.contains("unknown footprint capability"));
    }

    #[test]
    fn footprint_annotations_slice_without_changing_results() {
        use crate::signature::SignatureRegistry;
        use crate::{Separ, VulnKind};
        let annotated = format!("{SERVICE_LAUNCH} footprint {{ launchable_icc_entry }}");
        let sig = TextualSignature::parse(&annotated).expect("parses");
        let fp = sig.footprint();
        assert!(!fp.is_everything());
        assert!(fp
            .demands
            .contains(&separ_analysis::slicing::SliceDemand::LaunchableIccEntry));
        // Unannotated specs keep the conservative whole-bundle footprint.
        assert!(TextualSignature::parse(SERVICE_LAUNCH)
            .expect("parses")
            .footprint()
            .is_everything());
        // The annotation must not change what the pipeline synthesizes.
        let run = |spec: &str| {
            let mut registry = SignatureRegistry::empty();
            registry.register(Box::new(TextualSignature::parse(spec).expect("parses")));
            let report = Separ::with_registry(registry)
                .analyze_models(motivating_bundle())
                .expect("succeeds");
            report
                .exploits_of(VulnKind::Custom)
                .map(|e| format!("{e:?}"))
                .collect::<BTreeSet<String>>()
        };
        let sliced = run(&annotated);
        assert!(!sliced.is_empty());
        assert_eq!(sliced, run(SERVICE_LAUNCH));
    }

    #[test]
    fn operators_compose_in_specs() {
        // Exercise ~, ^, -, parentheses and 'not'/'or' in one formula.
        let src = r"
            vuln Weird {
                c: one Component
            } {
                c in (exported - Provider) and (some c.pathSink or not one c.app)
                c in MalIntent.canReceive
                some ^path.IccRes // nonsensical but well-formed
            }
        ";
        let sig = TextualSignature::parse(src);
        // ^path is ternary: parse succeeds, synthesis reports the logic
        // error rather than panicking.
        let sig = sig.expect("parses");
        let r = sig.synthesize(&motivating_bundle(), 4);
        assert!(r.is_err(), "ternary closure is ill-typed: {r:?}");
    }

    #[test]
    fn registered_textual_signature_flows_through_the_pipeline() {
        use crate::signature::SignatureRegistry;
        use crate::{Separ, VulnKind};
        let mut registry = SignatureRegistry::standard();
        registry.register(Box::new(
            TextualSignature::parse(SERVICE_LAUNCH).expect("parses"),
        ));
        let report = Separ::with_registry(registry)
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        let custom: Vec<_> = report.exploits_of(VulnKind::Custom).collect();
        assert!(!custom.is_empty());
        // And a policy was derived for the custom finding.
        assert!(report
            .policies
            .iter()
            .any(|p| p.vulnerability == "GeneratedServiceLaunch"));
    }
}
