//! Encoding app bundles into relational-logic problems.
//!
//! This is the composition step of the paper's ASE (Figure 3): the Android
//! framework meta-model (Listing 3) becomes typed, bounded relations; each
//! extracted app model (Listing 4) becomes exact tuple bounds; and one
//! *postulated malicious app* contributes free relations (its intent
//! filter's actions, its intent's target/extras/action) that the
//! constraint solver is free to configure — mimicking the adversary.
//!
//! Resolution between *known* intents and *known* components is
//! precomputed with the shared Android resolution rules and encoded as the
//! exact `canReceive` relation; everything involving the malicious app
//! stays symbolic, which keeps the SAT search focused on adversary
//! capabilities, exactly the synthesis question the paper asks.

use std::collections::BTreeMap;

use separ_analysis::model::AppModel;
use separ_android::api::IccMethod;
use separ_android::resolution;
use separ_android::types::Resource;
use separ_dex::manifest::ComponentKind;
use separ_logic::{
    Atom, Problem, RelationDecl, RelationId, TranslationBase, Tuple, TupleSet, Universe,
};

/// Index of a component within a bundle: `(app index, component index)`.
pub type CompIdx = (usize, usize);

/// Index of an intent entity: `(app index, component index, intent index)`.
pub type IntentIdx = (usize, usize, usize);

/// Atom registry mapping bundle entities to universe atoms and back.
#[derive(Debug)]
pub struct AtomRegistry {
    /// One atom per app.
    pub apps: Vec<Atom>,
    /// The postulated malicious app.
    pub mal_app: Atom,
    /// One atom per component.
    pub components: Vec<(CompIdx, Atom)>,
    /// The postulated malicious component.
    pub mal_comp: Atom,
    /// One atom per sent-intent entity.
    pub intents: Vec<(IntentIdx, Atom)>,
    /// The postulated malicious intent.
    pub mal_intent: Atom,
    /// The postulated malicious intent filter.
    pub mal_filter: Atom,
    /// Action atoms by name.
    pub actions: BTreeMap<String, Atom>,
    /// Resource atoms.
    pub resources: BTreeMap<Resource, Atom>,
    /// Permission atoms by name.
    pub permissions: BTreeMap<String, Atom>,
}

impl AtomRegistry {
    /// The component index an atom denotes, if it is a real component.
    pub fn component_of(&self, atom: Atom) -> Option<CompIdx> {
        self.components
            .iter()
            .find(|&&(_, a)| a == atom)
            .map(|&(i, _)| i)
    }

    /// The intent entity an atom denotes, if real.
    pub fn intent_of(&self, atom: Atom) -> Option<IntentIdx> {
        self.intents
            .iter()
            .find(|&&(_, a)| a == atom)
            .map(|&(i, _)| i)
    }

    /// The atom of a real component.
    pub fn atom_of_component(&self, idx: CompIdx) -> Option<Atom> {
        self.components
            .iter()
            .find(|&&(i, _)| i == idx)
            .map(|&(_, a)| a)
    }

    /// The action name an atom denotes.
    pub fn action_of(&self, atom: Atom) -> Option<&str> {
        self.actions
            .iter()
            .find(|&(_, &a)| a == atom)
            .map(|(n, _)| n.as_str())
    }

    /// The resource an atom denotes.
    pub fn resource_of(&self, atom: Atom) -> Option<Resource> {
        self.resources
            .iter()
            .find(|&(_, &a)| a == atom)
            .map(|(&r, _)| r)
    }

    /// The permission an atom denotes.
    pub fn permission_of(&self, atom: Atom) -> Option<&str> {
        self.permissions
            .iter()
            .find(|&(_, &a)| a == atom)
            .map(|(n, _)| n.as_str())
    }
}

/// Relation ids of the encoded meta-model.
#[derive(Debug, Clone, Copy)]
pub struct Relations {
    /// All component atoms (unary).
    pub component: RelationId,
    /// Installed (real) apps (unary).
    pub installed: RelationId,
    /// Exported components (unary).
    pub exported: RelationId,
    /// `Component -> Application`.
    pub cmp_app: RelationId,
    /// `Intent -> Component` (sender).
    pub sender: RelationId,
    /// `Intent -> Action`.
    pub intent_action: RelationId,
    /// `Intent -> Resource` (extras payload).
    pub extras: RelationId,
    /// `Intent -> Component`: who can receive it (exact for real intents,
    /// free for the malicious one).
    pub can_receive: RelationId,
    /// `IntentFilter(Mal) -> Action`: the malicious filter's actions.
    pub mal_filter_actions: RelationId,
    /// `Component -> Resource`: source ends of sensitive paths.
    pub path_source_of: RelationId,
    /// `Component -> Resource`: sink ends of sensitive paths.
    pub path_sink_of: RelationId,
    /// `Component -> Resource -> Resource`: full (source, sink) paths.
    pub path_of: RelationId,
    /// `Component -> Permission`: enforced (manifest or reachable dynamic
    /// check).
    pub enforces: RelationId,
    /// `Component -> Permission`: exercised by reachable API calls.
    pub uses_perm: RelationId,
    /// `Application -> Permission`: granted at install.
    pub app_perms: RelationId,
    /// Unary: resources that are sensitive sources (excl. ICC).
    pub source_res: RelationId,
    /// Unary: resources that are real sinks (excl. ICC).
    pub sink_res: RelationId,
    /// Unary: the ICC resource singleton.
    pub icc_res: RelationId,
    /// Unary: real intents that can be hijacked (implicit, broadcast-style
    /// delivery).
    pub hijackable: RelationId,
    /// Unary: real Activity components.
    pub activities: RelationId,
    /// Unary: real Service components.
    pub services: RelationId,
    /// Unary: real BroadcastReceiver components.
    pub receivers: RelationId,
    /// Unary: real ContentProvider components.
    pub providers: RelationId,
    /// `Component -> Action`: actions accepted by a component's static
    /// filters.
    pub comp_filter_actions: RelationId,
    /// Unary: actions that are protected system broadcasts.
    pub protected_actions: RelationId,
}

/// The encoded bundle: problem + registries.
#[derive(Debug)]
pub struct Encoded {
    /// The relational problem (facts may be added by signatures).
    pub problem: Problem,
    /// Atom registry.
    pub atoms: AtomRegistry,
    /// Relation registry.
    pub rels: Relations,
}

/// A bundle encoding paired with its reusable translation base.
///
/// The bundle-common part of every signature's problem — universe, bounds
/// and the leaf matrices they induce — is identical across signatures, so
/// the pipeline builds it once per bundle and every signature clones the
/// [`Problem`] and translates from the shared [`TranslationBase`] instead
/// of redoing the leaf translation. Witness relations a signature appends
/// afterwards translate lazily on top of the shared prefix.
#[derive(Debug)]
pub struct BundleBase {
    encoded: Encoded,
    base: TranslationBase,
}

impl BundleBase {
    /// Encodes `apps` and builds the shared translation base.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new(apps: &[AppModel]) -> BundleBase {
        let encoded = encode_bundle(apps);
        let base = encoded.problem.translation_base();
        BundleBase { encoded, base }
    }

    /// Encodes `apps`, lets `tighten` shrink relation upper bounds via
    /// [`Problem::tighten_upper`] (the relevance-slicing hook: drop free
    /// rows the caller knows no fact can force true), then builds the
    /// translation base over the tightened bounds. The tightening must
    /// run *before* base construction — leaf matrices allocate one
    /// circuit input per free tuple, so bounds shrunk afterwards would
    /// not reduce the CNF.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new_with(
        apps: &[AppModel],
        tighten: impl FnOnce(&mut Problem, &AtomRegistry, &Relations),
    ) -> BundleBase {
        let mut encoded = encode_bundle(apps);
        tighten(&mut encoded.problem, &encoded.atoms, &encoded.rels);
        let base = encoded.problem.translation_base();
        BundleBase { encoded, base }
    }

    /// A fresh copy of the encoded problem for one signature to extend
    /// with witness relations and facts.
    pub fn problem(&self) -> Problem {
        self.encoded.problem.clone()
    }

    /// The bundle's atom registry.
    pub fn atoms(&self) -> &AtomRegistry {
        &self.encoded.atoms
    }

    /// The bundle's relation registry.
    pub fn rels(&self) -> &Relations {
        &self.encoded.rels
    }

    /// The shared, fact-independent translation of the bundle relations.
    pub fn base(&self) -> &TranslationBase {
        &self.base
    }
}

/// The component kind an ICC method delivers to.
fn receiving_kind(via: IccMethod) -> Option<ComponentKind> {
    match via {
        IccMethod::StartActivity | IccMethod::StartActivityForResult => {
            Some(ComponentKind::Activity)
        }
        IccMethod::StartService | IccMethod::BindService => Some(ComponentKind::Service),
        IccMethod::SendBroadcast => Some(ComponentKind::Receiver),
        IccMethod::ProviderQuery
        | IccMethod::ProviderInsert
        | IccMethod::ProviderUpdate
        | IccMethod::ProviderDelete => Some(ComponentKind::Provider),
        IccMethod::SetResult => None,
    }
}

/// Encoding tunables.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// Restrict the malicious intent's possible receivers to *exported*
    /// components. The paper notes that eliminating private components
    /// from inter-app analysis contributes to scalability; turning this
    /// off is the ablation (results are unchanged because every shipped
    /// signature independently requires exported victims, but the SAT
    /// problem grows).
    pub restrict_mal_to_exported: bool,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            restrict_mal_to_exported: true,
        }
    }
}

/// Encodes a bundle of extracted app models with default options.
///
/// # Panics
///
/// Panics if `apps` is empty.
pub fn encode_bundle(apps: &[AppModel]) -> Encoded {
    encode_bundle_with(apps, EncodeOptions::default())
}

/// Encodes a bundle with explicit options.
///
/// # Panics
///
/// Panics if `apps` is empty.
pub fn encode_bundle_with(apps: &[AppModel], options: EncodeOptions) -> Encoded {
    assert!(!apps.is_empty(), "cannot encode an empty bundle");
    let mut universe = Universe::new();
    // --- atoms ---
    let app_atoms: Vec<Atom> = apps
        .iter()
        .enumerate()
        .map(|(i, a)| universe.add(format!("App{}#{}", i, a.package)))
        .collect();
    let mal_app = universe.add("MalApp");
    let mut component_atoms = Vec::new();
    let mut intent_atoms = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (ci, c) in app.components.iter().enumerate() {
            component_atoms.push((
                (ai, ci),
                universe.add(format!("Cmp{}_{}#{}", ai, ci, c.class)),
            ));
            for (ii, _) in c.sent_intents.iter().enumerate() {
                intent_atoms.push((
                    (ai, ci, ii),
                    universe.add(format!("Intent{}_{}_{}", ai, ci, ii)),
                ));
            }
        }
    }
    let mal_comp = universe.add("MalComp");
    let mal_intent = universe.add("MalIntent");
    let mal_filter = universe.add("MalFilter");

    let mut actions: BTreeMap<String, Atom> = BTreeMap::new();
    for app in apps {
        for c in &app.components {
            for f in &c.filters {
                for a in &f.actions {
                    actions
                        .entry(a.clone())
                        .or_insert_with(|| universe.add(format!("Act#{a}")));
                }
            }
            for i in &c.sent_intents {
                if let Some(a) = &i.action {
                    actions
                        .entry(a.clone())
                        .or_insert_with(|| universe.add(format!("Act#{a}")));
                }
            }
        }
    }
    let mut resources: BTreeMap<Resource, Atom> = BTreeMap::new();
    for r in Resource::ALL {
        resources.insert(r, universe.add(format!("Res#{}", r.name())));
    }
    let mut permissions: BTreeMap<String, Atom> = BTreeMap::new();
    for app in apps {
        for p in app
            .uses_permissions
            .iter()
            .chain(app.defines_permissions.iter())
        {
            permissions
                .entry(p.clone())
                .or_insert_with(|| universe.add(format!("Perm#{p}")));
        }
        for c in &app.components {
            for p in c
                .used_permissions
                .iter()
                .chain(c.dynamic_checks.iter())
                .chain(c.enforced_permission.iter())
            {
                permissions
                    .entry(p.clone())
                    .or_insert_with(|| universe.add(format!("Perm#{p}")));
            }
        }
    }

    let mut problem = Problem::new(universe);

    // --- helper sets ---
    let all_components: Vec<Atom> = component_atoms.iter().map(|&(_, a)| a).collect();
    let comp_unary = {
        let mut ts = TupleSet::unary_from(all_components.iter().copied());
        ts.insert(Tuple::unary(mal_comp));
        ts
    };

    // class descriptor -> component atoms (there may be same-class
    // components in different apps).
    let mut by_class: BTreeMap<&str, Vec<(CompIdx, Atom)>> = BTreeMap::new();
    for &((ai, ci), atom) in &component_atoms {
        by_class
            .entry(apps[ai].components[ci].class.as_str())
            .or_default()
            .push(((ai, ci), atom));
    }

    // --- relations ---
    let component = problem.relation(RelationDecl::exact("Component", comp_unary));
    let installed = problem.relation(RelationDecl::exact(
        "installed",
        TupleSet::unary_from(app_atoms.iter().copied()),
    ));
    let exported = {
        let mut ts = TupleSet::new(1);
        for &((ai, ci), atom) in &component_atoms {
            if apps[ai].components[ci].exported {
                ts.insert(Tuple::unary(atom));
            }
        }
        ts.insert(Tuple::unary(mal_comp));
        problem.relation(RelationDecl::exact("exported", ts))
    };
    let cmp_app = {
        let mut ts = TupleSet::new(2);
        for &((ai, _), atom) in &component_atoms {
            ts.insert(Tuple::binary(atom, app_atoms[ai]));
        }
        ts.insert(Tuple::binary(mal_comp, mal_app));
        problem.relation(RelationDecl::exact("app", ts))
    };
    let sender = {
        let mut ts = TupleSet::new(2);
        for &((ai, ci, _), atom) in &intent_atoms {
            let comp_atom = component_atoms
                .iter()
                .find(|&&(idx, _)| idx == (ai, ci))
                .map(|&(_, a)| a)
                .expect("component of intent exists");
            ts.insert(Tuple::binary(atom, comp_atom));
        }
        ts.insert(Tuple::binary(mal_intent, mal_comp));
        problem.relation(RelationDecl::exact("sender", ts))
    };
    let intent_action = {
        let mut lower = TupleSet::new(2);
        let mut upper = TupleSet::new(2);
        for &((ai, ci, ii), atom) in &intent_atoms {
            if let Some(a) = &apps[ai].components[ci].sent_intents[ii].action {
                let t = Tuple::binary(atom, actions[a]);
                lower.insert(t.clone());
                upper.insert(t);
            }
        }
        // The malicious intent's action is the solver's choice.
        for &a in actions.values() {
            upper.insert(Tuple::binary(mal_intent, a));
        }
        problem.relation(RelationDecl::new("action", lower, upper))
    };
    let extras = {
        let mut lower = TupleSet::new(2);
        let mut upper = TupleSet::new(2);
        for &((ai, ci, ii), atom) in &intent_atoms {
            for &t in &apps[ai].components[ci].sent_intents[ii].extra_taints {
                let tup = Tuple::binary(atom, resources[&t]);
                lower.insert(tup.clone());
                upper.insert(tup);
            }
        }
        for &r in resources.values() {
            upper.insert(Tuple::binary(mal_intent, r));
        }
        problem.relation(RelationDecl::new("extras", lower, upper))
    };

    // Precompute real-intent resolution.
    let can_receive = {
        let mut lower = TupleSet::new(2);
        for &((ai, ci, ii), iatom) in &intent_atoms {
            let intent = &apps[ai].components[ci].sent_intents[ii];
            if intent.is_passive {
                for target_class in &intent.resolved_targets {
                    if let Some(cands) = by_class.get(target_class.as_str()) {
                        for &(_, catom) in cands {
                            lower.insert(Tuple::binary(iatom, catom));
                        }
                    }
                }
                continue;
            }
            let Some(kind) = receiving_kind(intent.via) else {
                continue;
            };
            if let Some(target_class) = &intent.explicit_target {
                if let Some(cands) = by_class.get(target_class.as_str()) {
                    for &((tai, tci), catom) in cands {
                        let target = &apps[tai].components[tci];
                        if target.kind == kind && (tai == ai || target.exported) {
                            lower.insert(Tuple::binary(iatom, catom));
                        }
                    }
                }
            } else {
                let data = intent.as_intent_data();
                for &((tai, tci), catom) in &component_atoms {
                    let target = &apps[tai].components[tci];
                    if target.kind != kind {
                        continue;
                    }
                    if tai != ai && !target.exported {
                        continue;
                    }
                    if resolution::any_filter_matches(&data, &target.filters) {
                        lower.insert(Tuple::binary(iatom, catom));
                    }
                }
            }
        }
        let mut upper = lower.clone();
        // The malicious intent may be aimed at any real component — or,
        // under the paper's private-component elimination, only exported
        // ones.
        for &((ai, ci), a) in &component_atoms {
            if options.restrict_mal_to_exported && !apps[ai].components[ci].exported {
                continue;
            }
            upper.insert(Tuple::binary(mal_intent, a));
        }
        problem.relation(RelationDecl::new("canReceive", lower, upper))
    };
    let mal_filter_actions = {
        let upper = TupleSet::binary_from(actions.values().map(|&a| (mal_filter, a)));
        problem.relation(RelationDecl::free("malFilterActions", upper))
    };

    // Paths, flattened to (component, source resource) / (component, sink
    // resource) plus the full ternary relation.
    let (path_source_of, path_sink_of, path_of) = {
        let mut src = TupleSet::new(2);
        let mut snk = TupleSet::new(2);
        let mut full = TupleSet::new(3);
        for &((ai, ci), catom) in &component_atoms {
            for p in &apps[ai].components[ci].paths {
                src.insert(Tuple::binary(catom, resources[&p.source]));
                snk.insert(Tuple::binary(catom, resources[&p.sink]));
                full.insert(Tuple::ternary(
                    catom,
                    resources[&p.source],
                    resources[&p.sink],
                ));
            }
        }
        (
            problem.relation(RelationDecl::exact("pathSource", src)),
            problem.relation(RelationDecl::exact("pathSink", snk)),
            problem.relation(RelationDecl::exact("path", full)),
        )
    };
    let enforces = {
        let mut ts = TupleSet::new(2);
        for &((ai, ci), catom) in &component_atoms {
            let c = &apps[ai].components[ci];
            for p in c.enforced_permission.iter().chain(c.dynamic_checks.iter()) {
                ts.insert(Tuple::binary(catom, permissions[p]));
            }
        }
        problem.relation(RelationDecl::exact("enforces", ts))
    };
    let uses_perm = {
        let mut ts = TupleSet::new(2);
        for &((ai, ci), catom) in &component_atoms {
            for p in &apps[ai].components[ci].used_permissions {
                if let Some(&pa) = permissions.get(p) {
                    ts.insert(Tuple::binary(catom, pa));
                }
            }
        }
        problem.relation(RelationDecl::exact("usesPerm", ts))
    };
    let app_perms = {
        let mut ts = TupleSet::new(2);
        for (ai, app) in apps.iter().enumerate() {
            for p in &app.uses_permissions {
                if let Some(&pa) = permissions.get(p) {
                    ts.insert(Tuple::binary(app_atoms[ai], pa));
                }
            }
        }
        problem.relation(RelationDecl::exact("appPerms", ts))
    };
    let source_res = problem.relation(RelationDecl::exact(
        "SourceRes",
        TupleSet::unary_from(
            Resource::ALL
                .into_iter()
                .filter(|r| r.is_source() && *r != Resource::Icc)
                .map(|r| resources[&r]),
        ),
    ));
    let sink_res = problem.relation(RelationDecl::exact(
        "SinkRes",
        TupleSet::unary_from(
            Resource::ALL
                .into_iter()
                .filter(|r| r.is_sink() && *r != Resource::Icc)
                .map(|r| resources[&r]),
        ),
    ));
    let icc_res = problem.relation(RelationDecl::exact(
        "IccRes",
        TupleSet::unary_from([resources[&Resource::Icc]]),
    ));
    let hijackable = {
        let mut ts = TupleSet::new(1);
        for &((ai, ci, ii), atom) in &intent_atoms {
            let intent = &apps[ai].components[ci].sent_intents[ii];
            let implicit_send = intent.is_implicit()
                && !intent.is_passive
                && matches!(
                    intent.via,
                    IccMethod::StartActivity
                        | IccMethod::StartActivityForResult
                        | IccMethod::StartService
                        | IccMethod::SendBroadcast
                );
            if implicit_send {
                ts.insert(Tuple::unary(atom));
            }
        }
        problem.relation(RelationDecl::exact("hijackable", ts))
    };

    let kind_rel = |kind: ComponentKind, name: &str, problem: &mut Problem| {
        let mut ts = TupleSet::new(1);
        for &((ai, ci), catom) in &component_atoms {
            if apps[ai].components[ci].kind == kind {
                ts.insert(Tuple::unary(catom));
            }
        }
        problem.relation(RelationDecl::exact(name, ts))
    };
    let activities = kind_rel(ComponentKind::Activity, "Activity", &mut problem);
    let services = kind_rel(ComponentKind::Service, "Service", &mut problem);
    let receivers = kind_rel(ComponentKind::Receiver, "Receiver", &mut problem);
    let providers = kind_rel(ComponentKind::Provider, "Provider", &mut problem);

    // Name-addressable domain relations for textual signatures (the spec
    // DSL resolves identifiers through `Problem::relation_by_name`).
    problem.relation(RelationDecl::exact(
        "Application",
        TupleSet::unary_from(app_atoms.iter().copied()),
    ));
    problem.relation(RelationDecl::exact(
        "Intent",
        TupleSet::unary_from(intent_atoms.iter().map(|&(_, a)| a)),
    ));
    problem.relation(RelationDecl::exact(
        "Action",
        TupleSet::unary_from(actions.values().copied()),
    ));
    problem.relation(RelationDecl::exact(
        "Permission",
        TupleSet::unary_from(permissions.values().copied()),
    ));
    problem.relation(RelationDecl::exact(
        "Resource",
        TupleSet::unary_from(resources.values().copied()),
    ));
    let comp_filter_actions = {
        let mut ts = TupleSet::new(2);
        for &((ai, ci), catom) in &component_atoms {
            for f in &apps[ai].components[ci].filters {
                for a in &f.actions {
                    if let Some(&aatom) = actions.get(a) {
                        ts.insert(Tuple::binary(catom, aatom));
                    }
                }
            }
        }
        problem.relation(RelationDecl::exact("filterActions", ts))
    };
    let protected_actions = {
        let mut ts = TupleSet::new(1);
        for (name, &atom) in &actions {
            if separ_android::types::is_protected_broadcast(name) {
                ts.insert(Tuple::unary(atom));
            }
        }
        problem.relation(RelationDecl::exact("ProtectedAction", ts))
    };

    Encoded {
        problem,
        atoms: AtomRegistry {
            apps: app_atoms,
            mal_app,
            components: component_atoms,
            mal_comp,
            intents: intent_atoms,
            mal_intent,
            mal_filter,
            actions,
            resources,
            permissions,
        },
        rels: Relations {
            component,
            installed,
            exported,
            cmp_app,
            sender,
            intent_action,
            extras,
            can_receive,
            mal_filter_actions,
            path_source_of,
            path_sink_of,
            path_of,
            enforces,
            uses_perm,
            app_perms,
            source_res,
            sink_res,
            icc_res,
            hijackable,
            activities,
            services,
            receivers,
            providers,
            comp_filter_actions,
            protected_actions,
        },
    }
}

/// Hand-construction helpers for app models, shared by the crate's tests.
#[cfg(test)]
pub(crate) mod tests_support {
    use std::collections::BTreeSet;

    use separ_analysis::model::{AppModel, ComponentModel, ExtractionStats, SentIntentModel};
    use separ_android::api::IccMethod;
    use separ_android::types::Resource;
    use separ_dex::manifest::ComponentKind;

    /// A sent-intent entity.
    pub fn sent(action: Option<&str>, via: IccMethod, taints: &[Resource]) -> SentIntentModel {
        SentIntentModel {
            via,
            action: action.map(String::from),
            categories: BTreeSet::new(),
            data_type: None,
            data_scheme: None,
            explicit_target: None,
            extra_keys: BTreeSet::new(),
            extra_taints: taints.iter().copied().collect(),
            requests_result: via.requests_result(),
            is_passive: via == IccMethod::SetResult,
            resolved_targets: BTreeSet::new(),
        }
    }

    /// A bare component model.
    pub fn comp(class: &str, kind: ComponentKind) -> ComponentModel {
        ComponentModel {
            class: class.into(),
            kind,
            exported: false,
            filters: vec![],
            enforced_permission: None,
            dynamic_checks: BTreeSet::new(),
            paths: BTreeSet::new(),
            sent_intents: vec![],
            used_permissions: BTreeSet::new(),
            registers_dynamically: false,
        }
    }

    /// A bare app model.
    pub fn app(package: &str, components: Vec<ComponentModel>) -> AppModel {
        AppModel {
            package: package.into(),
            components,
            uses_permissions: BTreeSet::new(),
            defines_permissions: BTreeSet::new(),
            diagnostics: Vec::new(),
            stats: ExtractionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::{app, comp, sent};
    use super::*;
    use separ_android::types::FlowPath;
    use separ_dex::manifest::IntentFilterDecl;

    /// Two apps mirroring the motivating example shapes.
    fn nav_and_messenger() -> Vec<AppModel> {
        let mut sender_cmp = comp("LLocationFinder;", ComponentKind::Service);
        sender_cmp
            .paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        sender_cmp.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut route = comp("LRouteFinder;", ComponentKind::Service);
        route
            .filters
            .push(IntentFilterDecl::for_actions(["showLoc"]));
        route.exported = true;

        let mut receiver_cmp = comp("LMessageSender;", ComponentKind::Service);
        receiver_cmp.exported = true;
        receiver_cmp
            .paths
            .insert(FlowPath::new(Resource::Icc, Resource::Sms));
        receiver_cmp
            .used_permissions
            .insert(separ_android::types::perm::SEND_SMS.to_string());

        let mut app2 = app("com.messenger", vec![receiver_cmp]);
        app2.uses_permissions
            .insert(separ_android::types::perm::SEND_SMS.to_string());
        vec![app("com.nav", vec![sender_cmp, route]), app2]
    }

    #[test]
    fn encoding_precomputes_real_resolution() {
        let apps = nav_and_messenger();
        let enc = encode_bundle(&apps);
        // The showLoc intent can be received by RouteFinder (matching
        // filter, same app).
        let intent_atom = enc.atoms.intents[0].1;
        let route_atom = enc.atoms.atom_of_component((0, 1)).expect("route");
        let decl = enc.problem.decl(enc.rels.can_receive);
        assert!(decl
            .lower()
            .contains(&Tuple::binary(intent_atom, route_atom)));
        // And the malicious intent may reach any real component.
        let msg_atom = enc.atoms.atom_of_component((1, 0)).expect("messenger");
        assert!(decl
            .upper()
            .contains(&Tuple::binary(enc.atoms.mal_intent, msg_atom)));
        assert!(!decl
            .lower()
            .contains(&Tuple::binary(enc.atoms.mal_intent, msg_atom)));
    }

    #[test]
    fn hijackable_marks_implicit_sends_only() {
        let apps = nav_and_messenger();
        let enc = encode_bundle(&apps);
        let decl = enc.problem.decl(enc.rels.hijackable);
        assert_eq!(decl.lower().len(), 1, "only the showLoc implicit intent");
    }

    #[test]
    fn mal_relations_are_free() {
        let apps = nav_and_messenger();
        let enc = encode_bundle(&apps);
        let mfa = enc.problem.decl(enc.rels.mal_filter_actions);
        assert!(mfa.lower().is_empty());
        assert_eq!(mfa.upper().len(), 1, "one known action: showLoc");
        let extras = enc.problem.decl(enc.rels.extras);
        // Mal intent may carry any of the 19 resources.
        let mal_rows = extras
            .upper()
            .iter()
            .filter(|t| t.atoms()[0] == enc.atoms.mal_intent)
            .count();
        assert_eq!(mal_rows, Resource::ALL.len());
    }

    #[test]
    fn registry_lookups_round_trip() {
        let apps = nav_and_messenger();
        let enc = encode_bundle(&apps);
        let (idx, atom) = enc.atoms.components[0];
        assert_eq!(enc.atoms.component_of(atom), Some(idx));
        assert_eq!(enc.atoms.atom_of_component(idx), Some(atom));
        let (&res, &ratom) = enc.atoms.resources.iter().next().expect("resources");
        assert_eq!(enc.atoms.resource_of(ratom), Some(res));
        let (aname, &aatom) = enc.atoms.actions.iter().next().expect("actions");
        assert_eq!(enc.atoms.action_of(aatom), Some(aname.as_str()));
    }

    #[test]
    fn cross_app_explicit_intents_respect_export_rules() {
        // Explicit intent to a non-exported component in another app must
        // not resolve.
        let mut a = comp("LSender;", ComponentKind::Activity);
        let mut i = sent(None, IccMethod::StartService, &[]);
        i.explicit_target = Some("LPrivate;".into());
        a.sent_intents.push(i);
        let private = comp("LPrivate;", ComponentKind::Service); // not exported
        let apps = vec![app("a", vec![a]), app("b", vec![private])];
        let enc = encode_bundle(&apps);
        assert!(enc.problem.decl(enc.rels.can_receive).lower().is_empty());
    }
}
