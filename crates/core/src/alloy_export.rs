//! Rendering extracted app models as Alloy modules.
//!
//! The paper's AME emits one Alloy module per app (Listing 4) against the
//! `androidDeclaration` meta-model (Listing 3). This module reproduces
//! that surface: given extracted [`AppModel`]s it prints the equivalent
//! Alloy text, which is useful for eyeballing what the analyzer believes
//! about an app and for diffing models across tool versions.

use std::fmt::Write;

use separ_analysis::model::{AppModel, ComponentModel, SentIntentModel};
use separ_android::types::Resource;

/// Renders the fixed framework meta-model (the paper's Listing 3 core).
pub fn framework_module() -> String {
    let mut out = String::new();
    out.push_str("module androidDeclaration\n\n");
    out.push_str("abstract sig Application {\n\tcmps: set Component\n}\n");
    out.push_str("abstract sig Component {\n");
    out.push_str("\tapp: one Application,\n");
    out.push_str("\tintentFilters: set IntentFilter,\n");
    out.push_str("\tpermissions: set Permission,\n");
    out.push_str("\tpaths: set DetailedPath\n}\n");
    out.push_str("abstract sig Activity, Service, Receiver, Provider extends Component {}\n");
    out.push_str("abstract sig IntentFilter {\n");
    out.push_str("\tactions: some Action,\n");
    out.push_str("\tdataType: set DataType,\n");
    out.push_str("\tdataScheme: set DataScheme,\n");
    out.push_str("\tcategories: set Category\n}\n");
    out.push_str("fact IFandComponent {\n\tall i: IntentFilter | one i.~intentFilters\n}\n");
    out.push_str(
        "fact NoIFforProviders {\n\tno i: IntentFilter | i.~intentFilters in Provider\n}\n",
    );
    out.push_str("abstract sig Intent {\n");
    out.push_str("\tsender: one Component,\n");
    out.push_str("\treceiver: lone Component,\n");
    out.push_str("\taction: lone Action,\n");
    out.push_str("\tcategories: set Category,\n");
    out.push_str("\tdataType: lone DataType,\n");
    out.push_str("\tdataScheme: lone DataScheme,\n");
    out.push_str("\textra: set Resource\n}\n");
    out.push_str("abstract sig DetailedPath {\n\tsource: one Resource,\n\tsink: one Resource\n}\n");
    let _ = writeln!(
        out,
        "enum Resource {{ {} }}",
        Resource::ALL
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    out
}

/// Sanitizes an identifier for Alloy (`Lcom/app/Main;` → `com_app_Main`).
fn ident(descriptor: &str) -> String {
    descriptor
        .trim_start_matches('L')
        .trim_end_matches(';')
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn action_ident(action: &str) -> String {
    ident(action)
}

/// Renders one extracted app as an Alloy module (the Listing 4 analog).
pub fn app_module(app: &AppModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module app_{}", ident(&app.package));
    out.push_str("open androidDeclaration\n\n");
    let app_sig = format!("App_{}", ident(&app.package));
    let _ = writeln!(out, "one sig {app_sig} extends Application {{}}");
    if !app.uses_permissions.is_empty() {
        let perms: Vec<String> = app.uses_permissions.iter().map(|p| ident(p)).collect();
        let _ = writeln!(out, "// uses-permissions: {}", perms.join(", "));
    }
    out.push('\n');
    for c in &app.components {
        render_component(&mut out, &app_sig, c);
    }
    out
}

fn kind_sig(kind: separ_dex::ComponentKind) -> &'static str {
    match kind {
        separ_dex::ComponentKind::Activity => "Activity",
        separ_dex::ComponentKind::Service => "Service",
        separ_dex::ComponentKind::Receiver => "Receiver",
        separ_dex::ComponentKind::Provider => "Provider",
    }
}

fn render_component(out: &mut String, app_sig: &str, c: &ComponentModel) {
    let cname = ident(&c.class);
    let _ = writeln!(out, "one sig {cname} extends {} {{}} {{", kind_sig(c.kind));
    let _ = writeln!(out, "\tapp in {app_sig}");
    if c.filters.is_empty() {
        out.push_str("\tno intentFilters\n");
    } else {
        let names: Vec<String> = (0..c.filters.len())
            .map(|i| format!("{cname}_filter{i}"))
            .collect();
        let _ = writeln!(out, "\tintentFilters = {}", names.join(" + "));
    }
    match (&c.enforced_permission, c.dynamic_checks.is_empty()) {
        (None, true) => out.push_str("\tno permissions\n"),
        (enforced, _) => {
            let mut perms: Vec<String> = Vec::new();
            if let Some(p) = enforced {
                perms.push(ident(p));
            }
            perms.extend(c.dynamic_checks.iter().map(|p| ident(p)));
            let _ = writeln!(out, "\tpermissions = {}", perms.join(" + "));
        }
    }
    if c.paths.is_empty() {
        out.push_str("\tno paths\n");
    } else {
        let names: Vec<String> = (0..c.paths.len())
            .map(|i| format!("path{cname}{i}"))
            .collect();
        let _ = writeln!(out, "\tpaths = {}", names.join(" + "));
    }
    out.push_str("}\n");
    for (i, p) in c.paths.iter().enumerate() {
        let _ = writeln!(
            out,
            "one sig path{cname}{i} extends DetailedPath {{}} {{\n\tsource = {}\n\tsink = {}\n}}",
            p.source.name(),
            p.sink.name()
        );
    }
    for (i, f) in c.filters.iter().enumerate() {
        let _ = writeln!(
            out,
            "one sig {cname}_filter{i} extends IntentFilter {{}} {{"
        );
        let actions: Vec<String> = f.actions.iter().map(|a| action_ident(a)).collect();
        let _ = writeln!(out, "\tactions = {}", actions.join(" + "));
        if f.categories.is_empty() {
            out.push_str("\tno categories\n");
        } else {
            let cats: Vec<String> = f.categories.iter().map(|x| action_ident(x)).collect();
            let _ = writeln!(out, "\tcategories = {}", cats.join(" + "));
        }
        if f.data_types.is_empty() && f.data_schemes.is_empty() {
            out.push_str("\tno dataType\n\tno dataScheme\n");
        }
        out.push_str("}\n");
    }
    for (i, intent) in c.sent_intents.iter().enumerate() {
        render_intent(out, &cname, i, intent);
    }
    out.push('\n');
}

fn render_intent(out: &mut String, sender: &str, index: usize, intent: &SentIntentModel) {
    let _ = writeln!(
        out,
        "one sig Intent_{sender}_{index} extends Intent {{}} {{"
    );
    let _ = writeln!(out, "\tsender = {sender}");
    match &intent.explicit_target {
        Some(t) => {
            let _ = writeln!(out, "\treceiver = {}", ident(t));
        }
        None => out.push_str("\tno receiver\n"),
    }
    match &intent.action {
        Some(a) => {
            let _ = writeln!(out, "\taction = {}", action_ident(a));
        }
        None => out.push_str("\tno action\n"),
    }
    if intent.categories.is_empty() {
        out.push_str("\tno categories\n");
    } else {
        let cats: Vec<String> = intent.categories.iter().map(|x| action_ident(x)).collect();
        let _ = writeln!(out, "\tcategories = {}", cats.join(" + "));
    }
    if intent.extra_taints.is_empty() {
        out.push_str("\tno extra\n");
    } else {
        let extras: Vec<&str> = intent.extra_taints.iter().map(|r| r.name()).collect();
        let _ = writeln!(out, "\textra = {}", extras.join(" + "));
    }
    out.push_str("}\n");
}

/// Renders a whole bundle: framework module + one module per app.
pub fn bundle_modules(apps: &[AppModel]) -> String {
    let mut out = framework_module();
    for app in apps {
        out.push('\n');
        out.push_str(&app_module(app));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use separ_android::api::IccMethod;
    use separ_android::types::FlowPath;
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    fn listing_4a_model() -> AppModel {
        let mut lf = comp("Lcom/example/LocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut a = app("com.example.app1", vec![lf]);
        a.uses_permissions
            .insert(separ_android::types::perm::ACCESS_FINE_LOCATION.into());
        a
    }

    #[test]
    fn framework_module_contains_the_listing_3_facts() {
        let m = framework_module();
        assert!(m.contains("fact IFandComponent"));
        assert!(m.contains("fact NoIFforProviders"));
        assert!(m.contains("sender: one Component"));
        assert!(m.contains("receiver: lone Component"));
        assert!(m.contains("actions: some Action"));
    }

    #[test]
    fn app_module_mirrors_listing_4a() {
        let m = app_module(&listing_4a_model());
        assert!(m.contains("open androidDeclaration"));
        assert!(m.contains("one sig com_example_LocationFinder extends Service"));
        assert!(m.contains("no intentFilters"));
        assert!(m.contains("source = LOCATION"));
        assert!(m.contains("sink = ICC"));
        assert!(m.contains("action = showLoc"));
        assert!(m.contains("extra = LOCATION"));
        assert!(m.contains("no receiver"), "implicit intent");
    }

    #[test]
    fn filters_and_permissions_render() {
        let mut c = comp("Lx/Recv;", ComponentKind::Service);
        c.filters.push(IntentFilterDecl::for_actions(["go.NOW"]));
        c.enforced_permission = Some("android.permission.SEND_SMS".into());
        let m = app_module(&app("x", vec![c]));
        assert!(m.contains("intentFilters = x_Recv_filter0"));
        assert!(m.contains("actions = go_NOW"));
        assert!(m.contains("permissions = android_permission_SEND_SMS"));
    }

    #[test]
    fn bundle_rendering_concatenates_modules() {
        let apps = vec![listing_4a_model()];
        let m = bundle_modules(&apps);
        assert!(m.starts_with("module androidDeclaration"));
        assert!(m.contains("module app_com_example_app1"));
    }
}
