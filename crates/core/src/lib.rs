//! **separ-core** — the SEPAR analysis-and-synthesis engine (ASE).
//!
//! This crate is the paper's primary contribution: given a bundle of
//! extracted app models, it composes them with the Android framework
//! meta-model into a relational-logic problem ([`encode`]), synthesizes
//! concrete exploit scenarios by solving each vulnerability signature
//! ([`vulns`], [`signature`]) with Aluminum-style minimal-model
//! enumeration, and derives enforceable event-condition-action policies
//! from every scenario ([`policy`]). The [`pipeline`] module ties it all
//! together behind the [`Separ`] façade.
//!
//! The flow mirrors the paper's Figure 3: `M |= S_f ∧ S_a ∧ P` — the
//! framework spec, the app specs and the vulnerability property are
//! conjoined, and each satisfying (minimal) model *is* an exploit.
#![warn(missing_docs)]

pub mod alloy_export;
pub mod encode;
pub mod exec;
pub mod exploit;
pub mod footprint;
pub mod incremental;
pub mod pipeline;
pub mod policy;
pub mod policy_io;
pub mod signature;
pub mod spec;
pub mod vulns;

pub use encode::BundleBase;
pub use exec::Executor;
pub use exploit::{Exploit, VulnKind};
pub use footprint::{Footprint, MalReceivers, SignatureFootprint};
pub use incremental::{IncrementalSession, PolicyDelta, SessionOp};
pub use pipeline::{
    AnalyzeError, BundleStats, CountStats, Report, Separ, SeparConfig, SignatureStats,
};
pub use policy::{Condition, Policy, PolicyAction, PolicyEvent};
pub use separ_analysis::cache::{CacheOutcome, CacheStats, ModelCache};
pub use signature::{SignatureRegistry, Synthesis, SynthesisContext, VulnerabilitySignature};
pub use spec::TextualSignature;
