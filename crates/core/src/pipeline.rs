//! The SEPAR façade: bundle in, report out.
//!
//! Orchestrates the full ASE pipeline: passive-intent resolution across
//! the bundle (Algorithm 1), per-signature exploit synthesis, and ECA
//! policy derivation. Extraction fans out across the bundle and synthesis
//! fans out across the signature registry on the shared [`Executor`];
//! results merge in bundle/registry order, so the [`Report`] is identical
//! whatever [`SeparConfig::threads`] says (only the wall-clock timings in
//! [`BundleStats`] vary).
//!
//! Every timing field of [`BundleStats`] is **derived from the span
//! tree** recorded by the global [`separ_obs`] collector (one source of
//! truth for "where did the time go"; the same spans feed `--trace`
//! exports). When the collector is disabled — the default — the span
//! probes are no-ops and all timing fields are zero; the count-type
//! fields are always populated. Timing consumers (the CLI, the bench
//! crate) enable the collector first.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use separ_analysis::cache::{CacheOutcome, ModelCache};
use separ_analysis::extractor::{extract, extract_apk};
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_analysis::slicing::{self, AppSummary};
use separ_android::resolution;
use separ_dex::error::DexError;
use separ_dex::program::Apk;
use separ_logic::{Atom, CnfEncoding, FinderOptions, LogicError, Problem, SolverStats};

use crate::encode::{AtomRegistry, BundleBase, Relations};
use crate::exec::Executor;
use crate::exploit::{Exploit, VulnKind};
use crate::footprint::{Footprint, MalReceivers};
use crate::policy::{finalize_policies, policies_for_exploit, Policy};
use crate::signature::{SignatureRegistry, Synthesis, SynthesisContext, VulnerabilitySignature};
use crate::vulns::DEFAULT_SCENARIO_LIMIT;

/// Tunables for an analysis run.
#[derive(Debug, Clone, Copy)]
pub struct SeparConfig {
    /// Worker threads for extraction and per-signature synthesis;
    /// `0` means one per available hardware thread.
    pub threads: usize,
    /// Maximum minimal scenarios enumerated per signature.
    pub scenario_limit: usize,
    /// CNF encoding for circuit lowering. The polarity-aware default
    /// emits only the implication directions the root polarity requires;
    /// [`CnfEncoding::Tseitin`] keeps the full biconditional encoding.
    pub cnf_encoding: CnfEncoding,
    /// Conjoin lex-leader symmetry-breaking predicates over
    /// bound-interchangeable atoms. Off by default: breaking prunes
    /// symmetric models, so enumeration *counts* (not soundness) can
    /// differ from the unbroken reference the determinism suite pins.
    pub symmetry_breaking: bool,
    /// Signature-guided relevance slicing: encode each signature against
    /// only the apps its declared footprint can range over and drop the
    /// malicious free rows its facts never constrain, instead of
    /// translating every signature against the whole bundle. On by
    /// default; sound by construction (the differential suite
    /// `tests/slicing_equivalence.rs` proves exploits and policies are
    /// identical either way). `false` is the escape hatch (CLI
    /// `--no-slicing`) and the reference the suite compares against.
    pub slicing: bool,
}

impl Default for SeparConfig {
    fn default() -> SeparConfig {
        SeparConfig {
            threads: 0,
            scenario_limit: DEFAULT_SCENARIO_LIMIT,
            cnf_encoding: CnfEncoding::default(),
            symmetry_breaking: false,
            slicing: true,
        }
    }
}

impl SeparConfig {
    /// A strictly single-threaded configuration (the reference the
    /// determinism suite compares parallel runs against).
    pub fn serial() -> SeparConfig {
        SeparConfig {
            threads: 1,
            ..SeparConfig::default()
        }
    }

    /// The model-finder options this configuration induces.
    pub fn finder_options(&self) -> FinderOptions {
        FinderOptions {
            encoding: self.cnf_encoding,
            symmetry_breaking: self.symmetry_breaking,
        }
    }
}

/// One signature's contribution to a bundle analysis (per-stage timing
/// plus the count-type results).
#[derive(Debug, Clone)]
pub struct SignatureStats {
    /// The signature plugin's name.
    pub name: &'static str,
    /// Time translating relational logic to CNF.
    pub construction: Duration,
    /// Time inside the SAT solver.
    pub solving: Duration,
    /// Primary (free) boolean variables in the instance.
    pub primary_vars: usize,
    /// CNF clauses asserted into the SAT solver.
    pub cnf_clauses: usize,
    /// Whether the signature translated from the shared per-bundle base.
    pub shared_base: bool,
    /// SAT-solver counters accumulated across the enumeration.
    pub solver: SolverStats,
    /// Exploit scenarios the signature decoded.
    pub exploits: usize,
    /// Apps the relevance slice kept for this signature (equals the
    /// bundle size when slicing is off or the footprint keeps everything).
    pub slice_kept: usize,
    /// Apps the relevance slice excluded from this signature's universe.
    pub slice_dropped: usize,
}

/// Aggregate statistics for one bundle analysis (Table II's columns plus
/// per-stage timing). CPU-summed durations add the time every worker
/// spent; wall durations measure the stage end to end, so
/// `*_cpu / *_wall` approximates the realized parallel speedup.
#[derive(Debug, Clone, Default)]
pub struct BundleStats {
    /// Components across the bundle.
    pub components: usize,
    /// Intent entities across the bundle.
    pub intents: usize,
    /// Intent filters across the bundle.
    pub filters: usize,
    /// Verification diagnostics across the bundle (all severities).
    pub diagnostics: usize,
    /// Method bodies the verifier quarantined across the bundle.
    pub quarantined_methods: usize,
    /// Wall-clock time of the extraction stage (zero for
    /// [`Separ::analyze_models`], which takes pre-extracted models).
    pub extraction_wall: Duration,
    /// CPU-summed extraction time across apps.
    pub extraction_cpu: Duration,
    /// Time resolving passive intent targets across the bundle
    /// (Algorithm 1; serial, it is a cross-app fixpoint).
    pub resolution: Duration,
    /// Total CNF-construction time across signatures (CPU-summed).
    pub construction: Duration,
    /// Total SAT time across signatures (CPU-summed).
    pub solving: Duration,
    /// Wall-clock time of the synthesis stage (all signatures).
    pub synthesis_wall: Duration,
    /// Total primary variables across signatures.
    pub primary_vars: usize,
    /// Total CNF clauses across signatures.
    pub cnf_clauses: usize,
    /// Signatures that translated from the shared per-bundle base.
    pub shared_base_reuse: usize,
    /// App slots kept across per-signature relevance slices (sums over
    /// signatures: `apps × signatures` when slicing is off).
    pub slice_kept: usize,
    /// App slots dropped across per-signature relevance slices (always
    /// zero when slicing is off).
    pub slice_dropped: usize,
    /// Total SAT conflicts across signatures.
    pub conflicts: u64,
    /// Total SAT propagations across signatures.
    pub propagations: u64,
    /// Apps whose model came from the content-hash cache (always zero
    /// without [`Separ::with_model_cache`]).
    pub cache_hits: usize,
    /// Apps whose model was extracted from scratch this run.
    pub cache_misses: usize,
    /// Per-signature breakdown, in registry order.
    pub per_signature: Vec<SignatureStats>,
}

impl BundleStats {
    /// The count-type portion of the stats: everything except timings.
    /// Two analyses of the same bundle must agree on this exactly,
    /// whatever their thread counts — the determinism suite asserts it.
    pub fn counts(&self) -> CountStats {
        CountStats {
            components: self.components,
            intents: self.intents,
            filters: self.filters,
            diagnostics: self.diagnostics,
            quarantined_methods: self.quarantined_methods,
            primary_vars: self.primary_vars,
            cnf_clauses: self.cnf_clauses,
            shared_base_reuse: self.shared_base_reuse,
            slice_kept: self.slice_kept,
            slice_dropped: self.slice_dropped,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            per_signature: self
                .per_signature
                .iter()
                .map(|s| (s.name, s.primary_vars, s.cnf_clauses, s.exploits))
                .collect(),
        }
    }
}

/// The timing-free projection of [`BundleStats`] (see
/// [`BundleStats::counts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountStats {
    /// Components across the bundle.
    pub components: usize,
    /// Intent entities across the bundle.
    pub intents: usize,
    /// Intent filters across the bundle.
    pub filters: usize,
    /// Verification diagnostics across the bundle (all severities).
    pub diagnostics: usize,
    /// Method bodies the verifier quarantined across the bundle.
    pub quarantined_methods: usize,
    /// Total primary variables across signatures.
    pub primary_vars: usize,
    /// Total CNF clauses across signatures (the solver is deterministic,
    /// so clause counts are exact and thread-independent).
    pub cnf_clauses: usize,
    /// Signatures that translated from the shared per-bundle base.
    pub shared_base_reuse: usize,
    /// App slots kept across per-signature relevance slices.
    pub slice_kept: usize,
    /// App slots dropped across per-signature relevance slices.
    pub slice_dropped: usize,
    /// Apps whose model came from the content-hash cache.
    pub cache_hits: usize,
    /// Apps whose model was extracted from scratch this run.
    pub cache_misses: usize,
    /// Per signature: `(name, primary_vars, cnf_clauses, exploits)` in
    /// registry order.
    pub per_signature: Vec<(&'static str, usize, usize, usize)>,
}

/// An end-to-end analysis failure: either a package failed to decode or
/// a signature produced an ill-typed specification.
#[derive(Debug)]
pub enum AnalyzeError {
    /// A binary package is malformed.
    Dex(DexError),
    /// A signature specification is ill-typed.
    Logic(LogicError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Dex(e) => write!(f, "package decode failed: {e}"),
            AnalyzeError::Logic(e) => write!(f, "signature synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<DexError> for AnalyzeError {
    fn from(e: DexError) -> AnalyzeError {
        AnalyzeError::Dex(e)
    }
}

impl From<LogicError> for AnalyzeError {
    fn from(e: LogicError) -> AnalyzeError {
        AnalyzeError::Logic(e)
    }
}

/// The result of analyzing one bundle.
#[derive(Debug)]
pub struct Report {
    /// The (passive-intent-resolved) app models analyzed.
    pub apps: Vec<AppModel>,
    /// Synthesized exploit scenarios, all signatures.
    pub exploits: Vec<Exploit>,
    /// Derived, deduplicated ECA policies.
    pub policies: Vec<Policy>,
    /// Statistics.
    pub stats: BundleStats,
}

impl Report {
    /// Packages of apps vulnerable to the given category.
    pub fn vulnerable_apps(&self, kind: VulnKind) -> BTreeSet<&str> {
        self.exploits
            .iter()
            .filter(|e| e.kind() == kind)
            .map(|e| e.guarded_app())
            .collect()
    }

    /// Exploits of one category.
    pub fn exploits_of(&self, kind: VulnKind) -> impl Iterator<Item = &Exploit> + '_ {
        self.exploits.iter().filter(move |e| e.kind() == kind)
    }
}

/// The SEPAR analysis-and-synthesis engine.
///
/// # Examples
///
/// ```no_run
/// use separ_core::Separ;
///
/// let separ = Separ::new().with_threads(8);
/// let apks: Vec<separ_dex::Apk> = vec![/* a bundle */];
/// let report = separ.analyze_apks(&apks)?;
/// for policy in &report.policies {
///     println!("{policy:?}");
/// }
/// # Ok::<(), separ_logic::LogicError>(())
/// ```
#[derive(Debug)]
pub struct Separ {
    registry: SignatureRegistry,
    config: SeparConfig,
    model_cache: Option<Arc<ModelCache>>,
}

impl Default for Separ {
    fn default() -> Separ {
        Separ::new()
    }
}

impl Separ {
    /// SEPAR with the four standard signature plugins.
    pub fn new() -> Separ {
        Separ {
            registry: SignatureRegistry::standard(),
            config: SeparConfig::default(),
            model_cache: None,
        }
    }

    /// SEPAR with a custom plugin registry.
    pub fn with_registry(registry: SignatureRegistry) -> Separ {
        Separ {
            registry,
            config: SeparConfig::default(),
            model_cache: None,
        }
    }

    /// Attaches a content-hash model cache: extraction is skipped for
    /// packages whose bytes the cache has seen before (see
    /// [`ModelCache`]). Share one cache across engines to share its
    /// memory.
    pub fn with_model_cache(mut self, cache: Arc<ModelCache>) -> Separ {
        self.model_cache = Some(cache);
        self
    }

    /// The attached model cache, if any.
    pub fn model_cache(&self) -> Option<&Arc<ModelCache>> {
        self.model_cache.as_ref()
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SeparConfig) -> Separ {
        self.config = config;
        self
    }

    /// Overrides just the worker-thread count (`0` = all hardware
    /// threads). The report is identical for every value; only wall-clock
    /// timings change.
    pub fn with_threads(mut self, threads: usize) -> Separ {
        self.config.threads = threads;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> SeparConfig {
        self.config
    }

    fn executor(&self) -> Executor {
        Executor::new(self.config.threads)
    }

    /// Analyzes a bundle of packages end to end (AME + ASE).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature produced an ill-typed
    /// specification.
    pub fn analyze_apks(&self, apks: &[Apk]) -> Result<Report, LogicError> {
        let obs = separ_obs::global();
        let _root = obs.span("pipeline.analyze");
        let extraction = obs.span("pipeline.extraction");
        let extraction_id = extraction.id();
        let (apps, hits, misses) = match &self.model_cache {
            None => {
                let apps = self.executor().ordered_map(apks, extract_apk);
                let misses = apps.len();
                (apps, 0, misses)
            }
            Some(cache) => {
                let results = self
                    .executor()
                    .ordered_map(apks, |apk| cache.get_or_extract_apk(apk));
                collect_cached(results)
            }
        };
        drop(extraction);
        let mut report = self.analyze_models(apps)?;
        // Wall time is the stage span; CPU time sums the per-app
        // `ame.extract` spans the workers recorded beneath it.
        report.stats.extraction_wall = obs.duration(extraction_id);
        report.stats.extraction_cpu = obs.subtree_sum(extraction_id, "ame.extract");
        report.stats.cache_hits = hits;
        report.stats.cache_misses = misses;
        Ok(report)
    }

    /// Analyzes a bundle of *binary* packages end to end: decode →
    /// verify → extract (or a cache hit skipping all three) → synthesis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyzeError::Dex`] if an uncached package fails to
    /// decode, or [`AnalyzeError::Logic`] if a signature produced an
    /// ill-typed specification.
    pub fn analyze_packages(&self, packages: &[Vec<u8>]) -> Result<Report, AnalyzeError> {
        let obs = separ_obs::global();
        let _root = obs.span("pipeline.analyze");
        let extraction = obs.span("pipeline.extraction");
        let extraction_id = extraction.id();
        let results =
            self.executor()
                .try_ordered_map(packages, |bytes| match &self.model_cache {
                    Some(cache) => cache.get_or_extract(bytes),
                    None => extract(bytes).map(|m| (Arc::new(m), CacheOutcome::Miss)),
                })?;
        let (apps, hits, misses) = collect_cached(results);
        drop(extraction);
        let mut report = self.analyze_models(apps)?;
        report.stats.extraction_wall = obs.duration(extraction_id);
        report.stats.extraction_cpu = obs.subtree_sum(extraction_id, "ame.extract");
        report.stats.cache_hits = hits;
        report.stats.cache_misses = misses;
        Ok(report)
    }

    /// Analyzes pre-extracted app models (ASE only).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature produced an ill-typed
    /// specification.
    pub fn analyze_models(&self, mut apps: Vec<AppModel>) -> Result<Report, LogicError> {
        let obs = separ_obs::global();
        // Bundle-level Algorithm 1: passive intents may cross apps.
        let resolution = obs.span("pipeline.resolution");
        let resolution_id = resolution.id();
        update_passive_intent_targets(&mut apps);
        drop(resolution);
        let mut stats = BundleStats {
            components: apps.iter().map(|a| a.components.len()).sum(),
            intents: apps.iter().map(AppModel::num_intents).sum(),
            filters: apps.iter().map(AppModel::num_filters).sum(),
            diagnostics: apps.iter().map(|a| a.diagnostics.len()).sum(),
            quarantined_methods: apps.iter().map(|a| a.stats.quarantined_methods).sum(),
            resolution: obs.duration(resolution_id),
            ..BundleStats::default()
        };
        let synthesis = obs.span("pipeline.synthesis");
        let synthesis_id = synthesis.id();
        let syntheses = synthesize_all(
            &self.executor(),
            &self.registry,
            |_| true,
            &apps,
            &self.config,
            None,
        )?;
        drop(synthesis);
        stats.synthesis_wall = obs.duration(synthesis_id);
        let mut exploits = Vec::new();
        for (sig, syn) in self.registry.iter().zip(syntheses) {
            let run = syn.expect("unfiltered synthesis ran every signature");
            let syn = run.synthesis;
            // Per-signature stage timings come from the spans recorded
            // under this signature's `ase.signature` span.
            let construction = obs.subtree_sum(run.span, "logic.translate");
            let solving = obs.subtree_sum(run.span, "logic.solve");
            stats.construction += construction;
            stats.solving += solving;
            stats.primary_vars += syn.primary_vars;
            stats.cnf_clauses += syn.cnf_clauses;
            stats.shared_base_reuse += usize::from(syn.shared_base);
            stats.slice_kept += run.slice_kept;
            stats.slice_dropped += run.slice_dropped;
            stats.conflicts += syn.solver.conflicts;
            stats.propagations += syn.solver.propagations;
            stats.per_signature.push(SignatureStats {
                name: sig.name(),
                construction,
                solving,
                primary_vars: syn.primary_vars,
                cnf_clauses: syn.cnf_clauses,
                shared_base: syn.shared_base,
                solver: syn.solver,
                exploits: syn.exploits.len(),
                slice_kept: run.slice_kept,
                slice_dropped: run.slice_dropped,
            });
            if separ_obs::enabled() {
                separ_obs::event(
                    "ase.synthesized",
                    vec![
                        ("signature", sig.name().to_string()),
                        ("exploits", syn.exploits.len().to_string()),
                        ("conflicts", syn.solver.conflicts.to_string()),
                    ],
                );
            }
            exploits.extend(syn.exploits);
        }
        let policies = derive_policies(&apps, exploits.iter());
        Ok(Report {
            apps,
            exploits,
            policies,
            stats,
        })
    }
}

/// Unpacks per-app cache results into owned models plus hit/miss tallies
/// (the models are cloned out of their [`Arc`]s because the bundle-level
/// passive-intent resolution mutates them).
fn collect_cached(results: Vec<(Arc<AppModel>, CacheOutcome)>) -> (Vec<AppModel>, usize, usize) {
    let hits = results.iter().filter(|(_, o)| o.is_hit()).count();
    let misses = results.len() - hits;
    let apps = results.into_iter().map(|(m, _)| (*m).clone()).collect();
    (apps, hits, misses)
}

/// One signature's synthesis result plus the observability/slicing
/// bookkeeping [`Separ::analyze_models`] folds into [`BundleStats`].
pub(crate) struct SignatureRun {
    /// The decoded synthesis.
    pub synthesis: Synthesis,
    /// The signature's `ase.signature` span (per-stage timings hang off
    /// it).
    pub span: separ_obs::SpanId,
    /// Apps the relevance slice kept for this signature.
    pub slice_kept: usize,
    /// Apps the relevance slice dropped for this signature.
    pub slice_dropped: usize,
}

/// How one signature's universe is prepared for translation.
#[derive(Clone, Copy)]
enum SlicePlan {
    /// Translate against the shared, untightened full-bundle base.
    Full,
    /// Translate against the prepared (sliced and/or mal-tightened) base
    /// at this index.
    Prepared(usize),
    /// The slice kept no apps: the signature's facts are unsatisfiable
    /// over an empty relevant universe, so synthesis is skipped outright.
    Empty,
}

/// A sliced universe shared by every signature whose `(kept apps,
/// footprint)` key coincides: the sliced app models (or `None` when the
/// slice kept the whole bundle and only mal rows were tightened) and the
/// translation base built over them.
struct PreparedBase {
    apps: Option<Vec<AppModel>>,
    base: BundleBase,
}

/// Drops the malicious free rows a signature's declared footprint never
/// constrains. Sound for the same reason slicing itself is: the encoder
/// asserts no problem facts, so a free row no signature fact mentions is
/// false in every minimal model, and shrinking the upper bound to exclude
/// it cannot change the minimal-model set.
fn apply_footprint(
    fp: &Footprint,
    summaries: &[&AppSummary],
    problem: &mut Problem,
    atoms: &AtomRegistry,
    rels: &Relations,
) {
    let mal = atoms.mal_intent;
    match fp.mal_receivers {
        MalReceivers::All => {}
        MalReceivers::None => {
            problem.tighten_upper(rels.can_receive, |t| t.atoms()[0] != mal);
        }
        MalReceivers::Matching => {
            let matching: BTreeSet<Atom> = atoms
                .components
                .iter()
                .filter(|&&((ai, ci), _)| {
                    let caps = summaries[ai].components[ci].caps;
                    fp.demands.iter().any(|d| d.component_matches(&caps))
                })
                .map(|&(_, a)| a)
                .collect();
            problem.tighten_upper(rels.can_receive, |t| {
                t.atoms()[0] != mal || matching.contains(&t.atoms()[1])
            });
        }
    }
    if !fp.mal_extras {
        problem.tighten_upper(rels.extras, |t| t.atoms()[0] != mal);
    }
    if !fp.mal_action {
        problem.tighten_upper(rels.intent_action, |t| t.atoms()[0] != mal);
    }
    if !fp.mal_filter {
        problem.tighten_upper(rels.mal_filter_actions, |_| false);
    }
}

/// Runs `sig.synthesize_with` for every registry signature selected by
/// `select`, fanned out on `executor`, returning per-signature results in
/// registry order (`None` where `select` declined). Shared by the full
/// pipeline and [`crate::IncrementalSession`] re-runs.
///
/// With [`SeparConfig::slicing`] on, each signature's declared
/// [`Footprint`] is intersected with the bundle's capability summaries
/// first: the signature translates against a base built over only the
/// apps its slice kept, with the malicious free rows its facts never
/// constrain dropped from the upper bounds. Signatures whose slices (and
/// footprints) coincide share one prepared base; a signature whose slice
/// is empty skips translation and solving entirely. With slicing off,
/// every signature shares the one whole-bundle base.
///
/// `summaries` lets [`crate::IncrementalSession`] pass its cached
/// per-app capability summaries; `None` summarizes the bundle here
/// (under an `ase.slice` span).
pub(crate) fn synthesize_all(
    executor: &Executor,
    registry: &SignatureRegistry,
    select: impl Fn(&dyn VulnerabilitySignature) -> bool,
    apps: &[AppModel],
    config: &SeparConfig,
    summaries: Option<&[AppSummary]>,
) -> Result<Vec<Option<SignatureRun>>, LogicError> {
    let selected: Vec<(usize, &dyn VulnerabilitySignature)> = registry
        .iter()
        .enumerate()
        .filter(|(_, sig)| select(*sig))
        .collect();
    let mut out: Vec<Option<SignatureRun>> = Vec::new();
    out.resize_with(registry.len(), || None);
    if selected.is_empty() {
        return Ok(out);
    }

    // Plan each signature's universe up front (serially: plans must not
    // depend on executor fan-out order) and build the prepared bases.
    let mut plans: Vec<(SlicePlan, usize, usize)> = Vec::with_capacity(selected.len());
    let mut prepared: Vec<PreparedBase> = Vec::new();
    if config.slicing {
        let slice_span = separ_obs::span("ase.slice");
        let computed: Vec<AppSummary>;
        let summaries: &[AppSummary] = match summaries {
            Some(s) => s,
            None => {
                computed = slicing::summarize_bundle(apps);
                &computed
            }
        };
        let mut by_key: std::collections::BTreeMap<(Vec<usize>, Footprint), usize> =
            std::collections::BTreeMap::new();
        for (_, sig) in &selected {
            let fp = sig.footprint();
            if fp.is_everything() && !fp.tightens_mal() {
                plans.push((SlicePlan::Full, apps.len(), 0));
                continue;
            }
            let kept: Vec<usize> = slicing::select_apps(&fp.demands, summaries)
                .into_iter()
                .collect();
            if kept.is_empty() {
                plans.push((SlicePlan::Empty, 0, apps.len()));
                continue;
            }
            let (kept_n, dropped_n) = (kept.len(), apps.len() - kept.len());
            let slot = *by_key.entry((kept.clone(), fp.clone())).or_insert_with(|| {
                let sub_apps: Option<Vec<AppModel>> = if kept.len() == apps.len() {
                    None
                } else {
                    Some(kept.iter().map(|&i| apps[i].clone()).collect())
                };
                let sub_summaries: Vec<&AppSummary> = kept.iter().map(|&i| &summaries[i]).collect();
                let base_span = separ_obs::span("pipeline.bundle_base");
                let base = BundleBase::new_with(
                    sub_apps.as_deref().unwrap_or(apps),
                    |problem, atoms, rels| {
                        apply_footprint(&fp, &sub_summaries, problem, atoms, rels)
                    },
                );
                drop(base_span);
                prepared.push(PreparedBase {
                    apps: sub_apps,
                    base,
                });
                prepared.len() - 1
            });
            plans.push((SlicePlan::Prepared(slot), kept_n, dropped_n));
        }
        if separ_obs::enabled() {
            let kept: usize = plans.iter().map(|&(_, k, _)| k).sum();
            let dropped: usize = plans.iter().map(|&(_, _, d)| d).sum();
            separ_obs::counter_add("slice.kept", kept as u64);
            separ_obs::counter_add("slice.dropped", dropped as u64);
        }
        drop(slice_span);
    } else {
        plans.resize(selected.len(), (SlicePlan::Full, apps.len(), 0));
    }

    // The whole-bundle base is only paid for when some plan needs it.
    let full_base = if plans.iter().any(|(p, _, _)| matches!(p, SlicePlan::Full)) {
        let base_span = separ_obs::span("pipeline.bundle_base");
        let base = BundleBase::new(apps);
        drop(base_span);
        Some(base)
    } else {
        None
    };

    let options = config.finder_options();
    type SignatureJob<'a> = (
        (usize, &'a dyn VulnerabilitySignature),
        (SlicePlan, usize, usize),
    );
    let jobs: Vec<SignatureJob> = selected.into_iter().zip(plans).collect();
    let syntheses = executor.try_ordered_map(&jobs, |&((_, sig), (plan, kept, dropped))| {
        let mut span = separ_obs::span("ase.signature");
        span.set_arg("signature", sig.name());
        let span_id = span.id();
        let (ctx_apps, base): (&[AppModel], &BundleBase) = match plan {
            SlicePlan::Empty => {
                return Ok(SignatureRun {
                    synthesis: Synthesis::default(),
                    span: span_id,
                    slice_kept: kept,
                    slice_dropped: dropped,
                });
            }
            SlicePlan::Full => (apps, full_base.as_ref().expect("full base was built")),
            SlicePlan::Prepared(i) => {
                let p = &prepared[i];
                (p.apps.as_deref().unwrap_or(apps), &p.base)
            }
        };
        sig.synthesize_with(&SynthesisContext {
            apps: ctx_apps,
            base,
            limit: config.scenario_limit,
            options,
        })
        .map(|synthesis| SignatureRun {
            synthesis,
            span: span_id,
            slice_kept: kept,
            slice_dropped: dropped,
        })
    })?;
    for (((i, _), _), run) in jobs.into_iter().zip(syntheses) {
        out[i] = Some(run);
    }
    Ok(out)
}

/// Derives the final, deduplicated policy set from exploit scenarios.
pub(crate) fn derive_policies<'a>(
    apps: &[AppModel],
    exploits: impl Iterator<Item = &'a Exploit>,
) -> Vec<Policy> {
    let _span = separ_obs::span("pipeline.derive_policies");
    let mut policies = Vec::new();
    for e in exploits {
        let intended = intended_recipients(apps, e);
        policies.extend(policies_for_exploit(e, &intended));
    }
    finalize_policies(policies)
}

/// For a hijack exploit, the components legitimately able to receive the
/// victim intent (used to scope `ReceiverNotIn` policy conditions).
pub(crate) fn intended_recipients(apps: &[AppModel], exploit: &Exploit) -> Vec<String> {
    let Exploit::IntentHijack {
        victim_component,
        hijacked_action,
        ..
    } = exploit
    else {
        return Vec::new();
    };
    let mut intent = resolution::IntentData::new();
    intent.action = hijacked_action.clone();
    let mut out = BTreeSet::new();
    for app in apps {
        for c in &app.components {
            if c.class == *victim_component {
                continue;
            }
            if resolution::any_filter_matches(&intent, &c.filters) {
                out.insert(c.class.clone());
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use crate::policy::{Condition, PolicyEvent};
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    fn motivating_bundle() -> Vec<AppModel> {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut app2 = app("com.messenger", vec![ms]);
        app2.uses_permissions.insert(perm::SEND_SMS.into());
        vec![app("com.nav", vec![lf, rf]), app2]
    }

    #[test]
    fn end_to_end_motivating_example() {
        let report = Separ::new()
            .analyze_models(motivating_bundle())
            .expect("analysis succeeds");
        // The paper's Figure 1 attack surface: hijack + launch +
        // escalation are all synthesized against this bundle.
        assert!(!report.vulnerable_apps(VulnKind::IntentHijack).is_empty());
        assert!(report
            .vulnerable_apps(VulnKind::ComponentLaunch)
            .contains("com.messenger"));
        assert!(report
            .vulnerable_apps(VulnKind::PrivilegeEscalation)
            .contains("com.messenger"));
        // Policies: at least one per synthesized category.
        assert!(!report.policies.is_empty());
        let hijack_policy = report
            .policies
            .iter()
            .find(|p| p.vulnerability == VulnKind::IntentHijack.name())
            .expect("hijack policy");
        assert_eq!(hijack_policy.event, PolicyEvent::IccSend);
        assert!(hijack_policy
            .conditions
            .contains(&Condition::ActionIs("showLoc".into())));
        // RouteFinder is the intended recipient and is carved out.
        assert!(hijack_policy
            .conditions
            .contains(&Condition::ReceiverNotIn(vec!["LRouteFinder;".into()])));
        // Stats are populated.
        assert_eq!(report.stats.components, 3);
        assert_eq!(report.stats.intents, 1);
        assert_eq!(report.stats.filters, 1);
        assert!(report.stats.primary_vars > 0);
        // Per-signature breakdown covers the registry in order.
        assert_eq!(report.stats.per_signature.len(), 4);
        assert_eq!(
            report
                .stats
                .per_signature
                .iter()
                .map(|s| s.primary_vars)
                .sum::<usize>(),
            report.stats.primary_vars
        );
        assert_eq!(
            report
                .stats
                .per_signature
                .iter()
                .map(|s| s.exploits)
                .sum::<usize>(),
            report.exploits.len()
        );
    }

    #[test]
    fn clean_bundle_produces_no_policies() {
        let apps = vec![app(
            "com.clean",
            vec![comp("LMain;", ComponentKind::Activity)],
        )];
        let report = Separ::new().analyze_models(apps).expect("succeeds");
        assert!(report.exploits.is_empty());
        assert!(report.policies.is_empty());
    }

    #[test]
    fn scenario_limit_caps_enumeration() {
        let report = Separ::new()
            .with_config(SeparConfig {
                scenario_limit: 1,
                ..SeparConfig::default()
            })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        for kind in VulnKind::ALL {
            assert!(report.exploits_of(kind).count() <= 1);
        }
    }

    #[test]
    fn every_signature_reuses_the_shared_bundle_base() {
        // Slicing off: this test pins the shared-base translation path,
        // where all four signatures reuse the one whole-bundle base.
        let report = Separ::new()
            .with_config(SeparConfig {
                slicing: false,
                ..SeparConfig::default()
            })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        assert_eq!(report.stats.shared_base_reuse, 4);
        assert!(report.stats.cnf_clauses > 0);
        assert!(report.stats.propagations > 0);
        assert!(report.stats.conflicts < report.stats.propagations);
        for s in &report.stats.per_signature {
            assert!(s.shared_base, "{} must translate from the base", s.name);
            assert!(s.cnf_clauses > 0, "{} reports its clause count", s.name);
        }
        assert_eq!(
            report
                .stats
                .per_signature
                .iter()
                .map(|s| s.cnf_clauses)
                .sum::<usize>(),
            report.stats.cnf_clauses
        );
    }

    #[test]
    fn slicing_preserves_results_and_shrinks_the_universe() {
        let sliced = Separ::new()
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        let unsliced = Separ::new()
            .with_config(SeparConfig {
                slicing: false,
                ..SeparConfig::default()
            })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        assert_eq!(result_sets(&sliced), result_sets(&unsliced));
        // Unsliced runs drop nothing and keep every app for every
        // signature; sliced runs record what each footprint excluded.
        assert_eq!(unsliced.stats.slice_dropped, 0);
        assert_eq!(unsliced.stats.slice_kept, 2 * 4);
        assert!(sliced.stats.slice_dropped > 0);
        assert!(sliced.stats.slice_kept < unsliced.stats.slice_kept);
        // Tightened bounds translate to strictly smaller formulas.
        assert!(sliced.stats.primary_vars < unsliced.stats.primary_vars);
        assert!(sliced.stats.cnf_clauses < unsliced.stats.cnf_clauses);
        for (s, u) in sliced
            .stats
            .per_signature
            .iter()
            .zip(&unsliced.stats.per_signature)
        {
            assert_eq!(s.name, u.name);
            assert!(s.primary_vars <= u.primary_vars, "{}", s.name);
            assert_eq!(s.slice_kept + s.slice_dropped, 2, "{}", s.name);
        }
    }

    /// Exploit/policy *sets* for encoding-robust comparison: enumeration
    /// order may differ between CNF encodings under limit truncation.
    fn result_sets(report: &Report) -> (BTreeSet<String>, BTreeSet<String>) {
        (
            report.exploits.iter().map(|e| format!("{e:?}")).collect(),
            report
                .policies
                .iter()
                .map(|p| {
                    format!(
                        "{:?} {:?} {:?} {:?}",
                        p.vulnerability, p.event, p.conditions, p.action
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn cnf_encodings_agree_on_exploits_and_policies() {
        let pg = Separ::new()
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        let ts = Separ::new()
            .with_config(SeparConfig {
                cnf_encoding: separ_logic::CnfEncoding::Tseitin,
                ..SeparConfig::default()
            })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        assert_eq!(result_sets(&pg), result_sets(&ts));
        // The polarity-aware default emits strictly fewer clauses.
        assert!(
            pg.stats.cnf_clauses < ts.stats.cnf_clauses,
            "PG {} vs Tseitin {}",
            pg.stats.cnf_clauses,
            ts.stats.cnf_clauses
        );
    }

    #[test]
    fn symmetry_breaking_preserves_the_derived_policies() {
        let plain = Separ::new()
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        let broken = Separ::new()
            .with_config(SeparConfig {
                symmetry_breaking: true,
                ..SeparConfig::default()
            })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        // Breaking prunes symmetric *models*; every vulnerability category
        // and the final policy set must survive.
        for kind in VulnKind::ALL {
            assert_eq!(
                plain.vulnerable_apps(kind),
                broken.vulnerable_apps(kind),
                "{kind:?}"
            );
        }
        assert_eq!(result_sets(&plain).1, result_sets(&broken).1);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let serial = Separ::new()
            .with_config(SeparConfig::serial())
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        for threads in [2, 8] {
            let parallel = Separ::new()
                .with_threads(threads)
                .analyze_models(motivating_bundle())
                .expect("succeeds");
            assert_eq!(parallel.exploits, serial.exploits);
            assert_eq!(parallel.policies, serial.policies);
            assert_eq!(parallel.stats.counts(), serial.stats.counts());
        }
    }
}
