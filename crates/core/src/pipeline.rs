//! The SEPAR façade: bundle in, report out.
//!
//! Orchestrates the full ASE pipeline: passive-intent resolution across
//! the bundle (Algorithm 1), per-signature exploit synthesis, and ECA
//! policy derivation.

use std::collections::BTreeSet;
use std::time::Duration;

use separ_analysis::extractor::extract_apk;
use separ_analysis::model::{update_passive_intent_targets, AppModel};
use separ_android::resolution;
use separ_dex::program::Apk;
use separ_logic::LogicError;

use crate::exploit::{Exploit, VulnKind};
use crate::policy::{finalize_policies, policies_for_exploit, Policy};
use crate::signature::SignatureRegistry;
use crate::vulns::DEFAULT_SCENARIO_LIMIT;

/// Tunables for an analysis run.
#[derive(Debug, Clone, Copy)]
pub struct SeparConfig {
    /// Maximum minimal scenarios enumerated per signature.
    pub scenario_limit: usize,
}

impl Default for SeparConfig {
    fn default() -> SeparConfig {
        SeparConfig {
            scenario_limit: DEFAULT_SCENARIO_LIMIT,
        }
    }
}

/// Aggregate statistics for one bundle analysis (Table II's columns).
#[derive(Debug, Clone, Copy, Default)]
pub struct BundleStats {
    /// Components across the bundle.
    pub components: usize,
    /// Intent entities across the bundle.
    pub intents: usize,
    /// Intent filters across the bundle.
    pub filters: usize,
    /// Total CNF-construction time across signatures.
    pub construction: Duration,
    /// Total SAT time across signatures.
    pub solving: Duration,
    /// Total primary variables across signatures.
    pub primary_vars: usize,
}

/// The result of analyzing one bundle.
#[derive(Debug)]
pub struct Report {
    /// The (passive-intent-resolved) app models analyzed.
    pub apps: Vec<AppModel>,
    /// Synthesized exploit scenarios, all signatures.
    pub exploits: Vec<Exploit>,
    /// Derived, deduplicated ECA policies.
    pub policies: Vec<Policy>,
    /// Statistics.
    pub stats: BundleStats,
}

impl Report {
    /// Packages of apps vulnerable to the given category.
    pub fn vulnerable_apps(&self, kind: VulnKind) -> BTreeSet<&str> {
        self.exploits
            .iter()
            .filter(|e| e.kind() == kind)
            .map(|e| e.guarded_app())
            .collect()
    }

    /// Exploits of one category.
    pub fn exploits_of(&self, kind: VulnKind) -> impl Iterator<Item = &Exploit> + '_ {
        self.exploits.iter().filter(move |e| e.kind() == kind)
    }
}

/// The SEPAR analysis-and-synthesis engine.
///
/// # Examples
///
/// ```no_run
/// use separ_core::Separ;
///
/// let separ = Separ::new();
/// let apks: Vec<separ_dex::Apk> = vec![/* a bundle */];
/// let report = separ.analyze_apks(&apks)?;
/// for policy in &report.policies {
///     println!("{policy:?}");
/// }
/// # Ok::<(), separ_logic::LogicError>(())
/// ```
#[derive(Debug)]
pub struct Separ {
    registry: SignatureRegistry,
    config: SeparConfig,
}

impl Default for Separ {
    fn default() -> Separ {
        Separ::new()
    }
}

impl Separ {
    /// SEPAR with the four standard signature plugins.
    pub fn new() -> Separ {
        Separ {
            registry: SignatureRegistry::standard(),
            config: SeparConfig::default(),
        }
    }

    /// SEPAR with a custom plugin registry.
    pub fn with_registry(registry: SignatureRegistry) -> Separ {
        Separ {
            registry,
            config: SeparConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: SeparConfig) -> Separ {
        self.config = config;
        self
    }

    /// Analyzes a bundle of packages end to end (AME + ASE).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature produced an ill-typed
    /// specification.
    pub fn analyze_apks(&self, apks: &[Apk]) -> Result<Report, LogicError> {
        let apps: Vec<AppModel> = apks.iter().map(extract_apk).collect();
        self.analyze_models(apps)
    }

    /// Analyzes pre-extracted app models (ASE only).
    ///
    /// # Errors
    ///
    /// Returns a [`LogicError`] if a signature produced an ill-typed
    /// specification.
    pub fn analyze_models(&self, mut apps: Vec<AppModel>) -> Result<Report, LogicError> {
        // Bundle-level Algorithm 1: passive intents may cross apps.
        update_passive_intent_targets(&mut apps);
        let mut stats = BundleStats {
            components: apps.iter().map(|a| a.components.len()).sum(),
            intents: apps.iter().map(AppModel::num_intents).sum(),
            filters: apps.iter().map(AppModel::num_filters).sum(),
            ..BundleStats::default()
        };
        let mut exploits = Vec::new();
        for sig in self.registry.iter() {
            let syn = sig.synthesize(&apps, self.config.scenario_limit)?;
            stats.construction += syn.construction;
            stats.solving += syn.solving;
            stats.primary_vars += syn.primary_vars;
            exploits.extend(syn.exploits);
        }
        let mut policies = Vec::new();
        for e in &exploits {
            let intended = intended_recipients(&apps, e);
            policies.extend(policies_for_exploit(e, &intended));
        }
        let policies = finalize_policies(policies);
        Ok(Report {
            apps,
            exploits,
            policies,
            stats,
        })
    }
}

/// For a hijack exploit, the components legitimately able to receive the
/// victim intent (used to scope `ReceiverNotIn` policy conditions).
pub(crate) fn intended_recipients(apps: &[AppModel], exploit: &Exploit) -> Vec<String> {
    let Exploit::IntentHijack {
        victim_component,
        hijacked_action,
        ..
    } = exploit
    else {
        return Vec::new();
    };
    let mut intent = resolution::IntentData::new();
    intent.action = hijacked_action.clone();
    let mut out = BTreeSet::new();
    for app in apps {
        for c in &app.components {
            if c.class == *victim_component {
                continue;
            }
            if resolution::any_filter_matches(&intent, &c.filters) {
                out.insert(c.class.clone());
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests_support::{app, comp, sent};
    use crate::policy::{Condition, PolicyEvent};
    use separ_android::api::IccMethod;
    use separ_android::types::{perm, FlowPath, Resource};
    use separ_dex::manifest::{ComponentKind, IntentFilterDecl};

    fn motivating_bundle() -> Vec<AppModel> {
        let mut lf = comp("LLocationFinder;", ComponentKind::Service);
        lf.paths
            .insert(FlowPath::new(Resource::Location, Resource::Icc));
        lf.sent_intents.push(sent(
            Some("showLoc"),
            IccMethod::StartService,
            &[Resource::Location],
        ));
        let mut rf = comp("LRouteFinder;", ComponentKind::Service);
        rf.filters.push(IntentFilterDecl::for_actions(["showLoc"]));
        rf.exported = true;
        let mut ms = comp("LMessageSender;", ComponentKind::Service);
        ms.exported = true;
        ms.paths.insert(FlowPath::new(Resource::Icc, Resource::Sms));
        ms.used_permissions.insert(perm::SEND_SMS.into());
        let mut app2 = app("com.messenger", vec![ms]);
        app2.uses_permissions.insert(perm::SEND_SMS.into());
        vec![app("com.nav", vec![lf, rf]), app2]
    }

    #[test]
    fn end_to_end_motivating_example() {
        let report = Separ::new()
            .analyze_models(motivating_bundle())
            .expect("analysis succeeds");
        // The paper's Figure 1 attack surface: hijack + launch +
        // escalation are all synthesized against this bundle.
        assert!(!report.vulnerable_apps(VulnKind::IntentHijack).is_empty());
        assert!(report
            .vulnerable_apps(VulnKind::ComponentLaunch)
            .contains("com.messenger"));
        assert!(report
            .vulnerable_apps(VulnKind::PrivilegeEscalation)
            .contains("com.messenger"));
        // Policies: at least one per synthesized category.
        assert!(!report.policies.is_empty());
        let hijack_policy = report
            .policies
            .iter()
            .find(|p| p.vulnerability == VulnKind::IntentHijack.name())
            .expect("hijack policy");
        assert_eq!(hijack_policy.event, PolicyEvent::IccSend);
        assert!(hijack_policy
            .conditions
            .contains(&Condition::ActionIs("showLoc".into())));
        // RouteFinder is the intended recipient and is carved out.
        assert!(hijack_policy
            .conditions
            .contains(&Condition::ReceiverNotIn(vec!["LRouteFinder;".into()])));
        // Stats are populated.
        assert_eq!(report.stats.components, 3);
        assert_eq!(report.stats.intents, 1);
        assert_eq!(report.stats.filters, 1);
        assert!(report.stats.primary_vars > 0);
    }

    #[test]
    fn clean_bundle_produces_no_policies() {
        let apps = vec![app(
            "com.clean",
            vec![comp("LMain;", ComponentKind::Activity)],
        )];
        let report = Separ::new().analyze_models(apps).expect("succeeds");
        assert!(report.exploits.is_empty());
        assert!(report.policies.is_empty());
    }

    #[test]
    fn scenario_limit_caps_enumeration() {
        let report = Separ::new()
            .with_config(SeparConfig { scenario_limit: 1 })
            .analyze_models(motivating_bundle())
            .expect("succeeds");
        for kind in VulnKind::ALL {
            assert!(report.exploits_of(kind).count() <= 1);
        }
    }
}
