//! Event-condition-action security policies and their synthesis.
//!
//! Policies are the deliverable of the ASE: fine-grained, system-specific
//! ECA rules derived from synthesized exploits, ready for the runtime
//! enforcer (APE). They ship to a device as JSON via [`crate::policy_io`],
//! as the paper describes.

use std::collections::BTreeSet;

use crate::exploit::{Exploit, VulnKind};

/// The ICC event a policy guards.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PolicyEvent {
    /// An intent is about to leave a component.
    IccSend,
    /// An intent is about to be delivered to a component.
    IccReceive,
}

impl PolicyEvent {
    /// The stable wire name (shared by policy JSON and the serve
    /// protocol).
    pub fn name(self) -> &'static str {
        match self {
            PolicyEvent::IccSend => "icc_send",
            PolicyEvent::IccReceive => "icc_receive",
        }
    }

    /// Parses a wire name produced by [`PolicyEvent::name`].
    pub fn from_name(name: &str) -> Option<PolicyEvent> {
        match name {
            "icc_send" => Some(PolicyEvent::IccSend),
            "icc_receive" => Some(PolicyEvent::IccReceive),
            _ => None,
        }
    }
}

/// A conjunctive condition over an intercepted ICC event.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Condition {
    /// The receiving component's class equals this.
    ReceiverIs(String),
    /// The sending component's class equals this.
    SenderIs(String),
    /// The sender's class is NOT among these (the intended recipients).
    SenderNotIn(Vec<String>),
    /// The receiver's class is NOT among these (the intended recipients).
    ReceiverNotIn(Vec<String>),
    /// The intent's action equals this.
    ActionIs(String),
    /// The intent carries a payload tagged with this resource name
    /// (e.g. `"LOCATION"`).
    ExtraTagged(String),
    /// The sending app's package is NOT among the analyzed bundle.
    SenderAppNotIn(Vec<String>),
}

/// What the enforcement point does when the conditions hold.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PolicyAction {
    /// Ask the user; proceed only on consent.
    Prompt,
    /// Silently drop the event (degraded mode, no crash).
    Deny,
    /// Explicitly allow (useful for user-pinned exceptions).
    Allow,
}

/// One synthesized ECA rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Policy {
    /// Stable identifier within its policy set.
    pub id: u32,
    /// The vulnerability category this policy mitigates.
    pub vulnerability: String,
    /// The guarded event.
    pub event: PolicyEvent,
    /// All conditions must hold for the action to fire.
    pub conditions: Vec<Condition>,
    /// The enforcement action.
    pub action: PolicyAction,
    /// Human-readable justification shown in the user prompt.
    pub rationale: String,
}

/// The content identity of a [`Policy`]: everything that affects what the
/// policy *matches and does*, ignoring the set-local `id` and the
/// cosmetic `rationale`. Two policies with equal keys are interchangeable
/// for enforcement, so delta application and compiled-set deduplication
/// match on this rather than on ids.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PolicyKey<'a> {
    /// The vulnerability category.
    pub vulnerability: &'a str,
    /// The guarded event.
    pub event: PolicyEvent,
    /// The conjunctive conditions.
    pub conditions: &'a [Condition],
    /// The enforcement action.
    pub action: PolicyAction,
}

impl Policy {
    /// This policy's content identity (see [`PolicyKey`]).
    pub fn content_key(&self) -> PolicyKey<'_> {
        PolicyKey {
            vulnerability: &self.vulnerability,
            event: self.event,
            conditions: &self.conditions,
            action: self.action,
        }
    }
}

/// Applies a policy-set delta in place: `removed` policies are retired by
/// content identity (ids are irrelevant), then `added` policies are
/// appended with **fresh, monotonically increasing ids** — ids of
/// unchanged policies are never renumbered, so audit logs stay diffable
/// across deltas. Added policies whose content duplicates a surviving (or
/// earlier-added) policy are dropped: first occurrence wins, matching the
/// PDP's first-match evaluation order.
pub fn merge_delta(current: &mut Vec<Policy>, added: Vec<Policy>, removed: &[Policy]) {
    use std::collections::BTreeSet;
    // Fresh ids start above anything ever seen in this set, including the
    // ids being retired — a retired id is never reused.
    let mut next_id = current.iter().map(|p| p.id + 1).max().unwrap_or(0);
    let retired: BTreeSet<PolicyKey<'_>> = removed.iter().map(Policy::content_key).collect();
    current.retain(|p| !retired.contains(&p.content_key()));
    for mut p in added {
        if current.iter().any(|q| q.content_key() == p.content_key()) {
            continue;
        }
        p.id = next_id;
        next_id += 1;
        current.push(p);
    }
}

/// Derives the preventive policies for one exploit.
///
/// The mapping follows the paper's running example: an exploit synthesized
/// from the model instance becomes an ECA rule whose conditions are the
/// properties of the malicious (or vulnerable) intent in that instance.
pub fn policies_for_exploit(exploit: &Exploit, intended: &[String]) -> Vec<Policy> {
    let mut out = Vec::new();
    match exploit {
        Exploit::IntentHijack {
            victim_app,
            victim_component,
            hijacked_action,
            leaked,
        } => {
            let mut conditions = vec![Condition::SenderIs(victim_component.clone())];
            if let Some(a) = hijacked_action {
                conditions.push(Condition::ActionIs(a.clone()));
            }
            for r in leaked {
                conditions.push(Condition::ExtraTagged(r.name().to_string()));
            }
            if !intended.is_empty() {
                conditions.push(Condition::ReceiverNotIn(intended.to_vec()));
            }
            out.push(Policy {
                id: 0,
                vulnerability: VulnKind::IntentHijack.name().into(),
                event: PolicyEvent::IccSend,
                conditions,
                action: PolicyAction::Prompt,
                rationale: format!(
                    "implicit intent from {victim_app}/{victim_component} carries {leaked:?} and can be hijacked"
                ),
            });
        }
        Exploit::ComponentLaunch {
            target_app,
            target_component,
            ..
        } => {
            out.push(Policy {
                id: 0,
                vulnerability: VulnKind::ComponentLaunch.name().into(),
                event: PolicyEvent::IccReceive,
                conditions: vec![
                    Condition::ReceiverIs(target_component.clone()),
                    Condition::SenderAppNotIn(vec![]),
                ],
                action: PolicyAction::Prompt,
                rationale: format!(
                    "{target_app}/{target_component} is exported and reachable by forged intents"
                ),
            });
        }
        Exploit::PrivilegeEscalation {
            target_app,
            target_component,
            permission,
            ..
        } => {
            out.push(Policy {
                id: 0,
                vulnerability: VulnKind::PrivilegeEscalation.name().into(),
                event: PolicyEvent::IccReceive,
                conditions: vec![
                    Condition::ReceiverIs(target_component.clone()),
                    Condition::SenderAppNotIn(vec![]),
                ],
                action: PolicyAction::Prompt,
                rationale: format!(
                    "{target_app}/{target_component} exercises {permission} without checking its caller"
                ),
            });
        }
        Exploit::Custom {
            name,
            guarded_component,
            ..
        } => {
            if !guarded_component.is_empty() {
                out.push(Policy {
                    id: 0,
                    vulnerability: name.clone(),
                    event: PolicyEvent::IccReceive,
                    conditions: vec![
                        Condition::ReceiverIs(guarded_component.clone()),
                        Condition::SenderAppNotIn(vec![]),
                    ],
                    action: PolicyAction::Prompt,
                    rationale: format!("matched user signature '{name}'"),
                });
            }
        }
        Exploit::BroadcastInjection {
            target_app,
            target_component,
            spoofed_action,
            ..
        } => {
            // Apps can never legitimately send protected broadcasts:
            // deny outright rather than prompting.
            out.push(Policy {
                id: 0,
                vulnerability: VulnKind::BroadcastInjection.name().into(),
                event: PolicyEvent::IccReceive,
                conditions: vec![
                    Condition::ReceiverIs(target_component.clone()),
                    Condition::ActionIs(spoofed_action.clone()),
                    Condition::SenderAppNotIn(vec![]),
                ],
                action: PolicyAction::Deny,
                rationale: format!(
                    "{target_app}/{target_component} trusts {spoofed_action}, which apps cannot legitimately send"
                ),
            });
        }
        Exploit::InformationLeakage {
            sink_component,
            resources,
            via_action,
            ..
        } => {
            // The paper's example policy: every attempt to deliver an
            // intent carrying the resource to the sink component must be
            // confirmed.
            let mut conditions = vec![Condition::ReceiverIs(sink_component.clone())];
            for r in resources {
                conditions.push(Condition::ExtraTagged(r.name().to_string()));
            }
            if let Some(a) = via_action {
                conditions.push(Condition::ActionIs(a.clone()));
            }
            out.push(Policy {
                id: 0,
                vulnerability: VulnKind::InformationLeakage.name().into(),
                event: PolicyEvent::IccReceive,
                conditions,
                action: PolicyAction::Prompt,
                rationale: format!(
                    "delivering {resources:?} to {sink_component} completes a sensitive leak"
                ),
            });
        }
    }
    out
}

/// Deduplicates and renumbers a policy set.
pub fn finalize_policies(mut policies: Vec<Policy>) -> Vec<Policy> {
    let mut seen: BTreeSet<(String, Vec<Condition>)> = BTreeSet::new();
    policies.retain(|p| seen.insert((p.vulnerability.clone(), p.conditions.clone())));
    for (i, p) in policies.iter_mut().enumerate() {
        p.id = i as u32;
    }
    policies
}

#[cfg(test)]
mod tests {
    use super::*;
    use separ_android::resolution::IntentData;
    use separ_android::types::Resource;
    use std::collections::BTreeSet;

    fn hijack() -> Exploit {
        Exploit::IntentHijack {
            victim_app: "com.nav".into(),
            victim_component: "LLocationFinder;".into(),
            hijacked_action: Some("showLoc".into()),
            leaked: [Resource::Location].into_iter().collect(),
        }
    }

    #[test]
    fn hijack_policy_guards_the_send() {
        let pols = policies_for_exploit(&hijack(), &["LRouteFinder;".to_string()]);
        assert_eq!(pols.len(), 1);
        let p = &pols[0];
        assert_eq!(p.event, PolicyEvent::IccSend);
        assert!(p
            .conditions
            .contains(&Condition::ActionIs("showLoc".into())));
        assert!(p
            .conditions
            .contains(&Condition::ExtraTagged("LOCATION".into())));
        assert!(p
            .conditions
            .contains(&Condition::ReceiverNotIn(vec!["LRouteFinder;".into()])));
        assert_eq!(p.action, PolicyAction::Prompt);
    }

    #[test]
    fn leakage_policy_matches_paper_example() {
        // The paper's generated policy: ICC received + extra LOCATION +
        // receiver MessageSender -> user prompt.
        let e = Exploit::InformationLeakage {
            source_app: "com.nav".into(),
            source_component: "LLocationFinder;".into(),
            sink_app: "com.messenger".into(),
            sink_component: "LMessageSender;".into(),
            resources: [Resource::Location].into_iter().collect(),
            sinks: [Resource::Sms].into_iter().collect(),
            via_action: None,
        };
        let pols = policies_for_exploit(&e, &[]);
        let p = &pols[0];
        assert_eq!(p.event, PolicyEvent::IccReceive);
        assert!(p
            .conditions
            .contains(&Condition::ReceiverIs("LMessageSender;".into())));
        assert!(p
            .conditions
            .contains(&Condition::ExtraTagged("LOCATION".into())));
        assert_eq!(p.action, PolicyAction::Prompt);
    }

    #[test]
    fn finalize_dedups_and_renumbers() {
        let p1 = policies_for_exploit(&hijack(), &[]);
        let p2 = policies_for_exploit(&hijack(), &[]);
        let all: Vec<Policy> = p1.into_iter().chain(p2).collect();
        let out = finalize_policies(all);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }

    #[test]
    fn policies_ship_through_policy_io() {
        // No serialization framework is in the workspace dependency set;
        // `policy_io` is the shipping format. Every policy this module
        // derives must survive the round trip.
        let pols = policies_for_exploit(&hijack(), &["LRouteFinder;".to_string()]);
        let json = crate::policy_io::to_json(&pols);
        assert_eq!(crate::policy_io::from_json(&json).expect("parses"), pols);
        let _ = (IntentData::new(), BTreeSet::<u8>::new());
    }
}
