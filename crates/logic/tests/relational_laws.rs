//! Property-based tests of relational-algebra laws, checked semantically:
//! two expressions are equivalent iff the bounded model finder proves
//! their equality has no counterexample.

use proptest::prelude::*;

use separ_logic::ast::Expr;
use separ_logic::relation::{RelationDecl, Tuple, TupleSet};
use separ_logic::universe::Universe;
use separ_logic::Problem;

const N_ATOMS: usize = 4;

/// A problem with three free binary relations over a small universe.
fn setup() -> (Problem, [Expr; 3]) {
    let mut u = Universe::new();
    let atoms: Vec<_> = (0..N_ATOMS).map(|i| u.add(format!("a{i}"))).collect();
    let mut pairs = TupleSet::new(2);
    for &x in &atoms {
        for &y in &atoms {
            pairs.insert(Tuple::binary(x, y));
        }
    }
    let mut p = Problem::new(u);
    let r = p.relation(RelationDecl::free("r", pairs.clone()));
    let s = p.relation(RelationDecl::free("s", pairs.clone()));
    let t = p.relation(RelationDecl::free("t", pairs));
    (p, [Expr::relation(r), Expr::relation(s), Expr::relation(t)])
}

/// Asserts a law `lhs = rhs` holds for ALL instances (no counterexample).
fn assert_law(lhs: Expr, rhs: Expr) {
    let (p, _) = setup();
    let cex = p.check(lhs.equal(&rhs)).expect("well-typed");
    assert!(cex.is_none(), "law violated:\n{}", cex.expect("some"));
}

#[test]
fn union_is_commutative_and_associative() {
    let (_, [r, s, t]) = setup();
    assert_law(r.union(&s), s.union(&r));
    assert_law(r.union(&s).union(&t), r.union(&s.union(&t)));
}

#[test]
fn intersection_distributes_over_union() {
    let (_, [r, s, t]) = setup();
    assert_law(
        r.intersect(&s.union(&t)),
        r.intersect(&s).union(&r.intersect(&t)),
    );
}

#[test]
fn de_morgan_via_difference() {
    // r - (s + t) = (r - s) & (r - t)
    let (_, [r, s, t]) = setup();
    assert_law(
        r.difference(&s.union(&t)),
        r.difference(&s).intersect(&r.difference(&t)),
    );
}

#[test]
fn transpose_is_an_involution_and_antidistributes_over_join() {
    let (_, [r, s, _]) = setup();
    assert_law(r.transpose().transpose(), r.clone());
    // ~(r.s) = ~s.~r
    assert_law(r.join(&s).transpose(), s.transpose().join(&r.transpose()));
}

#[test]
fn join_distributes_over_union() {
    let (_, [r, s, t]) = setup();
    assert_law(r.join(&s.union(&t)), r.join(&s).union(&r.join(&t)));
}

#[test]
fn closure_is_a_fixpoint() {
    // ^r = r + r.^r
    let (_, [r, _, _]) = setup();
    assert_law(r.closure(), r.union(&r.join(&r.closure())));
    // ^^r = ^r (idempotent)
    assert_law(r.closure().closure(), r.closure());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Semantic spot-check on concrete relations: the finder's unique
    /// instance of exact bounds evaluates operators like a reference
    /// set implementation.
    #[test]
    fn operators_match_reference_sets(
        r_edges in prop::collection::btree_set((0usize..N_ATOMS, 0usize..N_ATOMS), 0..8),
        s_edges in prop::collection::btree_set((0usize..N_ATOMS, 0usize..N_ATOMS), 0..8),
    ) {
        let mut u = Universe::new();
        let atoms: Vec<_> = (0..N_ATOMS).map(|i| u.add(format!("a{i}"))).collect();
        let to_ts = |edges: &std::collections::BTreeSet<(usize, usize)>| {
            let mut ts = TupleSet::new(2);
            for &(a, b) in edges {
                ts.insert(Tuple::binary(atoms[a], atoms[b]));
            }
            ts
        };
        let mut p = Problem::new(u);
        let r = p.relation(RelationDecl::exact("r", to_ts(&r_edges)));
        let s = p.relation(RelationDecl::exact("s", to_ts(&s_edges)));
        // Reference computations.
        let union: std::collections::BTreeSet<_> = r_edges.union(&s_edges).cloned().collect();
        let mut join = std::collections::BTreeSet::new();
        for &(a, b) in &r_edges {
            for &(c, d) in &s_edges {
                if b == c {
                    join.insert((a, d));
                }
            }
        }
        // The finder must agree that the exact relations equal the
        // reference results.
        let expected_union = to_ts(&union);
        let expected_join = to_ts(&join);
        let u_rel = p.relation(RelationDecl::exact("u", expected_union));
        let j_rel = p.relation(RelationDecl::exact("j", expected_join));
        let union_ok = p
            .check(Expr::relation(r).union(&Expr::relation(s)).equal(&Expr::relation(u_rel)))
            .expect("well-typed");
        prop_assert!(union_ok.is_none());
        let join_ok = p
            .check(Expr::relation(r).join(&Expr::relation(s)).equal(&Expr::relation(j_rel)))
            .expect("well-typed");
        prop_assert!(join_ok.is_none());
    }
}
