//! Property-based tests of boolean-circuit simplification laws and of the
//! equisatisfiability of the two CNF encodings.
//!
//! Structural laws (idempotence) are checked on the hash-consed references
//! directly; semantic laws (absorption, cardinality round-trips, encoding
//! agreement) go through the SAT solver.

use std::collections::HashMap;

use proptest::prelude::*;

use separ_logic::circuit::{assert_circuit, assert_circuit_with, BoolRef, Circuit, CnfEncoding};
use separ_logic::sat::{Lit, SolveResult, Solver};

const N_INPUTS: u32 = 4;

/// One gate-building instruction: operand indices into the refs built so
/// far, negation flags, and the operator choice.
type Op = (prop::sample::Index, prop::sample::Index, bool, bool, bool);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>(),
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
        ),
        1..16,
    )
}

/// Replays `ops` into a circuit, returning every reference built.
fn build(c: &mut Circuit, ops: &[Op]) -> Vec<BoolRef> {
    let mut refs: Vec<BoolRef> = (0..N_INPUTS).map(|_| c.input()).collect();
    for (ia, ib, na, nb, is_and) in ops {
        let mut a = refs[ia.index(refs.len())];
        let mut b = refs[ib.index(refs.len())];
        if *na {
            a = !a;
        }
        if *nb {
            b = !b;
        }
        refs.push(if *is_and { c.and(a, b) } else { c.or(a, b) });
    }
    refs
}

/// Proves `root` is unsatisfiable (used to check semantic equivalences).
fn unsat(c: &Circuit, root: BoolRef) -> bool {
    let mut s = Solver::new();
    assert_circuit(c, root, &mut s);
    s.solve(&[]) == SolveResult::Unsat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `and`/`or` are idempotent on the hash-consed representation itself.
    #[test]
    fn and_or_idempotence(ops in ops()) {
        let mut c = Circuit::new();
        for &x in &build(&mut c, &ops) {
            prop_assert_eq!(c.and(x, x), x);
            prop_assert_eq!(c.or(x, x), x);
        }
    }

    /// Absorption holds semantically: `a & (a | b) = a` and
    /// `a | (a & b) = a` (the circuit need not fold these structurally, so
    /// the equivalence is proved through SAT).
    #[test]
    fn absorption_through_sat(ops in ops()) {
        let mut c = Circuit::new();
        let refs = build(&mut c, &ops);
        let (a, b) = (refs[refs.len() - 1], refs[refs.len() / 2]);
        let a_or_b = c.or(a, b);
        let lhs1 = c.and(a, a_or_b);
        let a_and_b = c.and(a, b);
        let lhs2 = c.or(a, a_and_b);
        for lhs in [lhs1, lhs2] {
            let differs = {
                let iff = c.iff(lhs, a);
                !iff
            };
            prop_assert!(unsat(&c, differs), "absorption violated");
        }
    }

    /// `exactly_one` admits exactly n models and `at_most_one` exactly
    /// n + 1 when round-tripped through SAT enumeration.
    #[test]
    fn cardinality_round_trips(n in 1usize..6) {
        let mut c = Circuit::new();
        let inputs: Vec<BoolRef> = (0..n).map(|_| c.input()).collect();
        let amo = c.at_most_one(&inputs);
        let exo = c.exactly_one(&inputs);
        for (formula, expected) in [(exo, n), (amo, n + 1)] {
            let mut s = Solver::new();
            let map = assert_circuit(&c, formula, &mut s);
            let mut models = 0;
            while s.solve(&[]) == SolveResult::Sat {
                models += 1;
                prop_assert!(models <= expected, "too many models");
                let blocking: Vec<Lit> = (0..n as u32)
                    // `at_most_one` of a single input is constant true, so
                    // inputs may be unmapped; enumerate over mapped ones.
                    .filter_map(|l| map.var_for_input(l))
                    .map(|v| if s.is_true(v.positive()) { v.negative() } else { v.positive() })
                    .collect();
                if blocking.is_empty() {
                    break;
                }
                s.add_clause(&blocking);
            }
            // With unmapped inputs, each model stands for 2^unmapped ones.
            let unmapped = (0..n as u32).filter(|&l| map.var_for_input(l).is_none()).count();
            prop_assert_eq!(models << unmapped, expected, "n={}, unmapped={}", n, unmapped);
        }
    }

    /// Plaisted–Greenbaum and Tseitin agree with direct evaluation on every
    /// input assignment of a random circuit: the projections of their CNF
    /// models onto the inputs are exactly the circuit's models.
    #[test]
    fn encodings_are_equisatisfiable(ops in ops(), negate_root in any::<bool>()) {
        let mut c = Circuit::new();
        let refs = build(&mut c, &ops);
        let mut root = refs[refs.len() - 1];
        if negate_root {
            root = !root;
        }
        for encoding in [CnfEncoding::PlaistedGreenbaum, CnfEncoding::Tseitin] {
            let mut s = Solver::new();
            let map = assert_circuit_with(&c, root, &mut s, encoding);
            if root.is_const_true() {
                prop_assert_eq!(s.solve(&[]), SolveResult::Sat);
                continue;
            }
            if root.is_const_false() {
                prop_assert_eq!(s.solve(&[]), SolveResult::Unsat);
                continue;
            }
            for bits in 0u32..(1 << N_INPUTS) {
                let env: HashMap<u32, bool> =
                    (0..N_INPUTS).map(|i| (i, bits >> i & 1 == 1)).collect();
                let expected = c.eval(root, &env);
                let assumptions: Vec<Lit> = (0..N_INPUTS)
                    .filter_map(|l| map.var_for_input(l).map(|v| v.lit(env[&l])))
                    .collect();
                let got = s.solve(&assumptions) == SolveResult::Sat;
                prop_assert_eq!(got, expected, "{:?}, assignment {:04b}", encoding, bits);
            }
        }
    }
}
