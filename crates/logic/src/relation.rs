//! Tuples, tuple sets, and bounded relation declarations.

use std::collections::BTreeSet;
use std::fmt;

use crate::universe::Atom;

/// An ordered tuple of atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Vec<Atom>);

impl Tuple {
    /// Creates a tuple from atoms.
    pub fn new(atoms: impl Into<Vec<Atom>>) -> Tuple {
        Tuple(atoms.into())
    }

    /// Singleton tuple.
    pub fn unary(a: Atom) -> Tuple {
        Tuple(vec![a])
    }

    /// Pair tuple.
    pub fn binary(a: Atom, b: Atom) -> Tuple {
        Tuple(vec![a, b])
    }

    /// Triple tuple.
    pub fn ternary(a: Atom, b: Atom, c: Atom) -> Tuple {
        Tuple(vec![a, b, c])
    }

    /// Number of atoms in the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The atoms of the tuple.
    pub fn atoms(&self) -> &[Atom] {
        &self.0
    }

    /// First atom.
    ///
    /// # Panics
    ///
    /// Panics on the empty tuple, which cannot be constructed through the
    /// public API of [`TupleSet`].
    pub fn first(&self) -> Atom {
        *self.0.first().expect("non-empty tuple")
    }

    /// Last atom.
    ///
    /// # Panics
    ///
    /// Panics on the empty tuple.
    pub fn last(&self) -> Atom {
        *self.0.last().expect("non-empty tuple")
    }

    /// Concatenation of two tuples (for products).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// The tuple reversed (for transposes).
    pub fn reversed(&self) -> Tuple {
        let mut v = self.0.clone();
        v.reverse();
        Tuple(v)
    }

    /// Joins `self` with `other` on `self.last() == other.first()`,
    /// yielding the combined tuple without the matched atom, or `None` if
    /// the join atoms differ.
    pub fn join(&self, other: &Tuple) -> Option<Tuple> {
        if self.last() != other.first() {
            return None;
        }
        let mut v = Vec::with_capacity(self.arity() + other.arity() - 2);
        v.extend_from_slice(&self.0[..self.arity() - 1]);
        v.extend_from_slice(&other.0[1..]);
        Some(Tuple(v))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a:?}")?;
        }
        write!(f, ")")
    }
}

/// A set of same-arity tuples.
///
/// # Examples
///
/// ```
/// use separ_logic::relation::{Tuple, TupleSet};
/// use separ_logic::universe::Universe;
///
/// let mut u = Universe::new();
/// let a = u.add("a");
/// let b = u.add("b");
/// let mut ts = TupleSet::new(2);
/// ts.insert(Tuple::binary(a, b));
/// assert!(ts.contains(&Tuple::binary(a, b)));
/// assert_eq!(ts.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleSet {
    arity: usize,
    tuples: BTreeSet<Tuple>,
}

impl TupleSet {
    /// Creates an empty tuple set of the given arity.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero.
    pub fn new(arity: usize) -> TupleSet {
        assert!(arity > 0, "relations must have positive arity");
        TupleSet {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a unary tuple set from atoms.
    pub fn unary_from<I: IntoIterator<Item = Atom>>(atoms: I) -> TupleSet {
        let mut ts = TupleSet::new(1);
        for a in atoms {
            ts.insert(Tuple::unary(a));
        }
        ts
    }

    /// Builds a binary tuple set from atom pairs.
    pub fn binary_from<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> TupleSet {
        let mut ts = TupleSet::new(2);
        for (a, b) in pairs {
            ts.insert(Tuple::binary(a, b));
        }
        ts
    }

    /// The arity of all tuples in the set.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's arity differs from the set's.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "arity mismatch");
        self.tuples.insert(t)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Returns `true` if the set has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn union(&self, other: &TupleSet) -> TupleSet {
        assert_eq!(self.arity, other.arity, "arity mismatch");
        TupleSet {
            arity: self.arity,
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    /// Returns `true` if `self` is a subset of `other`.
    pub fn is_subset(&self, other: &TupleSet) -> bool {
        self.tuples.is_subset(&other.tuples)
    }

    /// The cartesian product of two unary-or-higher tuple sets.
    pub fn product(&self, other: &TupleSet) -> TupleSet {
        let mut out = TupleSet::new(self.arity + other.arity);
        for a in &self.tuples {
            for b in &other.tuples {
                out.insert(a.concat(b));
            }
        }
        out
    }
}

impl FromIterator<Tuple> for TupleSet {
    /// Collects tuples into a set.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (arity would be unknown) or if
    /// arities are inconsistent. Use [`TupleSet::new`] for empty sets.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleSet {
        let mut iter = iter.into_iter();
        let first = iter.next().expect("cannot infer arity of an empty set");
        let mut ts = TupleSet::new(first.arity());
        ts.insert(first);
        ts.extend(iter);
        ts
    }
}

impl Extend<Tuple> for TupleSet {
    fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

/// Identifier of a relation declared in a [`Problem`].
///
/// [`Problem`]: crate::finder::Problem
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub(crate) u32);

impl RelationId {
    /// Dense index of the relation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A relation with lower and upper tuple bounds (Kodkod-style).
///
/// Tuples in `lower` are in every instance; tuples in `upper \ lower` are
/// free — the model finder assigns each one a boolean variable.
#[derive(Clone, Debug)]
pub struct RelationDecl {
    name: String,
    lower: TupleSet,
    upper: TupleSet,
}

impl RelationDecl {
    /// Declares a relation.
    ///
    /// # Panics
    ///
    /// Panics if arities differ or `lower` is not contained in `upper`.
    pub fn new(name: impl Into<String>, lower: TupleSet, upper: TupleSet) -> RelationDecl {
        assert_eq!(lower.arity(), upper.arity(), "bound arity mismatch");
        assert!(lower.is_subset(&upper), "lower bound must be within upper");
        RelationDecl {
            name: name.into(),
            lower,
            upper,
        }
    }

    /// Declares a relation with exact bounds (every instance equals `tuples`).
    pub fn exact(name: impl Into<String>, tuples: TupleSet) -> RelationDecl {
        RelationDecl::new(name, tuples.clone(), tuples)
    }

    /// Declares an entirely free relation bounded above by `upper`.
    pub fn free(name: impl Into<String>, upper: TupleSet) -> RelationDecl {
        RelationDecl::new(name, TupleSet::new(upper.arity()), upper)
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.upper.arity()
    }

    /// The lower bound.
    pub fn lower(&self) -> &TupleSet {
        &self.lower
    }

    /// The upper bound.
    pub fn upper(&self) -> &TupleSet {
        &self.upper
    }

    /// Returns a copy of this declaration whose upper bound keeps only the
    /// lower-bound tuples plus free tuples satisfying `keep` — the
    /// bound-tightening primitive relevance slicing uses to discard free
    /// rows a signature's facts can never force true. Lower-bound tuples
    /// are always retained, so the result is a valid declaration.
    pub fn tightened_upper(&self, mut keep: impl FnMut(&Tuple) -> bool) -> RelationDecl {
        let mut upper = self.lower.clone();
        for t in self.upper.iter() {
            if self.lower.contains(t) || keep(t) {
                upper.insert(t.clone());
            }
        }
        RelationDecl {
            name: self.name.clone(),
            lower: self.lower.clone(),
            upper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    fn atoms(n: usize) -> (Universe, Vec<Atom>) {
        let mut u = Universe::new();
        let v = (0..n).map(|i| u.add(format!("a{i}"))).collect();
        (u, v)
    }

    #[test]
    fn tuple_join_matches_on_endpoint() {
        let (_u, a) = atoms(3);
        let t1 = Tuple::binary(a[0], a[1]);
        let t2 = Tuple::binary(a[1], a[2]);
        let t3 = Tuple::binary(a[2], a[0]);
        assert_eq!(t1.join(&t2), Some(Tuple::binary(a[0], a[2])));
        assert_eq!(t1.join(&t3), None);
    }

    #[test]
    fn unary_join_produces_shorter_tuple() {
        let (_u, a) = atoms(2);
        let s = Tuple::unary(a[0]);
        let r = Tuple::binary(a[0], a[1]);
        assert_eq!(s.join(&r), Some(Tuple::unary(a[1])));
    }

    #[test]
    fn tuple_set_operations() {
        let (_u, a) = atoms(3);
        let s1 = TupleSet::unary_from([a[0], a[1]]);
        let s2 = TupleSet::unary_from([a[1], a[2]]);
        let u12 = s1.union(&s2);
        assert_eq!(u12.len(), 3);
        assert!(s1.is_subset(&u12));
        let prod = s1.product(&s2);
        assert_eq!(prod.arity(), 2);
        assert_eq!(prod.len(), 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let (_u, a) = atoms(2);
        let mut ts = TupleSet::new(2);
        ts.insert(Tuple::unary(a[0]));
    }

    #[test]
    #[should_panic(expected = "lower bound must be within upper")]
    fn invalid_bounds_panic() {
        let (_u, a) = atoms(2);
        let lower = TupleSet::unary_from([a[0]]);
        let upper = TupleSet::unary_from([a[1]]);
        RelationDecl::new("r", lower, upper);
    }

    #[test]
    fn exact_and_free_bounds() {
        let (_u, a) = atoms(2);
        let ts = TupleSet::unary_from([a[0], a[1]]);
        let e = RelationDecl::exact("e", ts.clone());
        assert_eq!(e.lower(), e.upper());
        let f = RelationDecl::free("f", ts);
        assert!(f.lower().is_empty());
        assert_eq!(f.upper().len(), 2);
    }
}
