//! Error type for relational-logic translation.

use std::fmt;

/// Errors raised while translating a relational problem to SAT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// Two subexpressions were combined with incompatible arities.
    ArityMismatch {
        /// The operation that failed (e.g. `"union"`).
        operation: &'static str,
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// An operation requiring a specific arity was applied elsewhere.
    BadArity {
        /// The operation that failed (e.g. `"closure"`).
        operation: &'static str,
        /// The arity encountered.
        found: usize,
    },
    /// A quantified variable was used outside the scope of its binder.
    UnboundVariable(u32),
    /// A relation id referenced a relation not declared in the problem.
    UnknownRelation(u32),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::ArityMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "arity mismatch in {operation}: left has arity {left}, right has arity {right}"
            ),
            LogicError::BadArity { operation, found } => {
                write!(f, "{operation} requires a different arity, found {found}")
            }
            LogicError::UnboundVariable(v) => write!(f, "unbound quantified variable q{v}"),
            LogicError::UnknownRelation(r) => write!(f, "unknown relation r{r}"),
        }
    }
}

impl std::error::Error for LogicError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LogicError>;
