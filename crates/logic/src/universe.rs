//! Universes of atoms for bounded relational analysis.
//!
//! Like Alloy/Kodkod, model finding is performed within a finite universe:
//! every relation is bounded by sets of tuples drawn from these atoms.

use std::collections::HashMap;
use std::fmt;

/// An atom: an index into a [`Universe`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom(pub(crate) u32);

impl Atom {
    /// Dense index of the atom within its universe.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A finite, named collection of atoms.
///
/// # Examples
///
/// ```
/// use separ_logic::universe::Universe;
///
/// let mut u = Universe::new();
/// let app = u.add("App0");
/// assert_eq!(u.name(app), "App0");
/// assert_eq!(u.lookup("App0"), Some(app));
/// assert_eq!(u.len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, Atom>,
}

impl Universe {
    /// Creates an empty universe.
    pub fn new() -> Universe {
        Universe::default()
    }

    /// Adds an atom with the given name, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if an atom with the same name already exists; atom names are
    /// identities and must be unique.
    pub fn add(&mut self, name: impl Into<String>) -> Atom {
        let name = name.into();
        assert!(
            !self.index.contains_key(&name),
            "duplicate atom name: {name}"
        );
        let atom = Atom(self.names.len() as u32);
        self.index.insert(name.clone(), atom);
        self.names.push(name);
        atom
    }

    /// Adds an atom if absent; returns the existing handle otherwise.
    pub fn add_or_get(&mut self, name: impl Into<String>) -> Atom {
        let name = name.into();
        if let Some(&a) = self.index.get(&name) {
            return a;
        }
        self.add(name)
    }

    /// Looks up an atom by name.
    pub fn lookup(&self, name: &str) -> Option<Atom> {
        self.index.get(name).copied()
    }

    /// The name of an atom.
    pub fn name(&self, atom: Atom) -> &str {
        &self.names[atom.index()]
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the universe has no atoms.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all atoms in index order.
    pub fn atoms(&self) -> impl Iterator<Item = Atom> + '_ {
        (0..self.names.len() as u32).map(Atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut u = Universe::new();
        let a = u.add("x");
        let b = u.add("y");
        assert_ne!(a, b);
        assert_eq!(u.lookup("x"), Some(a));
        assert_eq!(u.lookup("z"), None);
        assert_eq!(u.name(b), "y");
    }

    #[test]
    #[should_panic(expected = "duplicate atom name")]
    fn duplicate_names_panic() {
        let mut u = Universe::new();
        u.add("x");
        u.add("x");
    }

    #[test]
    fn add_or_get_is_idempotent() {
        let mut u = Universe::new();
        let a = u.add_or_get("x");
        let b = u.add_or_get("x");
        assert_eq!(a, b);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn atoms_iterates_in_order() {
        let mut u = Universe::new();
        let a = u.add("x");
        let b = u.add("y");
        assert_eq!(u.atoms().collect::<Vec<_>>(), vec![a, b]);
    }
}
